"""Fast-path ``#GraphEmbedClust`` bench — parallel walks + warm re-embedding.

Two sections, both over the Section 2-profile synthetic company graphs:

* **walks** — the legacy sequential sampler vs the deterministic kernel
  at ``workers=1`` and ``workers=4`` on three graph sizes, asserting the
  two kernel runs are bit-identical (the worker count must never change
  the sample);
* **rounds** — a cold ``IncrementalEmbedder`` round vs the warm round
  after a handful of new edges, asserting the cold assignment matches
  the from-scratch :func:`embed_and_cluster` path (the
  ``incremental=False`` escape hatch).

Standalone on purpose (argparse, not pytest): CI's smoke job runs
``python benchmarks/bench_embed_pipeline.py --smoke`` and archives
``BENCH_embed.json`` as a per-PR artifact.  The full run enforces the
PR's acceptance floors: >= 2x for ``workers=4`` vs the legacy sampler
and >= 3x warm vs cold, both at the largest benched size.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import realworld_like  # noqa: E402
from repro.embeddings import (  # noqa: E402
    IncrementalEmbedder,
    Node2VecConfig,
    RandomWalker,
    build_adjacency,
    embed_and_cluster,
)

#: persons per size of the walk-sampling sweep (nodes ~= 1.8x persons)
WALK_SIZES = (2000, 8000, 32000)
#: persons per size of the cold-vs-warm round sweep
ROUND_SIZES = (100, 200, 400)
#: edges added between rounds (the dirty region's cause)
ROUND_NEW_EDGES = 8


def _best_of(repeats: int, sample) -> tuple[float, object]:
    """Fastest of ``repeats`` fresh runs (sheds scheduler noise)."""
    best_s, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = sample()
        elapsed = time.perf_counter() - started
        if best_s is None or elapsed < best_s:
            best_s, result = elapsed, outcome
    return best_s, result


def _walk_row(persons: int, repeats: int = 2) -> dict:
    graph, _truth = realworld_like(persons, seed=7)
    adjacency = build_adjacency(graph)
    nodes = list(adjacency)

    def run(workers):
        # a fresh walker per run: CSR/entropy build time is charged
        return RandomWalker(adjacency, seed=3).walks(
            nodes, 6, 15, workers=workers
        )

    legacy_s, _ = _best_of(repeats, lambda: run(None))
    w1_s, serial = _best_of(repeats, lambda: run(1))
    w4_s, pooled = _best_of(repeats, lambda: run(4))

    identical = serial == pooled
    row = {
        "persons": persons,
        "nodes": len(nodes),
        "walks": len(pooled),
        "legacy_s": round(legacy_s, 4),
        "workers1_s": round(w1_s, 4),
        "workers4_s": round(w4_s, 4),
        "speedup_w4": round(legacy_s / w4_s, 2) if w4_s else None,
        "identical_w1_w4": identical,
    }
    print(
        f"{'walks':>8} n={row['nodes']:<6} legacy={legacy_s:7.3f}s "
        f"w1={w1_s:7.3f}s w4={w4_s:7.3f}s "
        f"speedup_w4={row['speedup_w4']:5.2f}x identical={identical}"
    )
    if not identical:
        raise SystemExit(
            f"FATAL: workers=1 and workers=4 walks differ at persons={persons}"
        )
    return row


def _round_row(persons: int) -> dict:
    graph, _truth = realworld_like(persons, seed=7)
    config = Node2VecConfig(
        dimensions=24, walk_length=15, num_walks=6, epochs=2, window=4,
        workers=1, seed=0,
    )
    features = {"surname": 1.0, "address": 3.0}
    embedder = IncrementalEmbedder(
        10, config, feature_properties=features, dirty_hops=2
    )

    started = time.perf_counter()
    cold = embedder.embed(graph)
    cold_s = time.perf_counter() - started

    # the deterministic-path identity: a cold embedder round IS the
    # from-scratch embed_and_cluster computation
    full = embed_and_cluster(
        graph, 10, config, feature_properties=features
    )
    if cold != full:
        raise SystemExit(
            f"FATAL: cold incremental assignment differs from "
            f"embed_and_cluster at persons={persons}"
        )

    person_ids = [node.id for node in graph.nodes("P")]
    new_edges = [
        graph.add_edge(person_ids[2 * i], person_ids[2 * i + 1], "same_family")
        for i in range(min(ROUND_NEW_EDGES, len(person_ids) // 2))
    ]
    if not new_edges:
        raise SystemExit(f"FATAL: no person pairs to link at persons={persons}")
    started = time.perf_counter()
    embedder.embed(graph, new_edges=new_edges)
    warm_s = time.perf_counter() - started

    row = {
        "persons": persons,
        "nodes": len(list(graph.node_ids())),
        "new_edges": len(new_edges),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_warm": round(cold_s / warm_s, 2) if warm_s else None,
        "cold_matches_full": True,
    }
    print(
        f"{'rounds':>8} n={row['nodes']:<6} cold={cold_s:7.3f}s "
        f"warm={warm_s:7.3f}s speedup_warm={row['speedup_warm']:5.2f}x "
        f"cold==full=True"
    )
    return row


def run_benchmark(smoke: bool) -> dict:
    walk_sizes = WALK_SIZES[:1] if smoke else WALK_SIZES
    round_sizes = ROUND_SIZES[:1] if smoke else ROUND_SIZES
    return {
        "mode": "smoke" if smoke else "full",
        "walks": [_walk_row(persons) for persons in walk_sizes],
        "rounds": [_round_row(persons) for persons in round_sizes],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_embed.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smallest size of each section only (the CI smoke job)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"# wrote {args.output}")
    if not args.smoke:
        largest_walks = payload["walks"][-1]
        if largest_walks["speedup_w4"] < 2.0:
            raise SystemExit(
                f"FATAL: workers=4 speedup at largest size is "
                f"{largest_walks['speedup_w4']}x (< 2x target)"
            )
        largest_round = payload["rounds"][-1]
        if largest_round["speedup_warm"] < 3.0:
            raise SystemExit(
                f"FATAL: warm-round speedup at largest size is "
                f"{largest_round['speedup_warm']}x (< 3x target)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
