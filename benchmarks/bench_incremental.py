"""Incremental-snapshot bench — delta publish latency vs cold rebuild.

The ``POST /mutations`` path used to re-derive the whole world per
accepted batch: control closure, close links, UBO index, family links —
~13s at service scale.  The delta-driven build patches only the rows a
batch can reach.  This bench measures exactly that claim, per scale:

* **cold_build_s** — a from-scratch ``SnapshotBuilder`` build of the
  mutated graph (the escape-hatch ``SnapshotConfig(incremental=False)``
  path, which is also the correctness oracle);
* **incremental_build_s** — the same mutated graph built by a warm
  builder carrying the previous build's row state, fed the
  :class:`~repro.service.incremental.DeltaBatch` the updater records;
* **identity** — per-row comparison of the two snapshots: control pairs
  and close-link pairs must match exactly, UBO payloads to the service's
  6-decimal rounding, family links exactly.

Standalone on purpose (argparse, not pytest): CI's smoke job runs
``python benchmarks/bench_incremental.py --smoke`` and archives
``BENCH_incremental.json``.  The full run enforces the PR's acceptance
floor: at the largest scale a single-edge-delta publish must be >= 10x
faster than the cold rebuild, with per-row identity.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import realworld_like  # noqa: E402
from repro.service import SnapshotBuilder, SnapshotConfig  # noqa: E402
from repro.service.updates import apply_deltas  # noqa: E402

#: persons per scale step, per mode
SCALES = {"smoke": [120, 240], "full": [250, 500, 1000]}
#: measured single-edge delta publishes per scale
REPEATS = {"smoke": 3, "full": 5}
#: acceptance floor at the largest full scale
SPEEDUP_FLOOR = 10.0


def snapshots_identical(incremental, cold) -> dict:
    """Per-row identity between the incremental and the cold snapshot."""
    ubo_equal = set(incremental.ubo) == set(cold.ubo) and all(
        [
            (o.person, round(o.integrated_share, 6), o.controls)
            for o in incremental.ubo[company]
        ]
        == [
            (o.person, round(o.integrated_share, 6), o.controls)
            for o in cold.ubo[company]
        ]
        for company in cold.ubo
    )
    return {
        "control": incremental.control == cold.control,
        "close_links": incremental.close_links == cold.close_links,
        "family_links": incremental.family_links == cold.family_links,
        "ubo": ubo_equal,
    }


def single_edge_deltas(graph, step: int) -> list[dict]:
    companies = sorted(c.id for c in graph.companies())
    owner = companies[step % len(companies)]
    target = companies[(step * 7 + 3) % len(companies)]
    if owner == target:
        target = companies[(step * 7 + 4) % len(companies)]
    return [
        {"op": "add_shareholding", "owner": owner, "company": target,
         "share": 0.03 + 0.01 * (step % 5)}
    ]


def bench_scale(persons: int, repeats: int) -> dict:
    graph, _truth = realworld_like(persons, seed=11)
    warm = SnapshotBuilder()
    cold = SnapshotBuilder(SnapshotConfig(incremental=False))

    started = time.perf_counter()
    warm.build(graph)
    seed_build_s = time.perf_counter() - started

    staging = graph
    incremental_times, cold_times = [], []
    identity = {"control": True, "close_links": True, "family_links": True,
                "ubo": True}
    incremental_builds = 0
    for step in range(repeats):
        candidate = staging.copy()
        batch = apply_deltas(candidate, single_edge_deltas(staging, step))
        batch.base = staging
        batch.base_generation = staging.generation

        started = time.perf_counter()
        snapshot = warm.build(candidate, delta=batch)
        incremental_times.append(time.perf_counter() - started)
        incremental_builds += int(snapshot.incremental)

        started = time.perf_counter()
        oracle = cold.build(candidate)
        cold_times.append(time.perf_counter() - started)

        for relation, equal in snapshots_identical(snapshot, oracle).items():
            identity[relation] = identity[relation] and equal
        staging = candidate

    incremental_s = statistics.median(incremental_times)
    cold_s = statistics.median(cold_times)
    return {
        "persons": persons,
        "nodes": staging.node_count,
        "edges": staging.edge_count,
        "seed_build_s": round(seed_build_s, 4),
        "cold_build_s": round(cold_s, 4),
        "incremental_build_s": round(incremental_s, 4),
        "speedup": round(cold_s / incremental_s, 2) if incremental_s else None,
        "incremental_builds": incremental_builds,
        "delta_builds": repeats,
        "identity": identity,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small scales, no acceptance floor")
    parser.add_argument("--output", default="BENCH_incremental.json")
    args = parser.parse_args()
    mode = "smoke" if args.smoke else "full"

    results = []
    for persons in SCALES[mode]:
        print(f"[bench_incremental] scale persons={persons} ...", flush=True)
        result = bench_scale(persons, REPEATS[mode])
        print(
            f"  cold={result['cold_build_s']}s "
            f"incremental={result['incremental_build_s']}s "
            f"speedup={result['speedup']}x identity={result['identity']}",
            flush=True,
        )
        results.append(result)

    report = {"mode": mode, "speedup_floor": SPEEDUP_FLOOR, "scales": results}
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_incremental] wrote {args.output}")

    failures = []
    for result in results:
        if result["incremental_builds"] != result["delta_builds"]:
            failures.append(
                f"persons={result['persons']}: only "
                f"{result['incremental_builds']}/{result['delta_builds']} "
                "builds took the incremental path"
            )
        for relation, equal in result["identity"].items():
            if not equal:
                failures.append(
                    f"persons={result['persons']}: {relation} diverged "
                    "from the cold oracle"
                )
    if mode == "full":
        largest = results[-1]
        if largest["speedup"] is None or largest["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"single-edge delta publish speedup {largest['speedup']}x "
                f"at persons={largest['persons']} is below the "
                f"{SPEEDUP_FLOOR}x acceptance floor"
            )
    if failures:
        for failure in failures:
            print(f"[bench_incremental] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[bench_incremental] OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
