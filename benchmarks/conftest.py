"""Shared configuration for the benchmark drivers.

Every benchmark prints the series its paper figure reports (rows of the
same shape as the published plot) and registers one pytest-benchmark
timing for the headline operation.  Absolute times will differ from the
paper (authors: Vadalog/Java on a 2013 MacBook; here: pure Python) — the
reproduction target is the *shape* of each curve, which the drivers
assert with `check_shape` where the paper's claim is qualitative.
"""

import pytest


def one_shot(benchmark, function):
    """Register ``function`` with pytest-benchmark as a single-shot macro
    benchmark (our workloads are seconds-long; statistical rounds would
    multiply runtime without adding information)."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def run_once():
    return one_shot
