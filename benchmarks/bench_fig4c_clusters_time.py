"""Figure 4(c): elapsed time vs number (and size) of clusters.

Paper: the feature mapping is hijacked to fold persons into k = 1..500
second-level clusters of decreasing size; elapsed time falls steeply as
clusters multiply (under 10 s past ~10 clusters in the paper's setup),
because comparisons shrink quadratically with block size.

Here: same protocol — `person_blocker(k)` folds the feature hash modulo
k.  The first-level embedding stage is disabled to isolate the
second-level clustering variable, as by construction `#GenerateBlocks`
only depends on node features.
"""

from repro.bench import CLUSTER_SWEEP, Experiment, check_shape, realworld_like, timed
from repro.core import (
    BlockingScheme,
    FamilyLinkCandidate,
    VadaLink,
    VadaLinkConfig,
    person_blocker,
)
from repro.linkage import persons_of, train_classifiers

PERSONS = 600


def test_fig4c_time_vs_clusters(run_once, benchmark):
    graph, truth = realworld_like(PERSONS, seed=13)
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)

    def run(k: int):
        rules = [FamilyLinkCandidate(c) for c in classifiers]
        config = VadaLinkConfig(
            first_level_clusters=1,
            use_embeddings=False,
            blocking=BlockingScheme({"P": person_blocker(k)}),
            max_rounds=1,
        )
        return VadaLink(rules, config).augment(graph)

    experiment = Experiment("Figure 4(c) — time vs number of clusters", "clusters")
    series = []
    for clusters in CLUSTER_SWEEP:
        result, elapsed = timed(lambda: run(clusters))
        series.append((clusters, elapsed))
        experiment.record(clusters, seconds=elapsed, comparisons=result.comparisons)
    print()
    experiment.print()
    print(experiment.ascii_plot("seconds", logx=True))

    # shape: elapsed time decreases (noisily) as the cluster count grows
    assert series[0][1] > series[-1][1], "1 cluster must cost more than 500"
    comparisons = experiment.series("comparisons")
    assert check_shape(comparisons, "non-increasing", tolerance=0.10)
    # the single-cluster point dominates everything past 10 clusters
    past_ten = [seconds for clusters, seconds in series if clusters >= 10]
    assert all(seconds < series[0][1] for seconds in past_ten)

    run_once(benchmark, lambda: run(20))
