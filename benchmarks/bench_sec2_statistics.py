"""Section 2 dataset profile — the paper's table-like statistics paragraph.

Paper (Italian company graph, yearly average): 4.059M nodes, 3.960M
edges, 4.058M SCCs (avg size ~1, largest 15), >600K WCCs (avg ~6 nodes,
largest >1M), avg in/out degree ~1, max in-degree >5K, max out-degree
>28K, avg clustering coefficient ~0.0084, ~3K self-loops, power-law
degree distribution.

We regenerate the same profile on the synthetic surrogate at 1/1000
scale and check the qualitative fingerprint: singleton SCCs, heavy
fragmentation with one giant WCC, unit-order average degree, hub-sized
maxima, near-zero clustering, buy-back self-loops, power-law fit.
"""

from repro.bench import Experiment
from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import profile

SPEC = CompanySpec(persons=2200, companies=1800, density="sparse",
                   self_loop_rate=0.002, seed=42)


def test_section2_profile(run_once, benchmark):
    graph, _ = generate_company_graph(SPEC)
    stats = run_once(benchmark, lambda: profile(graph))

    experiment = Experiment("Section 2 — dataset statistical profile", "indicator")
    paper_reference = {
        "nodes": "4.059M", "edges": "3.960M", "SCCs": "4.058M",
        "avg SCC size": "~1", "largest SCC": "15",
        "WCCs": ">600K", "avg WCC size": "~6", "largest WCC": ">1M",
        "avg in-degree": "~1", "avg out-degree": "~1",
        "max in-degree": ">5K", "max out-degree": ">28K",
        "avg clustering coefficient": "~0.0084", "self-loops": "~3K",
        "power-law alpha (MLE)": "(power law)",
    }
    print()
    print(f"{'indicator':<30}{'ours (1/1000 scale)':>22}{'paper':>12}")
    print("-" * 64)
    for name, value in stats.as_rows():
        print(f"{name:<30}{value:>22}{paper_reference.get(name, '-'):>12}")

    # qualitative fingerprint assertions
    assert stats.scc_avg_size < 1.2, "SCCs should be essentially singletons"
    assert stats.scc_max_size <= 20, "largest SCC stays tiny"
    assert stats.wcc_count > stats.nodes / 20, "heavy fragmentation"
    assert stats.wcc_max_size > stats.nodes / 10, "one giant WCC"
    assert stats.avg_out_degree < 2.0, "unit-order average degree"
    assert stats.max_out_degree > 10 * stats.avg_out_degree, "hubs exist"
    assert stats.avg_clustering < 0.05, "near-zero clustering"
    assert stats.self_loops >= 1, "buy-back self-loops present"
    assert stats.power_law_alpha is not None and stats.power_law_alpha > 1.0
