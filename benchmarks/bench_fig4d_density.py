"""Figure 4(d): elapsed time vs graph density.

Paper: four synthetic scenarios — sparse, normal, dense, superdense —
over 1-1k nodes; sparse/normal/dense track each other while superdense
is markedly slower, with superlinear growth for the denser scenarios.
The discussion attributes density sensitivity to (i) node2vec's walks
and (ii) the ``Candidate`` implementations — noting that *family
detection* scales well with density while *close links* (path
enumeration) are the challenging case.

We therefore report two series per density preset:

* ``family_s``     — the feature-based family-detection loop (expected
  nearly flat across densities, the paper's own remark);
* ``closelink_s``  — the close-link Candidate (simple-path enumeration,
  expected to blow up on superdense graphs — the Figure 4(d) shape).
"""

from repro.bench import DENSITY_SCENARIOS, Experiment, density_scenario, timed
from repro.core import (
    BlockingScheme,
    CloseLinkCandidate,
    FamilyLinkCandidate,
    VadaLink,
    VadaLinkConfig,
)
from repro.linkage import persons_of, train_classifiers

SIZES = (100, 200, 300)
PATH_DEPTH = 4  # bounded enumeration: superdense graphs have exponential path counts


def family_run(graph, classifiers):
    rules = [FamilyLinkCandidate(c) for c in classifiers]
    config = VadaLinkConfig(first_level_clusters=6, max_rounds=1)
    return VadaLink(rules, config).augment(graph)


def close_link_run(graph):
    rules = [CloseLinkCandidate(max_depth=PATH_DEPTH)]
    config = VadaLinkConfig(
        first_level_clusters=1, use_embeddings=False,
        blocking=BlockingScheme.exhaustive(), max_rounds=1,
    )
    return VadaLink(rules, config).augment(graph)


def test_fig4d_time_vs_density(run_once, benchmark):
    experiment = Experiment("Figure 4(d) — time vs density", "persons")
    family_times: dict[str, list[float]] = {}
    close_times: dict[str, list[float]] = {}
    for persons in SIZES:
        row = {}
        for density in DENSITY_SCENARIOS:
            graph, truth = density_scenario(density, persons, seed=17)
            classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
            _, family_elapsed = timed(lambda: family_run(graph, classifiers))
            _, close_elapsed = timed(lambda: close_link_run(graph))
            row[f"{density[:5]}_fam_s"] = family_elapsed
            row[f"{density[:5]}_cl_s"] = close_elapsed
            family_times.setdefault(density, []).append(family_elapsed)
            close_times.setdefault(density, []).append(close_elapsed)
        experiment.record(persons, **row)
    print()
    experiment.print()

    last = len(SIZES) - 1
    # close links: superdense must dominate, and by a wide margin over sparse
    assert close_times["superdense"][last] == max(
        close_times[d][last] for d in DENSITY_SCENARIOS
    ), "superdense close-link detection must be the slowest scenario"
    assert close_times["superdense"][last] > close_times["sparse"][last] * 3
    # close links grow superlinearly with density (edges roughly 8x sparse)
    assert close_times["superdense"][last] > close_times["normal"][last] * 1.5
    # family detection stays comparatively flat across densities (the
    # paper's own observation about this Candidate)
    assert family_times["superdense"][last] < family_times["sparse"][last] * 3

    graph, _ = density_scenario("superdense", SIZES[0], seed=17)
    run_once(benchmark, lambda: close_link_run(graph))
