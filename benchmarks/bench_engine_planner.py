"""Vectorized vs planned+compiled vs textual-order engine — the perf bench.

Runs the two hottest declarative workloads of the reproduction (the
close-links program over scale-free ownership pyramids and the family
control program over superdense extracts) at three synthetic sizes each
across all three execution backends:

* ``vectorized``  — batch columnar evaluation (the default with numpy),
* ``planned``     — ``Engine(..., vectorize=False)``: per-tuple compiled
  evaluators under the join planner, the bit-identity oracle,
* ``unplanned``   — ``Engine(..., plan=False)``: textual-order
  interpretation.

Every row asserts the three result databases are identical (the
vectorized one *bit-identically* — same insertion sequence, same firing
counts — against the planned one) and records both speedup ratios.
Writes ``BENCH_engine.json``.

Standalone on purpose (argparse, not pytest): CI's smoke job runs
``python benchmarks/bench_engine_planner.py --smoke`` and archives the
JSON as a per-PR artifact — the smoke run doubles as the
``--no-vectorize`` parity check on both programs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import density_scenario, ownership_pyramid  # noqa: E402
from repro.core import (  # noqa: E402
    KnowledgeGraph,
    close_link_program,
    family_control_program,
    input_mapping,
)
from repro.datalog.engine import Engine  # noqa: E402
from repro.graph.relational import to_facts  # noqa: E402

#: (program name, size label, graph builder, program text, with families)
CLOSE_LINK_SIZES = (16, 28, 40)
FAMILY_CONTROL_SIZES = (150, 300, 500)


def _workloads(smoke: bool):
    close_sizes = CLOSE_LINK_SIZES[:1] if smoke else CLOSE_LINK_SIZES
    family_sizes = FAMILY_CONTROL_SIZES[:1] if smoke else FAMILY_CONTROL_SIZES
    for companies in close_sizes:
        yield (
            "close-links",
            f"pyramid-{companies}",
            ownership_pyramid(companies, m=3, seed=7),
            close_link_program(0.2),
            False,
        )
    for persons in family_sizes:
        graph, _truth = density_scenario("superdense", persons, seed=7)
        yield (
            "family-control",
            f"superdense-{persons}",
            graph,
            family_control_program(0.5),
            True,
        )


def _program_for(graph, body: str, families: bool):
    kg = KnowledgeGraph(graph)
    kg.add_rules("map", input_mapping(families))
    kg.add_rules("task", body)
    return kg.program()


def _run(program, graph, plan: bool, vectorize: bool = True):
    started = time.perf_counter()
    engine = Engine(program, to_facts(graph), plan=plan, vectorize=vectorize)
    engine.run()
    return engine, time.perf_counter() - started


def run_benchmark(smoke: bool) -> dict:
    rows = []
    for name, size, graph, body, families in _workloads(smoke):
        program = _program_for(graph, body, families)
        vectorized_engine, vectorized_s = _run(program, graph, plan=True)
        planned_engine, planned_s = _run(
            program, graph, plan=True, vectorize=False
        )
        unplanned_engine, unplanned_s = _run(program, graph, plan=False)
        identical = (
            list(vectorized_engine.database.all_facts())
            == list(planned_engine.database.all_facts())
            and vectorized_engine.stats.rule_firings
            == planned_engine.stats.rule_firings
            and set(planned_engine.database.all_facts())
            == set(unplanned_engine.database.all_facts())
        )
        row = {
            "program": name,
            "size": size,
            "facts_total": vectorized_engine.database.count(),
            "rule_firings": vectorized_engine.stats.rule_firings,
            "vectorized_s": round(vectorized_s, 4),
            "planned_s": round(planned_s, 4),
            "unplanned_s": round(unplanned_s, 4),
            "speedup": round(unplanned_s / planned_s, 2) if planned_s else None,
            "speedup_vs_planned": (
                round(planned_s / vectorized_s, 2) if vectorized_s else None
            ),
            "vector_fallbacks": len(vectorized_engine._vector_fallbacks),
            "identical_results": identical,
        }
        rows.append(row)
        print(
            f"{name:>15} {size:<16} vectorized={vectorized_s:8.3f}s "
            f"planned={planned_s:8.3f}s unplanned={unplanned_s:8.3f}s "
            f"vec-speedup={row['speedup_vs_planned']:6.2f}x "
            f"identical={identical}"
        )
        if not identical:
            raise SystemExit(
                f"FATAL: backend result databases differ on {name}/{size}"
            )
    return {"mode": "smoke" if smoke else "full", "workloads": rows}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smallest size of each workload only (the CI smoke job)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"# wrote {args.output}")
    if not args.smoke:
        largest_close = [
            row for row in payload["workloads"] if row["program"] == "close-links"
        ][-1]
        if largest_close["speedup"] < 1.5:
            raise SystemExit(
                f"FATAL: close-links planned speedup at largest size is "
                f"{largest_close['speedup']}x (< 1.5x target)"
            )
        if largest_close["speedup_vs_planned"] < 5.0:
            raise SystemExit(
                f"FATAL: close-links vectorized speedup at largest size is "
                f"{largest_close['speedup_vs_planned']}x (< 5x target)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
