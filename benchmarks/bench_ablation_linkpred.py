"""Ablation: KG augmentation vs plain topological link prediction.

The paper's central positioning claim: family links "cannot be deduced"
from topology alone — they need extensional features plus domain
knowledge.  The classic link-prediction scores (common neighbours,
Adamic-Adar, ...) rank pairs by graph neighbourhood, but persons in an
ownership graph connect only through the companies they co-own; family
members typically hold *different* assets (often in different weakly
connected components), so neighbourhood scores carry almost no signal.

This driver quantifies that: Vada-Link's feature-based Bayesian detection
against every topological baseline on the same candidate pairs.
"""

from repro.bench import Experiment, realworld_like
from repro.core import FamilyLinkCandidate, VadaLink, VadaLinkConfig
from repro.linkage import persons_of, train_classifiers
from repro.linkage.topological import SCORERS, recall_against

PERSONS = 250


def test_ablation_topological_baselines(run_once, benchmark):
    graph, truth = realworld_like(PERSONS, seed=37)
    true_pairs = truth.pairs()

    # candidates: all person pairs within the default second-level blocks
    # (same comparison budget the Bayesian candidate gets)
    from repro.core import BlockingScheme

    persons = [n for n in graph.persons()]
    blocks = BlockingScheme.default().partition(persons)
    candidates = []
    seen = set()
    for block in blocks.values():
        for i, left in enumerate(block):
            for right in block[i + 1:]:
                pair = (left.id, right.id)
                if pair not in seen:
                    seen.add(pair)
                    candidates.append(pair)

    experiment = Experiment("Ablation — feature-based vs topological", "method")

    # Vada-Link (Bayesian, feature-based)
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
    rules = [FamilyLinkCandidate(c) for c in classifiers]
    config = VadaLinkConfig(first_level_clusters=1, use_embeddings=False, max_rounds=1)
    result = VadaLink(rules, config).augment(graph)
    predicted = {(e.source, e.target) for e in result.new_edges}
    bayes_recall = len(predicted & true_pairs) / len(true_pairs)
    experiment.record("vada-link (features)", recall=bayes_recall)

    # topological baselines on the same candidates
    baseline_recalls = {}
    for method in SCORERS:
        recall = recall_against(graph, true_pairs, candidates, method)
        baseline_recalls[method] = recall
        experiment.record(method, recall=recall)
    print()
    experiment.print()

    # the paper's claim, quantified: every topological predictor is far
    # below the knowledge-based detection
    assert bayes_recall > 0.5
    for method, recall in baseline_recalls.items():
        assert recall < bayes_recall / 2, (
            f"{method} unexpectedly competitive ({recall:.2f} vs {bayes_recall:.2f})"
        )

    run_once(
        benchmark,
        lambda: recall_against(graph, true_pairs, candidates, "adamic_adar"),
    )
