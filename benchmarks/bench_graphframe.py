"""Columnar-core bench — shared GraphFrame vs per-consumer rebuilds.

Two sections, both over the Section 2-profile synthetic company graphs:

* **adjacency** — K consumers each needing the merged-undirected walker
  view: the legacy path rebuilds the dict-of-dicts adjacency and the
  walker CSR from the graph per consumer; the frame path builds one
  :class:`~repro.graph.columnar.GraphFrame` and every consumer reads the
  cached view.  Values are asserted identical;
* **solve** — an integrated-ownership sweep over S sources (the UBO /
  close-link access pattern): the legacy path re-assembles the
  ``lil_matrix`` W and runs a fresh ``spsolve`` per source; the frame
  path factorises ``I - W^T`` once with ``splu`` and back-substitutes
  per source.  Results are asserted bit-identical per source.

Standalone on purpose (argparse, not pytest): CI's smoke job runs
``python benchmarks/bench_graphframe.py --smoke`` and archives
``BENCH_graph.json`` as a per-PR artifact.  The full run enforces the
PR's acceptance floors: >= 2x on both the repeated-adjacency and the
repeated-solve workload at the largest benched size.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402
from scipy.sparse import identity, lil_matrix  # noqa: E402
from scipy.sparse.linalg import spsolve  # noqa: E402

from repro.bench.workloads import realworld_like  # noqa: E402
from repro.embeddings.walks import build_walker_csr  # noqa: E402
from repro.graph.columnar import GraphFrame  # noqa: E402
from repro.ownership.matrix import integrated_ownership_from  # noqa: E402

#: persons per size of the repeated-adjacency sweep
ADJACENCY_SIZES = (2000, 8000, 32000)
#: consumers asking for the walker view per graph version
ADJACENCY_CONSUMERS = 6
#: persons per size of the repeated-solve sweep
SOLVE_SIZES = (250, 500, 1000)
#: ownership sources swept per graph (the UBO indexing pattern)
SOLVE_SOURCES = 32


def _best_of(repeats: int, sample) -> tuple[float, object]:
    """Fastest of ``repeats`` fresh runs (sheds scheduler noise)."""
    best_s, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = sample()
        elapsed = time.perf_counter() - started
        if best_s is None or elapsed < best_s:
            best_s, result = elapsed, outcome
    return best_s, result


def _legacy_adjacency(graph, weight_property="w"):
    """The pre-frame ``build_adjacency``, inlined so the bench keeps
    measuring the historical cost even as the library moves on."""
    adjacency = {n: {} for n in graph.node_ids()}
    for edge in graph.edges():
        weight = float(edge.get(weight_property, 1.0) or 1.0)
        if edge.source == edge.target:
            continue
        adjacency[edge.source][edge.target] = (
            adjacency[edge.source].get(edge.target, 0.0) + weight
        )
        adjacency[edge.target][edge.source] = (
            adjacency[edge.target].get(edge.source, 0.0) + weight
        )
    return {
        node: sorted(neighbors.items(), key=lambda item: str(item[0]))
        for node, neighbors in adjacency.items()
    }


def _legacy_solve_sweep(graph, sources):
    """The pre-frame per-source path: rebuild W, spsolve, every time."""
    results = {}
    for source in sources:
        nodes = sorted(graph.node_ids(), key=str)
        index = {node: i for i, node in enumerate(nodes)}
        matrix = lil_matrix((len(nodes), len(nodes)))
        for edge in graph.edges("S"):
            matrix[index[edge.source], index[edge.target]] += edge.get("w", 0.0)
        transpose = matrix.tocsc().T.tocsc()
        unit = np.zeros(len(nodes))
        unit[index[source]] = 1.0
        system = identity(len(nodes), format="csc") - transpose
        solution = spsolve(system, transpose @ unit)
        results[source] = {
            node: float(solution[i])
            for node, i in index.items()
            if node != source and abs(solution[i]) > 1e-12
        }
    return results


def _adjacency_row(persons: int, repeats: int = 2) -> dict:
    graph, _truth = realworld_like(persons, seed=7)

    def legacy():
        views = []
        for _ in range(ADJACENCY_CONSUMERS):
            adjacency = _legacy_adjacency(graph)
            views.append((adjacency, build_walker_csr(adjacency)))
        return views

    def framed():
        # fresh frame per run: the one-off columnar build is charged
        graph.__dict__.pop("_columnar_frames", None)
        views = []
        for _ in range(ADJACENCY_CONSUMERS):
            frame = GraphFrame.of(graph)
            views.append((frame.undirected_adjacency(), frame.walker_csr()))
        return views

    legacy_s, legacy_views = _best_of(repeats, legacy)
    frame_s, frame_views = _best_of(repeats, framed)

    identical = all(
        legacy_view == frame_view
        for (legacy_view, _), (frame_view, _) in zip(legacy_views, frame_views)
    )
    row = {
        "persons": persons,
        "nodes": len(legacy_views[0][0]),
        "consumers": ADJACENCY_CONSUMERS,
        "legacy_s": round(legacy_s, 4),
        "frame_s": round(frame_s, 4),
        "speedup": round(legacy_s / frame_s, 2) if frame_s else None,
        "identical": identical,
    }
    print(
        f"{'adjacency':>10} n={row['nodes']:<6} legacy={legacy_s:7.3f}s "
        f"frame={frame_s:7.3f}s speedup={row['speedup']:5.2f}x "
        f"identical={identical}"
    )
    if not identical:
        raise SystemExit(
            f"FATAL: frame adjacency differs from legacy at persons={persons}"
        )
    return row


def _solve_row(persons: int, sources: int, repeats: int = 2) -> dict:
    graph, _truth = realworld_like(persons, seed=7)
    swept = sorted((p.id for p in graph.persons()), key=str)[:sources]

    legacy_s, legacy_results = _best_of(
        repeats, lambda: _legacy_solve_sweep(graph, swept)
    )

    def framed():
        graph.__dict__.pop("_columnar_frames", None)  # charge the factorisation
        return {s: integrated_ownership_from(graph, s) for s in swept}

    frame_s, frame_results = _best_of(repeats, framed)

    identical = legacy_results == frame_results  # exact float equality
    row = {
        "persons": persons,
        "nodes": len(list(graph.node_ids())),
        "sources": len(swept),
        "legacy_s": round(legacy_s, 4),
        "frame_s": round(frame_s, 4),
        "speedup": round(legacy_s / frame_s, 2) if frame_s else None,
        "identical": identical,
    }
    print(
        f"{'solve':>10} n={row['nodes']:<6} sources={len(swept):<3} "
        f"legacy={legacy_s:7.3f}s frame={frame_s:7.3f}s "
        f"speedup={row['speedup']:5.2f}x identical={identical}"
    )
    if not identical:
        raise SystemExit(
            f"FATAL: frame ownership sweep differs from legacy spsolve "
            f"at persons={persons}"
        )
    return row


def run_benchmark(smoke: bool) -> dict:
    adjacency_sizes = ADJACENCY_SIZES[:1] if smoke else ADJACENCY_SIZES
    solve_sizes = SOLVE_SIZES[:1] if smoke else SOLVE_SIZES
    sources = 8 if smoke else SOLVE_SOURCES
    return {
        "mode": "smoke" if smoke else "full",
        "adjacency": [_adjacency_row(persons) for persons in adjacency_sizes],
        "solve": [_solve_row(persons, sources) for persons in solve_sizes],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_graph.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smallest size of each section only (the CI smoke job)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"# wrote {args.output}")
    if not args.smoke:
        for section in ("adjacency", "solve"):
            largest = payload[section][-1]
            if largest["speedup"] < 2.0:
                raise SystemExit(
                    f"FATAL: {section} speedup at largest size is "
                    f"{largest['speedup']}x (< 2x target)"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
