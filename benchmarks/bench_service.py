"""Reasoning-service bench — throughput, cache economics, swap pause.

Drives a real ``repro.service`` server over real sockets (keep-alive
HTTP/1.1 clients on an asyncio loop) and reports three sections:

* **throughput** — a mixed read workload (``/control``, ``/close-links``,
  ``/ubo``, ``/neighbors``, ``/stats``) over concurrent connections:
  req/s, p50/p99 latency, and the LRU hit rate;
* **cold_vs_hot** — ``/close-links`` at never-repeated thresholds (every
  request a full computation) vs one threshold repeated (every request
  an LRU hit); the hot p50 must be >= 10x lower than the cold p50;
* **mutation** — a ``POST /mutations`` batch with readers hammering
  ``/control`` throughout the re-augmentation: reader p99 during the
  rebuild, the snapshot-swap pause, and the versions readers observed
  (only the old one, then only the new one — never a half state);
* **multitenant** — N tenants behind one registry service (routed via
  ``/t/{tenant}/...``) vs N independent single-tenant servers on the
  same workload: req/s for both deployments, every sampled response
  byte-compared between the two, and a mutation cycle on one tenant
  asserted to leave every other tenant's payloads untouched;
* **multiproc** — the same mixed read workload against a
  ``ServicePool`` (SO_REUSEPORT workers on shared-memory snapshots):
  N-worker req/s vs a 1-worker pool baseline on the same graph,
  per-response identity asserted against the in-process oracle
  snapshot, and the per-worker attach/swap pause of one
  mutation->publish cycle.

Standalone on purpose (argparse, not pytest): CI's smoke job runs
``python benchmarks/bench_service.py --smoke`` and archives
``BENCH_service.json`` as a per-PR artifact.  The full run enforces the
PR's acceptance floors: hot p50 >= 10x lower than cold p50, and —
when the host actually has >= 4 CPUs to parallelise over — multiproc
req/s >= 3x the 1-worker baseline.  On smaller hosts the measured
ratio is still recorded, with ``gate.enforced = false`` and the reason.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import realworld_like  # noqa: E402
from repro.service import ServiceConfig, build_service  # noqa: E402
from repro.service.workers import PoolConfig, ServicePool  # noqa: E402

#: (persons, total requests, connections) per mode
SCALES = {"smoke": (150, 300, 8), "full": (500, 2000, 16)}
#: never-repeated close-link thresholds of the cold section (count per mode)
COLD_QUERIES = {"smoke": 15, "full": 40}
#: repeats of the single hot threshold
HOT_QUERIES = {"smoke": 150, "full": 400}
#: serving processes of the multiproc section
POOL_WORKERS = {"smoke": 2, "full": 4}
#: tenants of the multitenant section (one registry service vs N solos)
MT_TENANTS = {"smoke": 2, "full": 3}
#: multiproc acceptance floor: N-worker req/s vs the 1-worker baseline
POOL_SPEEDUP_TARGET = 3.0


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def _request(reader, writer, method: str, path: str, body: bytes = b""):
    """One request on a kept-alive connection; returns (status, payload)."""
    head = f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    writer.write((head + "\r\n").encode() + body)
    await writer.drain()
    header = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    payload = json.loads(await reader.readexactly(length)) if length else None
    return int(header.split()[1]), payload


async def _drive(port: int, paths: list[str], connections: int) -> list[float]:
    """Spread ``paths`` over ``connections`` keep-alive clients; latencies."""
    latencies: list[float] = []

    async def worker(chunk: list[str]) -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            for path in chunk:
                started = time.perf_counter()
                status, _ = await _request(reader, writer, "GET", path)
                latencies.append(time.perf_counter() - started)
                if status != 200:
                    raise SystemExit(f"FATAL: {path} answered {status}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    chunks = [paths[i::connections] for i in range(connections)]
    await asyncio.gather(*(worker(chunk) for chunk in chunks if chunk))
    return latencies


def _mixed_paths(graph, total: int) -> list[str]:
    companies = [node.id for node in graph.companies()][:20]
    persons = [node.id for node in graph.persons()][:10]
    rotation = (
        ["/control", "/control?threshold=0.4", "/close-links", "/stats", "/family"]
        + [f"/ubo/{c}" for c in companies[:8]]
        + [f"/neighbors/{p}?depth=2" for p in persons[:5]]
    )
    return [rotation[i % len(rotation)] for i in range(total)]


async def _bench_throughput(service, total: int, connections: int) -> dict:
    paths = _mixed_paths(service.manager.current.graph, total)
    hits_before = service.cache.lru.hits
    misses_before = service.cache.lru.misses
    started = time.perf_counter()
    latencies = await _drive(service.port, paths, connections)
    wall_s = time.perf_counter() - started
    hits = service.cache.lru.hits - hits_before
    misses = service.cache.lru.misses - misses_before
    return {
        "requests": len(latencies),
        "connections": connections,
        "wall_s": round(wall_s, 4),
        "req_per_s": round(len(latencies) / wall_s, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "cache_hit_rate": round(hits / max(1, hits + misses), 4),
    }


async def _bench_cold_vs_hot(service, cold_n: int, hot_n: int) -> dict:
    # cold: every threshold distinct -> every request computes; the low
    # range is where the path enumeration is genuinely expensive
    cold_paths = [
        f"/close-links?threshold={0.05 + 0.25 * i / cold_n:.6f}"
        for i in range(cold_n)
    ]
    cold = await _drive(service.port, cold_paths, 1)
    # hot: one threshold repeated -> one computation, then LRU hits
    hot_paths = ["/close-links?threshold=0.45"] * hot_n
    hot = await _drive(service.port, hot_paths, 1)
    cold_p50 = _percentile(cold, 0.50)
    hot_p50 = _percentile(hot[1:], 0.50)  # drop the one cold fill
    return {
        "cold_requests": len(cold),
        "hot_requests": len(hot),
        "cold_p50_ms": round(cold_p50 * 1000, 3),
        "hot_p50_ms": round(hot_p50 * 1000, 3),
        "hot_speedup": round(cold_p50 / hot_p50, 1) if hot_p50 else None,
    }


async def _bench_mutation(service) -> dict:
    graph = service.manager.current.graph
    owner = next(graph.companies()).id
    deltas = [
        {"op": "add_company", "id": "BENCHCO", "properties": {"name": "BenchCo"}},
        {"op": "add_shareholding", "owner": owner, "company": "BENCHCO", "share": 0.8},
    ]
    versions: list[int] = []
    reader_latencies: list[float] = []
    done = asyncio.Event()

    async def reader_loop() -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
        try:
            while not done.is_set():
                started = time.perf_counter()
                _status, payload = await _request(reader, writer, "GET", "/control")
                reader_latencies.append(time.perf_counter() - started)
                versions.append(payload["version"])
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    readers = [asyncio.create_task(reader_loop()) for _ in range(4)]
    await asyncio.sleep(0.05)  # readers warmed up on the old version
    body = json.dumps({"deltas": deltas}).encode()
    conn_reader, conn_writer = await asyncio.open_connection("127.0.0.1", service.port)
    started = time.perf_counter()
    status, published = await _request(
        conn_reader, conn_writer, "POST", "/mutations?wait=1", body
    )
    mutation_s = time.perf_counter() - started
    conn_writer.close()
    await conn_writer.wait_closed()
    if status != 200:
        raise SystemExit(f"FATAL: mutation answered {status}: {published}")
    await asyncio.sleep(0.05)  # readers observe the new version
    done.set()
    await asyncio.gather(*readers)

    observed = sorted(set(versions))
    old, new = published["version"] - 1, published["version"]
    if any(v not in (old, new) for v in observed):
        raise SystemExit(f"FATAL: readers observed versions {observed}")
    if versions != sorted(versions):
        raise SystemExit("FATAL: a reader regressed to an older version")
    return {
        "published_version": new,
        "mutation_wall_s": round(mutation_s, 4),
        "rebuild_s": round(service.updater.last_rebuild_s, 4),
        "swap_pause_ms": round(service.manager.last_swap_pause_s * 1000, 4),
        "reader_requests_during": len(reader_latencies),
        "reader_p99_ms": round(_percentile(reader_latencies, 0.99) * 1000, 3),
        "versions_observed": observed,
    }


#: /stats fields that identify the serving process/tenant or carry build
#: timings — legitimately different between a registry tenant and its
#: solo twin, so the identity check strips them
_STATS_IDENTITY_FIELDS = ("tenant", "worker_id", "persist", "built_s", "created_at")


def _canonical(path: str, payload) -> object:
    if path.split("?")[0].endswith("/stats"):
        return {
            k: v for k, v in payload.items() if k not in _STATS_IDENTITY_FIELDS
        }
    return payload


async def _bench_multitenant(mode: str) -> dict:
    """N tenants behind one registry service vs N single-tenant solos.

    The same per-tenant workload runs interleaved against ``/t/{tenant}``
    routes of one service and un-prefixed against N independent servers.
    Every sampled response must be byte-identical between the two
    deployments, including across a mutation cycle on one tenant that
    must leave every other tenant's payloads untouched.
    """
    persons, total, connections = SCALES[mode]
    tenants = [f"tenant{i}" for i in range(MT_TENANTS[mode])]
    graphs = {
        t: realworld_like(persons, seed=20 + i)[0]
        for i, t in enumerate(tenants)
    }
    multi = build_service(
        graphs[tenants[0]], config=ServiceConfig(port=0), tenant=tenants[0]
    )
    for t in tenants[1:]:
        multi.registry.create(t, graph=graphs[t])
    solos = {
        t: build_service(graphs[t], config=ServiceConfig(port=0)) for t in tenants
    }
    await multi.start()
    for solo in solos.values():
        await solo.start()
    try:
        share = max(1, total // len(tenants))
        per_tenant = {t: _mixed_paths(graphs[t], share) for t in tenants}
        # round-robin so every connection mixes tenants in one window
        multi_paths = [
            f"/t/{t}{per_tenant[t][i]}"
            for i in range(share)
            for t in tenants
        ]
        started = time.perf_counter()
        latencies = await _drive(multi.port, multi_paths, connections)
        multi_wall = time.perf_counter() - started
        solo_wall = 0.0
        solo_requests = 0
        for t in tenants:
            started = time.perf_counter()
            solo_requests += len(
                await _drive(solos[t].port, per_tenant[t], connections)
            )
            solo_wall += time.perf_counter() - started

        async def assert_identity(t: str, paths) -> int:
            checked = 0
            for path in dict.fromkeys(paths):
                s_multi, p_multi = await _get(multi.port, f"/t/{t}{path}")
                s_solo, p_solo = await _get(solos[t].port, path)
                if s_multi != s_solo or (
                    _canonical(path, p_multi) != _canonical(path, p_solo)
                ):
                    raise SystemExit(
                        f"FATAL: multitenant /t/{t}{path} diverged from the "
                        f"single-tenant twin"
                    )
                checked += 1
            return checked

        identity_checked = 0
        for t in tenants:
            identity_checked += await assert_identity(t, per_tenant[t])

        # mutate tenant 0 in both deployments; every other tenant must
        # answer byte-identically to its pre-mutation payloads
        target, bystanders = tenants[0], tenants[1:]
        frozen = {
            t: await _get(multi.port, f"/t/{t}/control") for t in bystanders
        }
        owner = next(graphs[target].companies()).id
        deltas = [
            {"op": "add_company", "id": "MTCO", "properties": {"name": "MtCo"}},
            {"op": "add_shareholding", "owner": owner, "company": "MTCO",
             "share": 0.7},
        ]
        body = json.dumps({"deltas": deltas}).encode()
        for port, path in (
            (multi.port, f"/t/{target}/mutations?wait=1"),
            (solos[target].port, "/mutations?wait=1"),
        ):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                status, payload = await _request(reader, writer, "POST", path, body)
            finally:
                writer.close()
                await writer.wait_closed()
            if status != 200:
                raise SystemExit(f"FATAL: multitenant mutation on {path} "
                                 f"answered {status}: {payload}")
        identity_after = await assert_identity(target, per_tenant[target])
        for t in bystanders:
            if await _get(multi.port, f"/t/{t}/control") != frozen[t]:
                raise SystemExit(
                    f"FATAL: mutating {target} changed /t/{t}/control"
                )
        return {
            "tenants": len(tenants),
            "registry_service": {
                "requests": len(latencies),
                "wall_s": round(multi_wall, 4),
                "req_per_s": round(len(latencies) / multi_wall, 1),
                "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
                "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
            },
            "solo_services": {
                "requests": solo_requests,
                "wall_s": round(solo_wall, 4),
                "req_per_s": round(solo_requests / solo_wall, 1),
            },
            "identity_checked_paths": identity_checked,
            "mutation_isolation": {
                "mutated_tenant": target,
                "published_version": multi.registry.get(target).version,
                "identity_after_mutation": identity_after,
                "bystanders_unchanged": len(bystanders),
            },
        }
    finally:
        await multi.stop()
        for solo in solos.values():
            await solo.stop()


def _norm(payload) -> object:
    """Oracle payloads as they appear on the wire (JSON round trip)."""
    return json.loads(json.dumps(payload, default=str))


async def _get(port: int, path: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await _request(reader, writer, "GET", path)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _pool_throughput(pool, paths: list[str], connections: int) -> dict:
    started = time.perf_counter()
    latencies = asyncio.run(_drive(pool.port, paths, connections))
    wall_s = time.perf_counter() - started
    return {
        "requests": len(latencies),
        "connections": connections,
        "wall_s": round(wall_s, 4),
        "req_per_s": round(len(latencies) / wall_s, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
    }


def _assert_pool_identity(pool, graph) -> int:
    """Every sampled response byte-equal to the in-process oracle."""
    oracle = pool.oracle
    companies = sorted((n.id for n in graph.companies()), key=str)[:6]
    expectations = [
        ("/control", _norm(oracle.control_payload())),
        ("/close-links", _norm(oracle.close_links_payload())),
        ("/family", _norm(oracle.family_payload())),
    ] + [
        (f"/ubo/{c}", _norm(oracle.ubo_payloads([c])[c])) for c in companies
    ]
    for path, expected in expectations:
        status, payload = asyncio.run(_get(pool.port, path))
        if status != 200:
            raise SystemExit(f"FATAL: multiproc {path} answered {status}")
        if payload != expected:
            raise SystemExit(f"FATAL: multiproc {path} diverged from the oracle")
    return len(expectations)


def _bench_multiproc(mode: str, smoke: bool) -> dict:
    persons, total, connections = SCALES[mode]
    workers = POOL_WORKERS[mode]
    # a fresh graph: the single-process sections mutated theirs
    graph, _truth = realworld_like(persons, seed=7)
    paths = _mixed_paths(graph, total)
    runs: dict[int, dict] = {}
    publish: dict = {}
    identity_checked = 0
    for n in (1, workers):
        pool = ServicePool(
            graph,
            workers=n,
            config=ServiceConfig(port=0),
            pool_config=PoolConfig(sweep_interval_s=0.1),
        )
        pool.start()
        try:
            asyncio.run(_drive(pool.port, paths[: total // 10], connections))  # warm
            runs[n] = {"workers": n, **_pool_throughput(pool, paths, connections)}
            if n == workers:
                identity_checked = _assert_pool_identity(pool, graph)
                owner = next(graph.companies()).id
                result = pool.mutate([
                    {
                        "op": "add_company",
                        "id": "MPROCCO",
                        "properties": {"name": "MProcCo"},
                    },
                    {
                        "op": "add_shareholding",
                        "owner": owner,
                        "company": "MPROCCO",
                        "share": 0.8,
                    },
                ])
                publish = {
                    "published_version": result["version"],
                    "workers_attached": result["workers_attached"],
                    "per_worker_swap": {
                        str(w): {
                            "attach_ms": round(s["attach_s"] * 1000, 3),
                            "swap_pause_ms": round(s["swap_pause_s"] * 1000, 4),
                        }
                        for w, s in sorted(pool.last_swap.items())
                    },
                }
        finally:
            pool.stop(drain=False)
    baseline, scaled = runs[1], runs[workers]
    speedup = round(scaled["req_per_s"] / baseline["req_per_s"], 2)
    cpus = os.cpu_count() or 1
    if smoke:
        reason = "smoke mode measures but does not gate"
    elif cpus < 4:
        reason = f"requires >= 4 CPUs to parallelise over, found {cpus}"
    else:
        reason = None
    return {
        "workers": workers,
        "cpus": cpus,
        "baseline_1w": baseline,
        f"pool_{workers}w": scaled,
        "speedup_vs_1w": speedup,
        "identity_checked_paths": identity_checked,
        "publish": publish,
        "gate": {
            "target_x": POOL_SPEEDUP_TARGET,
            "enforced": reason is None,
            **({"reason": reason} if reason else {}),
        },
    }


def run_benchmark(smoke: bool) -> dict:
    mode = "smoke" if smoke else "full"
    persons, total, connections = SCALES[mode]
    graph, _truth = realworld_like(persons, seed=7)
    service = build_service(graph, config=ServiceConfig(port=0))

    async def main() -> dict:
        await service.start()
        sections = {
            "throughput": await _bench_throughput(service, total, connections),
            "cold_vs_hot": await _bench_cold_vs_hot(
                service, COLD_QUERIES[mode], HOT_QUERIES[mode]
            ),
            "mutation": await _bench_mutation(service),
        }
        await service.stop()
        sections["multitenant"] = await _bench_multitenant(mode)
        return sections

    sections = asyncio.run(main())
    sections["multiproc"] = _bench_multiproc(mode, smoke)
    payload = {
        "mode": mode,
        "graph": {"nodes": graph.node_count, "edges": graph.edge_count},
        **sections,
    }
    t, c, m = payload["throughput"], payload["cold_vs_hot"], payload["mutation"]
    print(
        f"{'throughput':>12} {t['req_per_s']:8.1f} req/s  "
        f"p50={t['p50_ms']:.2f}ms p99={t['p99_ms']:.2f}ms "
        f"hit_rate={t['cache_hit_rate']:.2%}"
    )
    print(
        f"{'cold_vs_hot':>12} cold_p50={c['cold_p50_ms']:.2f}ms "
        f"hot_p50={c['hot_p50_ms']:.2f}ms speedup={c['hot_speedup']}x"
    )
    print(
        f"{'mutation':>12} rebuild={m['rebuild_s']:.2f}s "
        f"swap_pause={m['swap_pause_ms']:.3f}ms "
        f"reader_p99={m['reader_p99_ms']:.2f}ms versions={m['versions_observed']}"
    )
    mt = payload["multitenant"]
    print(
        f"{'multitenant':>12} {mt['registry_service']['req_per_s']:8.1f} req/s "
        f"@{mt['tenants']} tenants (solos={mt['solo_services']['req_per_s']:.1f}"
        f" req/s)  identity={mt['identity_checked_paths']}"
        f"+{mt['mutation_isolation']['identity_after_mutation']} paths"
    )
    mp = payload["multiproc"]
    scaled = mp[f"pool_{mp['workers']}w"]
    print(
        f"{'multiproc':>12} {scaled['req_per_s']:8.1f} req/s @{mp['workers']}w  "
        f"baseline={mp['baseline_1w']['req_per_s']:.1f} req/s @1w  "
        f"speedup={mp['speedup_vs_1w']}x "
        f"(gate {'on' if mp['gate']['enforced'] else 'off'}, "
        f"{mp['cpus']} cpus)"
    )
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph and request counts (the CI smoke job)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"# wrote {args.output}")
    if not args.smoke:
        speedup = payload["cold_vs_hot"]["hot_speedup"]
        if speedup is None or speedup < 10.0:
            raise SystemExit(
                f"FATAL: cache-hit p50 is only {speedup}x lower than the "
                f"cold p50 (< 10x target)"
            )
    multiproc = payload["multiproc"]
    if multiproc["gate"]["enforced"]:
        ratio = multiproc["speedup_vs_1w"]
        if ratio < POOL_SPEEDUP_TARGET:
            raise SystemExit(
                f"FATAL: {multiproc['workers']}-worker pool is only {ratio}x "
                f"the 1-worker baseline (< {POOL_SPEEDUP_TARGET}x target)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
