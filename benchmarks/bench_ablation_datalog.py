"""Ablation: reasoning-engine design choices.

Two comparisons on the declarative company-control task (Algorithm 5)
over a scale-free ownership pyramid:

* **semi-naive vs naive evaluation** — the delta-driven fixpoint must
  beat re-deriving everything every round;
* **declarative vs procedural** — the Vadalog program against the direct
  worklist implementation (the paper argues 20-30 lines of rules replace
  1k+ lines of code; the runtime premium paid for declarativity is what
  this ablation quantifies), with equality of results asserted.
"""

from repro.bench import Experiment, ownership_pyramid, timed
from repro.core import (
    KnowledgeGraph,
    control_program,
    input_mapping,
    link_creation,
    output_mapping,
)
from repro.datalog import Database, Engine
from repro.graph import to_facts
from repro.ownership import control_closure

COMPANIES = 150


def build_kg(graph):
    kg = KnowledgeGraph(graph)
    kg.add_rules("m", input_mapping(False))
    kg.add_rules("c", control_program())
    kg.add_rules("l", link_creation(("control",)))
    kg.add_rules("o", output_mapping(("control",)))
    return kg


def test_ablation_engine_modes(run_once, benchmark):
    graph = ownership_pyramid(COMPANIES, m=2, seed=3)
    kg = build_kg(graph)
    program = kg.program()

    def run_seminaive():
        engine = Engine(program, to_facts(graph))
        engine.run()
        return engine

    def run_naive():
        engine = Engine(program, to_facts(graph), seminaive=False)
        engine.run()
        return engine

    def run_procedural():
        return control_closure(graph)

    experiment = Experiment("Ablation — engine evaluation modes", "mode")
    seminaive_engine, seminaive_s = timed(run_seminaive)
    naive_engine, naive_s = timed(run_naive)
    procedural_pairs, procedural_s = timed(run_procedural)
    experiment.record("semi-naive", seconds=seminaive_s,
                      firings=seminaive_engine.stats.rule_firings)
    experiment.record("naive", seconds=naive_s,
                      firings=naive_engine.stats.rule_firings)
    experiment.record("procedural", seconds=procedural_s)
    print()
    experiment.print()

    declarative = set(seminaive_engine.query("control"))
    assert declarative == set(naive_engine.query("control"))
    assert declarative == procedural_pairs
    # semi-naive fires (far) fewer rule instantiations than naive; wall time
    # is workload-dependent at this scale so only sanity-bounded
    assert seminaive_engine.stats.rule_firings <= naive_engine.stats.rule_firings
    assert seminaive_s <= naive_s * 3.0

    run_once(benchmark, run_seminaive)
