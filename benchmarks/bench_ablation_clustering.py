"""Ablation: what does each clustering level buy?

Four configurations of the same family-detection task:

* ``none``       — no clustering at all (exhaustive pairwise comparison);
* ``blocking``   — second-level feature blocking only (paper's
                   #GenerateBlocks);
* ``embedding``  — first-level node2vec clustering only
                   (#GraphEmbedClust);
* ``two-level``  — the full Vada-Link configuration.

Reported per configuration: comparisons, elapsed time, and recall against
the exhaustive run's links (the DESIGN.md ablation of the paper's central
design choice: blocking bounds the quadratic blow-up, embeddings keep
related nodes together).
"""

from repro.bench import Experiment, no_cluster_ground_truth, predicted_links, realworld_like, timed
from repro.core import (
    BlockingScheme,
    FamilyLinkCandidate,
    VadaLink,
    VadaLinkConfig,
)
from repro.linkage import persons_of, train_classifiers

PERSONS = 250


def test_ablation_clustering_levels(run_once, benchmark):
    graph, truth = realworld_like(PERSONS, seed=29)
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)

    def rules():
        return [FamilyLinkCandidate(c) for c in classifiers]

    configurations = {
        "none": VadaLinkConfig(
            first_level_clusters=1, use_embeddings=False,
            blocking=BlockingScheme.exhaustive(), max_rounds=1,
        ),
        "blocking": VadaLinkConfig(
            first_level_clusters=1, use_embeddings=False, max_rounds=1,
        ),
        "embedding": VadaLinkConfig(
            first_level_clusters=8, use_embeddings=True,
            blocking=BlockingScheme.exhaustive(), max_rounds=2,
        ),
        "two-level": VadaLinkConfig(
            first_level_clusters=8, use_embeddings=True, max_rounds=2,
        ),
    }

    exhaustive_links = no_cluster_ground_truth(graph, rules())
    experiment = Experiment("Ablation — clustering levels", "configuration")
    results = {}
    for name, config in configurations.items():
        result, elapsed = timed(lambda: VadaLink(rules(), config).augment(graph))
        found = predicted_links(result.new_edges)
        recall = len(found & exhaustive_links) / max(len(exhaustive_links), 1)
        results[name] = (result.comparisons, elapsed, recall)
        experiment.record(name, comparisons=result.comparisons,
                          seconds=elapsed, recall=recall)
    print()
    experiment.print()

    # blocking slashes comparisons versus exhaustive
    assert results["blocking"][0] < results["none"][0] / 5
    # two-level keeps most of the exhaustive recall
    assert results["two-level"][2] > 0.6
    # blocking-only recall is at least as good as two-level (no first-level
    # splits); two-level runs more rounds yet stays far below exhaustive
    assert results["blocking"][2] >= results["two-level"][2] - 1e-9
    assert results["two-level"][0] < results["none"][0] / 3

    run_once(
        benchmark,
        lambda: VadaLink(rules(), configurations["blocking"]).augment(graph),
    )
