"""Figure 4(b): elapsed time vs number of nodes on high-density synthetic
graphs.

Paper: 6 Barabási graphs with 1-10k nodes and much higher density than the
real data; elapsed times one order of magnitude above Figure 4(a) but the
trend is still linear.

Here: the same comparison at reproduction scale.  The assertions check
(i) the dense series is slower than the sparse one at equal size and
(ii) growth remains clearly sub-quadratic.
"""

from repro.bench import Experiment, dense_synthetic, realworld_like, timed
from repro.core import FamilyLinkCandidate, VadaLink, VadaLinkConfig
from repro.linkage import persons_of, train_classifiers

SIZES = (100, 200, 400, 800)


def run_vadalink(graph, truth):
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
    rules = [FamilyLinkCandidate(c) for c in classifiers]
    config = VadaLinkConfig(first_level_clusters=8, max_rounds=2)
    return VadaLink(rules, config).augment(graph)


def test_fig4b_time_vs_nodes_dense(run_once, benchmark):
    experiment = Experiment("Figure 4(b) — time vs nodes (dense synthetic)", "persons")
    dense_series = []
    sparse_at_max = None
    for persons in SIZES:
        graph, truth = dense_synthetic(persons, seed=11)
        result, elapsed = timed(lambda: run_vadalink(graph, truth))
        dense_series.append((persons, elapsed))
        experiment.record(persons, dense_s=elapsed, edges=graph.edge_count,
                          comparisons=result.comparisons)
    sparse_graph, sparse_truth = realworld_like(SIZES[-1], seed=11)
    _, sparse_at_max = timed(lambda: run_vadalink(sparse_graph, sparse_truth))
    print()
    experiment.print()
    print(f"(sparse reference at {SIZES[-1]} persons: {sparse_at_max:.3f}s)")

    # dense workloads cost more than sparse ones at the same size
    assert dense_series[-1][1] > sparse_at_max * 0.8
    # growth stays sub-quadratic
    growth = dense_series[-1][1] / max(dense_series[0][1], 1e-9)
    quadratic_growth = (SIZES[-1] / SIZES[0]) ** 2
    assert growth < quadratic_growth / 2

    graph, truth = dense_synthetic(SIZES[1], seed=11)
    run_once(benchmark, lambda: run_vadalink(graph, truth))
