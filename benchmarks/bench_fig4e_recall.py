"""Figure 4(e): recall vs number of clusters.

Paper protocol (Section 6.2): run in no-cluster mode to obtain the full
set of predictable links; remove 20% of them at random; re-run with k
clusters; recall = recovered/removed.  Reported: recall maximal at one
cluster, 99.4% at 20 clusters, 98.6% at 50, a slow decrease, and the
approach collapsing under 50% past ~400 clusters.

Here: same protocol via :mod:`repro.bench.recall`, averaged over removal
repeats.  The assertions pin the published shape: near-perfect recall
through ~20 clusters, monotone-ish slow decay, sharp loss at the extreme
right of the sweep.
"""

from repro.bench import Experiment, realworld_like, recall_curve
from repro.core import FamilyLinkCandidate, VadaLinkConfig
from repro.linkage import persons_of, train_classifiers

PERSONS = 400
CLUSTERS = (1, 2, 5, 10, 20, 50, 100, 200, 400, 500)


def test_fig4e_recall_vs_clusters(run_once, benchmark):
    graph, truth = realworld_like(PERSONS, seed=23)
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
    rules = [FamilyLinkCandidate(c) for c in classifiers]
    config = VadaLinkConfig(
        first_level_clusters=1, use_embeddings=False, max_rounds=2
    )

    points = recall_curve(
        graph, rules, CLUSTERS, config=config, removal_fraction=0.2, repeats=2, seed=5
    )

    experiment = Experiment("Figure 4(e) — recall vs number of clusters", "clusters")
    paper = {1: 1.0, 20: 0.994, 50: 0.986, 400: "<0.5", 500: "<0.5"}
    for point in points:
        experiment.record(
            point.clusters,
            recall=point.recall,
            comparisons=point.comparisons,
            seconds=point.elapsed_seconds,
        )
    print()
    experiment.print()
    print(experiment.ascii_plot("recall", logx=True))
    print(f"(paper reference points: {paper})")

    by_clusters = {p.clusters: p.recall for p in points}
    assert by_clusters[1] == 1.0, "single cluster recovers everything"
    assert by_clusters[20] > 0.9, "recall at 20 clusters should stay near-perfect"
    assert by_clusters[50] > 0.8, "recall at 50 clusters stays high"
    assert by_clusters[500] < by_clusters[20], "extreme clustering loses recall"
    assert by_clusters[500] < 0.8, "hundreds of clusters break recall"

    run_once(
        benchmark,
        lambda: recall_curve(graph, rules, (20,), config=config, repeats=1, seed=5),
    )
