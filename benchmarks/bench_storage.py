"""Durable-store bench — mmap attach vs cold rebuild, out-of-core RAM cap.

Two sections, both measured in **subprocesses** so wall clock and peak
memory belong to exactly one boot path:

* **attach_vs_cold** — a scale ladder; at each size the parent builds a
  snapshot, persists it to a :class:`repro.storage.FrameStore`, and
  computes the oracle payloads (control / close-link / family / UBO
  rows).  A *cold* child then boots the full pipeline from the CSV
  extract and an *attach* child boots by ``FrameStore.attach_latest``
  (mmap, no pipeline).  Both children recompute the payloads, which
  must match the oracle **row for row** — the speedup only counts if
  the answers are identical.  Reported per scale: wall seconds and
  ``ru_maxrss`` for both paths, and the attach speedup.
* **out_of_core** — the RAM-budget proof.  Uncapped probe children
  measure ``VmPeak`` for (a) streaming generation into the store via
  :class:`~repro.storage.StreamingGraphWriter` + point queries through
  :class:`~repro.storage.OutOfCoreGraph`, and (b) the same spec built
  fully in memory.  The harness then sets ``RLIMIT_AS`` halfway
  between the two peaks and reruns both: streaming must still succeed
  under the cap, in-memory generation must die with ``MemoryError`` —
  i.e. the streamed graph is provably bigger than the RAM budget.

Standalone on purpose (argparse, not pytest): CI's storage smoke job
runs ``python benchmarks/bench_storage.py --smoke`` and archives
``BENCH_storage.json``.  The full run enforces the PR's acceptance
floors: attach >= 10x faster than the cold rebuild at the largest
scale, and the out-of-core flip (streaming ok / in-memory OOM) under
the cap.  Smoke measures the same numbers without gating, recording
``gate.enforced = false`` and the reason.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: (persons, companies) ladder per mode; the gate applies to the last
SCALES = {
    "smoke": [(300, 220)],
    "full": [(600, 450), (2000, 1500), (5000, 3800)],
}
#: (persons, companies) of the out-of-core section — large enough that
#: the in-memory graph dwarfs the fixed interpreter/numpy footprint
OOC_SCALES = {"smoke": (100000, 75000), "full": (300000, 230000)}
ATTACH_SPEEDUP_TARGET = 10.0
SEED = 17


def _snapshot_config():
    from repro.service import SnapshotConfig

    return SnapshotConfig(augment=True, first_level_clusters=1, use_embeddings=False)


def _payloads(snapshot) -> dict:
    """Canonical JSON rows of every served result set — the identity oracle."""
    return json.loads(json.dumps({
        "control": sorted([str(a), str(b)] for a, b in snapshot.control),
        "close": sorted([str(a), str(b)] for a, b in snapshot.close_links),
        "family": sorted([str(a), str(b), str(c)] for a, b, c in snapshot.family_links),
        "ubo": {
            str(company): [
                [str(o.person), repr(o.integrated_share), bool(o.controls)]
                for o in owners
            ]
            for company, owners in snapshot.ubo.items()
        },
    }))


def _vm_peak_kb() -> int:
    for line in open("/proc/self/status"):
        if line.startswith("VmPeak:"):
            return int(line.split()[1])
    return 0


# ----------------------------------------------------------------------
# child processes (dispatched via --child; print one JSON object)
# ----------------------------------------------------------------------

def _child_cold(extract: str) -> dict:
    import resource

    from repro.graph.io import read_company_csv
    from repro.service import SnapshotBuilder

    started = time.perf_counter()
    graph = read_company_csv(extract)
    snapshot = SnapshotBuilder(_snapshot_config()).build(graph)
    wall_s = time.perf_counter() - started
    return {
        "wall_s": wall_s,
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "payloads": _payloads(snapshot),
    }


def _child_attach(store_dir: str) -> dict:
    import resource

    from repro.storage import FrameStore

    started = time.perf_counter()
    store = FrameStore.open(store_dir)
    snapshot = store.attach_latest()
    wall_s = time.perf_counter() - started
    return {
        "wall_s": wall_s,
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "payloads": _payloads(snapshot),
    }


def _apply_cap(cap_kb: int) -> None:
    # soft limit only: a child that OOMs can lift it again just to
    # report the outcome (the hard limit would trap it mid-traceback)
    if cap_kb:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, (cap_kb * 1024, resource.RLIM_INFINITY))


def _lift_cap() -> None:
    import resource

    resource.setrlimit(
        resource.RLIMIT_AS, (resource.RLIM_INFINITY, resource.RLIM_INFINITY)
    )


def _child_ooc_stream(store_dir: str, persons: int, companies: int, cap_kb: int) -> dict:
    _apply_cap(cap_kb)
    from repro.datagen.company_generator import CompanySpec
    from repro.storage import FrameStore, OutOfCoreGraph, generate_company_graph_stream

    spec = CompanySpec(persons=persons, companies=companies, seed=SEED)
    store = FrameStore.open_or_create(store_dir)
    version, _truth = generate_company_graph_stream(spec, store)
    ooc = OutOfCoreGraph(store, version)
    # point queries against the published columns, still under the cap
    probes = [f"P{i:06d}" for i in range(0, persons, max(1, persons // 16))]
    touched = 0
    for person in probes:
        try:
            touched += len(ooc.successors(person))
        except Exception:
            continue  # generator ids are dense but not guaranteed
    info = {"nodes": ooc.node_count, "edges": ooc.edge_count}
    ooc.close()
    return {
        "ok": True, "version": version, "edges_touched": touched,
        "vm_peak_kb": _vm_peak_kb(), **info,
    }


def _child_ooc_inmem(persons: int, companies: int, cap_kb: int) -> dict:
    _apply_cap(cap_kb)
    from repro.datagen.company_generator import CompanySpec, generate_company_graph

    spec = CompanySpec(persons=persons, companies=companies, seed=SEED)
    try:
        graph, _ = generate_company_graph(spec)
    except MemoryError:
        _lift_cap()
        return {"ok": False, "oom": True, "vm_peak_kb": _vm_peak_kb()}
    return {
        "ok": True, "oom": False, "vm_peak_kb": _vm_peak_kb(),
        "nodes": graph.node_count, "edges": graph.edge_count,
    }


def _run_child(args: list[str], oom_ok: bool = False) -> dict:
    """Run this file as a child measurement process; parse its JSON."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", *args],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        # a capped child can die so hard (MemoryError while handling
        # MemoryError) that it never reports; the crash is the datum
        if oom_ok and "MemoryError" in proc.stderr:
            return {"ok": False, "oom": True, "vm_peak_kb": None}
        raise SystemExit(
            f"FATAL: child {args[0]} exited {proc.returncode}:\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------

def _bench_attach_vs_cold(mode: str, workdir: Path) -> dict:
    from repro.datagen.company_generator import CompanySpec, generate_company_graph
    from repro.graph.io import write_company_csv
    from repro.service import SnapshotBuilder
    from repro.storage import FrameStore

    ladder = []
    for persons, companies in SCALES[mode]:
        label = f"{persons}p"
        extract = workdir / f"extract_{label}"
        store_dir = workdir / f"store_{label}"
        spec = CompanySpec(persons=persons, companies=companies, seed=SEED)
        graph, _ = generate_company_graph(spec)
        write_company_csv(graph, extract)
        snapshot = SnapshotBuilder(_snapshot_config()).build(graph)
        FrameStore.create(store_dir).persist(snapshot)
        oracle = _payloads(snapshot)

        cold = _run_child(["cold", str(extract)])
        attach = _run_child(["attach", str(store_dir)])
        for name, result in (("cold", cold), ("attach", attach)):
            if result["payloads"] != oracle:
                raise SystemExit(
                    f"FATAL: {name} boot at {label} diverged from the oracle"
                )
        speedup = cold["wall_s"] / attach["wall_s"] if attach["wall_s"] else None
        ladder.append({
            "persons": persons,
            "companies": companies,
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "cold_wall_s": round(cold["wall_s"], 4),
            "attach_wall_s": round(attach["wall_s"], 4),
            "cold_max_rss_kb": cold["max_rss_kb"],
            "attach_max_rss_kb": attach["max_rss_kb"],
            "attach_speedup": round(speedup, 2) if speedup else None,
            "payloads_identical": True,
        })
        print(f"  {label}: cold {cold['wall_s']:.3f}s / attach "
              f"{attach['wall_s']:.3f}s ({speedup:.1f}x), payloads identical",
              flush=True)

    reason = "smoke mode measures but does not gate" if mode == "smoke" else None
    return {
        "ladder": ladder,
        "gate": {
            "target_speedup": ATTACH_SPEEDUP_TARGET,
            "measured_speedup": ladder[-1]["attach_speedup"],
            "enforced": reason is None,
            **({"reason": reason} if reason else {}),
        },
    }


def _bench_out_of_core(mode: str, workdir: Path) -> dict:
    persons, companies = OOC_SCALES[mode]
    size = [str(persons), str(companies)]

    print(f"  probing uncapped VmPeak at {persons} persons ...", flush=True)
    stream_probe = _run_child(
        ["ooc-stream", str(workdir / "ooc_probe_store"), *size, "0"])
    inmem_probe = _run_child(["ooc-inmem", *size, "0"])
    stream_vm = stream_probe["vm_peak_kb"]
    inmem_vm = inmem_probe["vm_peak_kb"]
    cap_kb = stream_vm + max(0, (inmem_vm - stream_vm) // 2)

    print(f"  stream VmPeak {stream_vm} kB, in-memory VmPeak {inmem_vm} kB "
          f"-> cap {cap_kb} kB", flush=True)
    stream_capped = _run_child(
        ["ooc-stream", str(workdir / "ooc_capped_store"), *size, str(cap_kb)])
    inmem_capped = _run_child(["ooc-inmem", *size, str(cap_kb)], oom_ok=True)

    reason = None
    if mode == "smoke":
        reason = "smoke mode measures but does not gate"
    elif inmem_vm - stream_vm < 51200:  # < 50 MB of headroom: cap is noise
        reason = (f"in-memory/stream VmPeak gap only {inmem_vm - stream_vm} kB; "
                  "cap would measure allocator noise")
    return {
        "persons": persons,
        "companies": companies,
        "nodes": stream_probe["nodes"],
        "edges": stream_probe["edges"],
        "stream_vm_peak_kb": stream_vm,
        "inmem_vm_peak_kb": inmem_vm,
        "cap_kb": cap_kb,
        "stream_ok_under_cap": bool(stream_capped.get("ok")),
        "stream_vm_peak_under_cap_kb": stream_capped.get("vm_peak_kb"),
        "inmem_oom_under_cap": bool(inmem_capped.get("oom")),
        "edges_touched_under_cap": stream_capped.get("edges_touched"),
        "gate": {
            "enforced": reason is None,
            **({"reason": reason} if reason else {}),
        },
    }


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes, no acceptance gates")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent.parent / "BENCH_storage.json")
    parser.add_argument("--workdir", type=Path, default=None,
                        help="scratch directory (default: a fresh temp dir)")
    parser.add_argument("--child", nargs="+", default=None,
                        help=argparse.SUPPRESS)  # internal measurement mode
    args = parser.parse_args(argv)

    if args.child:
        kind, *rest = args.child
        if kind == "cold":
            result = _child_cold(rest[0])
        elif kind == "attach":
            result = _child_attach(rest[0])
        elif kind == "ooc-stream":
            result = _child_ooc_stream(
                rest[0], int(rest[1]), int(rest[2]), int(rest[3]))
        elif kind == "ooc-inmem":
            result = _child_ooc_inmem(int(rest[0]), int(rest[1]), int(rest[2]))
        else:
            raise SystemExit(f"FATAL: unknown child kind {kind!r}")
        print(json.dumps(result))
        return 0

    mode = "smoke" if args.smoke else "full"
    if args.workdir is None:
        import tempfile

        scratch = tempfile.TemporaryDirectory(prefix="bench_storage_")
        workdir = Path(scratch.name)
    else:
        workdir = args.workdir
        workdir.mkdir(parents=True, exist_ok=True)
        scratch = None

    print(f"[bench_storage] attach_vs_cold ({mode})", flush=True)
    attach_vs_cold = _bench_attach_vs_cold(mode, workdir)
    print(f"[bench_storage] out_of_core ({mode})", flush=True)
    out_of_core = _bench_out_of_core(mode, workdir)
    if scratch is not None:
        scratch.cleanup()

    report = {
        "mode": mode,
        "attach_vs_cold": attach_vs_cold,
        "out_of_core": out_of_core,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_storage] report -> {args.output}")

    if attach_vs_cold["gate"]["enforced"]:
        measured = attach_vs_cold["gate"]["measured_speedup"]
        if measured is None or measured < ATTACH_SPEEDUP_TARGET:
            raise SystemExit(
                f"FATAL: attach speedup {measured} below the "
                f"{ATTACH_SPEEDUP_TARGET}x floor at the largest scale"
            )
    if out_of_core["gate"]["enforced"]:
        if not out_of_core["stream_ok_under_cap"]:
            raise SystemExit("FATAL: streaming generation failed under the RAM cap")
        if not out_of_core["inmem_oom_under_cap"]:
            raise SystemExit(
                "FATAL: in-memory generation survived the RAM cap — the "
                "out-of-core path proved nothing"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
