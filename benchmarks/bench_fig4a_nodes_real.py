"""Figure 4(a): Vada-Link elapsed time vs number of nodes (real-world-like
data) against the naive all-pairs baseline.

Paper: 20 subsets of the Italian company graph with 1k-100k person nodes;
Vada-Link grows slightly more than linearly (<20 s at 10k nodes) and stays
far below the quadratic naive curve.

Here: surrogate graphs with the same sparse scale-free profile, scaled to
pure-Python speed (see EXPERIMENTS.md for the scale discussion).  The
naive baseline is executed up to the size where it is already clearly
quadratic and reported as pair-counts beyond that.
"""

from repro.bench import (
    Experiment,
    check_shape,
    naive_comparison_count,
    naive_family_detection,
    realworld_like,
    timed,
)
from repro.core import FamilyLinkCandidate, VadaLink, VadaLinkConfig
from repro.linkage import persons_of, train_classifiers

SIZES = (100, 200, 400, 800, 1600)
NAIVE_LIMIT = 400  # run the quadratic baseline only up to this size


def build_rules(graph, truth):
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
    return [FamilyLinkCandidate(c) for c in classifiers]


def vadalink_run(graph, rules):
    config = VadaLinkConfig(first_level_clusters=8, max_rounds=2)
    return VadaLink(rules, config).augment(graph)


def test_fig4a_time_vs_nodes(run_once, benchmark):
    experiment = Experiment("Figure 4(a) — time vs nodes (real-world-like)", "persons")
    series = []
    benchmark_graph = None
    benchmark_rules = None
    for persons in SIZES:
        graph, truth = realworld_like(persons, seed=7)
        rules = build_rules(graph, truth)
        if persons == SIZES[2]:
            benchmark_graph, benchmark_rules = graph, rules
        result, elapsed = timed(lambda: vadalink_run(graph, rules))
        metrics = {
            "vadalink_s": elapsed,
            "comparisons": result.comparisons,
            "naive_pairs": naive_comparison_count(persons),
        }
        if persons <= NAIVE_LIMIT:
            classifiers = [rule.classifier for rule in rules]
            _, naive_elapsed = timed(lambda: naive_family_detection(graph, classifiers))
            metrics["naive_s"] = naive_elapsed
        series.append((persons, elapsed))
        experiment.record(persons, **metrics)
    print()
    experiment.print()
    print(experiment.ascii_plot("vadalink_s"))

    # shape: far sub-quadratic — time ratio across a 16x size range stays
    # well below the 256x a quadratic algorithm would show
    first_size, first_time = series[0]
    last_size, last_time = series[-1]
    growth = last_time / max(first_time, 1e-9)
    quadratic_growth = (last_size / first_size) ** 2
    assert growth < quadratic_growth / 3, (
        f"growth {growth:.1f}x at {last_size // first_size}x nodes looks quadratic"
    )
    # clustered comparisons stay far below the naive pair count
    for measurement in experiment.measurements:
        assert measurement.metrics["comparisons"] < measurement.metrics["naive_pairs"] / 2

    run_once(benchmark, lambda: vadalink_run(benchmark_graph, benchmark_rules))
