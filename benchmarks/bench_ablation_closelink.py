"""Ablation: four ways to compute accumulated/integrated ownership.

The close-link problem reduces to all-pairs accumulated ownership, which
the repository computes four ways:

* ``enumeration`` — exact simple-path DFS (Definition 2.5 verbatim);
* ``dag-dp``      — topological dynamic programming (exact on DAGs);
* ``matrix``      — sparse linear solve of the walk-sum (cycle-safe);
* ``datalog``     — the declarative Algorithm 6 on the chase engine.

All four must agree on acyclic pyramids; the interesting outputs are the
runtimes and where each approach stops being applicable (enumeration
explodes with density, DAG DP dies on cycles, the walk-sum diverges on
nothing but counts cycles differently).
"""

import pytest

from repro.bench import Experiment, ownership_pyramid, timed
from repro.core import (
    KnowledgeGraph,
    close_link_program,
    input_mapping,
    link_creation,
    output_mapping,
)
from repro.ownership import (
    accumulated_ownership_dag,
    accumulated_ownership_from,
    close_link_pairs,
    integrated_ownership_from,
)

COMPANIES = 120


def datalog_close_links(graph):
    kg = KnowledgeGraph(graph)
    kg.add_rules("m", input_mapping(False))
    kg.add_rules("c", close_link_program(0.2))
    kg.add_rules("l", link_creation(("close_link",)))
    kg.add_rules("o", output_mapping(("close_link",)))
    engine = kg.reason()
    return set(engine.query("close_link"))


def test_ablation_close_link_methods(run_once, benchmark):
    graph = ownership_pyramid(COMPANIES, m=2, seed=9)
    sources = sorted(graph.node_ids(), key=str)

    def by_enumeration():
        return {s: accumulated_ownership_from(graph, s) for s in sources}

    def by_dag_dp():
        return {s: accumulated_ownership_dag(graph, s) for s in sources}

    def by_matrix():
        return {s: integrated_ownership_from(graph, s) for s in sources}

    experiment = Experiment("Ablation — accumulated-ownership methods", "method")
    enumerated, enumeration_s = timed(by_enumeration)
    dp, dp_s = timed(by_dag_dp)
    matrix, matrix_s = timed(by_matrix)
    links, datalog_s = timed(lambda: datalog_close_links(graph))
    experiment.record("enumeration", seconds=enumeration_s)
    experiment.record("dag-dp", seconds=dp_s)
    experiment.record("matrix", seconds=matrix_s)
    experiment.record("datalog (close links)", seconds=datalog_s)
    print()
    experiment.print()

    # exactness: on an acyclic pyramid all three numeric methods agree
    for source in sources:
        for target, value in dp[source].items():
            assert value == pytest.approx(enumerated[source].get(target, 0.0))
            assert value == pytest.approx(matrix[source].get(target, 0.0), abs=1e-9)
    # and the declarative close links equal the procedural ones
    assert links == close_link_pairs(graph)

    run_once(benchmark, by_matrix)
