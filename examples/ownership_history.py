"""Longitudinal analysis of a yearly ownership history.

The Italian company database the paper builds on is a *yearly* series
(2005-2018).  This example simulates a decade of evolution of a
synthetic graph — share transfers, incorporations, dissolutions — and
answers the questions a supervision analyst would ask of the series:
how did control move, which relationships are stable, how the yearly
statistical profile drifts.

    python examples/ownership_history.py
"""

from collections import Counter

from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import evolve

YEARS = list(range(2005, 2015))


def main() -> None:
    graph, _ = generate_company_graph(CompanySpec(persons=150, companies=120, seed=29))
    history = evolve(graph, YEARS, seed=4, transfer_rate=0.06)
    first, last = YEARS[0], YEARS[-1]

    print(f"=== Yearly profile, {first}-{last} ===")
    print(f"{'year':>6}{'nodes':>8}{'edges':>8}{'WCCs':>8}{'max out-deg':>12}")
    for year, snapshot_profile in sorted(history.profile_series().items()):
        print(f"{year:>6}{snapshot_profile.nodes:>8}{snapshot_profile.edges:>8}"
              f"{snapshot_profile.wcc_count:>8}{snapshot_profile.max_out_degree:>12}")

    print(f"\n=== Structural churn {first} -> {last} ===")
    for name, count in history.churn(first, last).items():
        print(f"  {name:15s}{count:>6}")

    print(f"\n=== Control changes {first} -> {last} ===")
    changes = history.control_changes(first, last)
    by_kind = Counter(change.kind for change in changes)
    print(f"  control pairs gained: {by_kind.get('gained', 0)}, "
          f"lost: {by_kind.get('lost', 0)}")
    for change in changes[:6]:
        print(f"    {change.kind:7s} {change.controller} -> {change.company}")

    stable = history.stable_control_pairs()
    print(f"\n=== Control pairs stable through ALL {len(YEARS)} years: "
          f"{len(stable)} ===")
    for controller, company in sorted(stable, key=str)[:6]:
        print(f"    {controller} -> {company}")

    print("\n=== Longest-lived companies (tenure) ===")
    tenure = history.node_tenure()
    newcomers = [n for n, (born, _) in tenure.items() if born > first]
    print(f"  nodes incorporated after {first}: {len(newcomers)}")


if __name__ == "__main__":
    main()
