"""The full Vada-Link pipeline on a synthetic enterprise extract.

Mirrors the Section 5 architecture end to end:

1. ETL — read the three CSV extracts (companies / persons /
   shareholdings) the Chambers-of-Commerce layout would provide;
2. property-graph construction + relational mapping (Algorithm 2);
3. KG reasoning — control, close links, family links (Algorithms 3-9);
4. family materialisation + family-control reasoning;
5. output — the augmented property graph, saved as JSON, plus the
   Section 2 statistical profile before and after augmentation.

    python examples/kg_augmentation_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.core import PipelineConfig, ReasoningPipeline
from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import profile, read_company_csv, save_json, write_company_csv
from repro.linkage import persons_of, train_classifiers

SPEC = CompanySpec(persons=250, companies=150, seed=7)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="vadalink-"))

    # --- 1. the "enterprise data store": three CSV extracts -------------
    source_graph, truth = generate_company_graph(SPEC)
    write_company_csv(source_graph, workdir)
    print(f"ETL extract written to {workdir} "
          f"(companies.csv / persons.csv / shareholdings.csv)")

    # --- 2. graph building pipeline -------------------------------------
    graph = read_company_csv(workdir)
    stats = profile(graph)
    print(f"\nextensional PG: {stats.nodes} nodes, {stats.edges} edges, "
          f"{stats.wcc_count} weakly connected components")

    # --- 3. reasoning ----------------------------------------------------
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
    pipeline = ReasoningPipeline(
        graph,
        PipelineConfig(first_level_clusters=6),
        classifiers=classifiers,
    )

    family_links = pipeline.family_links()
    control = pipeline.control_pairs()
    close = pipeline.close_link_pairs()
    print(f"\npredicted: {len(family_links)} personal links, "
          f"{len(control)} control pairs, {len(close)} close links")

    # --- 4. family control ------------------------------------------------
    families = pipeline.materialise_families(family_links)
    family_control = pipeline.family_control_pairs()
    business_families = {family for family, _ in family_control}
    print(f"detected {len(families)} families; "
          f"{len(business_families)} of them control at least one company "
          f"({len(family_control)} family-control pairs)")

    # --- 5. the augmented knowledge graph --------------------------------
    augmented = pipeline.augment()
    out_path = workdir / "augmented_graph.json"
    save_json(augmented, out_path)
    after = profile(augmented)
    print(f"\naugmented PG: {after.edges} edges "
          f"(+{after.edges - stats.edges} predicted), "
          f"{after.wcc_count} WCCs (was {stats.wcc_count}) — "
          "augmentation improves connectivity, the point of KG augmentation")
    print(f"saved to {out_path}")


if __name__ == "__main__":
    main()
