"""A supervision report: everything a bank supervisor asks of the graph.

Brings the repository's analytics together over one synthetic extract,
the way the paper's motivating applications would consume the KG:

1. data quality screening (over-issued equity, duplicates, orphans);
2. control groups under their ultimate controllers;
3. groups of connected clients and aggregated large exposures;
4. ultimate beneficial owners and AML red flags;
5. a Graphviz DOT export of the largest group for the case file.

    python examples/supervision_report.py
"""

import tempfile
from pathlib import Path

from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import quality_report, to_dot
from repro.ownership import (
    all_beneficial_owners,
    connected_clients,
    control_groups,
    group_exposure,
    opaque_companies,
)

SPEC = CompanySpec(persons=120, companies=90, density="normal", seed=77)


def main() -> None:
    graph, _ = generate_company_graph(SPEC)
    print(f"extract: {graph.node_count} nodes, {graph.edge_count} shareholdings")

    print("\n=== 1. Data quality ===")
    report = quality_report(graph)
    print("\n".join(report.splitlines()[:8]))

    print("\n=== 2. Control groups (ultimate controllers) ===")
    groups = control_groups(graph)
    print(f"{len(groups)} groups; largest:")
    for group in groups[:5]:
        members = ", ".join(sorted(map(str, group.members))[:4])
        suffix = "..." if len(group.members) > 4 else ""
        print(f"  {group.controller}: {len(group.members)} companies "
              f"({members}{suffix})")

    print("\n=== 3. Groups of connected clients / large exposures ===")
    clients = connected_clients(graph)
    print(f"{len(clients)} connected-client groups; largest has "
          f"{len(clients[0]) if clients else 0} members")
    exposures = {node.id: 1.0 for node in graph.companies()}  # unit exposures
    for group, total in group_exposure(graph, exposures)[:3]:
        print(f"  group of {len(group)} clients -> aggregated exposure {total:.0f}")

    print("\n=== 4. Beneficial owners / AML ===")
    owners = all_beneficial_owners(graph)
    controlled = sum(len(v) for v in owners.values())
    red_flags = opaque_companies(graph)
    print(f"{controlled} beneficial-owner relations across {len(owners)} companies")
    print(f"{len(red_flags)} companies with NO detectable beneficial owner")

    print("\n=== 5. Case file (DOT of the largest control group) ===")
    if groups:
        largest = groups[0]
        node_ids = {largest.controller} | largest.members
        subgraph = graph.subgraph([n for n in node_ids if graph.has_node(n)])
        path = Path(tempfile.mkdtemp(prefix="supervision-")) / "group.dot"
        path.write_text(to_dot(subgraph, name="control_group"))
        print(f"wrote {path} — render with: dot -Tsvg {path}")


if __name__ == "__main__":
    main()
