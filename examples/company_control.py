"""Company control on the paper's worked examples (Figures 1 and 2).

Reproduces every control statement the paper makes about its two example
graphs, via both the procedural reference algorithm and the declarative
Vadalog program (Algorithm 5), with a provenance-backed explanation of
one derivation.

    python examples/company_control.py
"""

from repro.core import PipelineConfig, ReasoningPipeline
from repro.graph import figure1_graph, figure2_graph
from repro.ownership import control_chain, controlled_by, group_controlled


def show_graph(title, graph):
    print(f"--- {title} ---")
    for edge in graph.shareholdings():
        print(f"  {edge.source:3s} --{edge.get('w'):.0%}--> {edge.target}")


def main() -> None:
    fig1 = figure1_graph()
    show_graph("Figure 1 ownership edges", fig1)

    print("\n=== Who controls what (procedural, Definition 2.3) ===")
    for person in ("P1", "P2"):
        controlled = sorted(controlled_by(fig1, person))
        print(f"  {person} controls: {', '.join(controlled)}")
    print("  (the paper: P1 -> C, D, E, F;  P2 -> G, H, I;  nobody controls L)")

    print("\n=== The same, declaratively (Vadalog Algorithm 5) ===")
    pipeline = ReasoningPipeline(
        fig1, PipelineConfig(first_level_clusters=1, use_embeddings=False)
    )
    pairs = pipeline.control_pairs(provenance=True)
    for controller in ("P1", "P2"):
        controlled = sorted(y for x, y in pairs if x == controller)
        print(f"  {controller} controls: {', '.join(controlled)}")

    print("\n=== Why does P1 control F? (chase provenance) ===")
    for line in pipeline.last_engine.explain("control", ("P1", "F"))[:6]:
        print(f"  {line}")

    print("\n=== Joint control: P1 and P2 acting as one family ===")
    joint = group_controlled(fig1, ["P1", "P2"])
    only_jointly = sorted(
        joint - controlled_by(fig1, "P1") - controlled_by(fig1, "P2")
    )
    print(f"  jointly (and only jointly) controlled: {', '.join(only_jointly)}")
    print(f"  L's votes held by the pair: "
          f"{fig1.share('F', 'L') + fig1.share('I', 'L'):.0%}")

    print()
    fig2 = figure2_graph()
    print("=== Figure 2, use case (1): does P2 control C7? ===")
    chain = control_chain(fig2, "P2", "C7")
    print(f"  yes — absorption chain: {chain}")


if __name__ == "__main__":
    main()
