"""Detecting personal links on a synthetic population with planted truth.

Generates an Italian-company-database surrogate, trains the Bayesian
classifiers on part of the planted family links, detects links on the
full population via the Vada-Link loop, and scores precision/recall per
link class — the paper's third use case at evaluation scale.

    python examples/family_detection.py
"""

from collections import Counter

from repro.core import FamilyLinkCandidate, VadaLink, VadaLinkConfig
from repro.datagen import CompanySpec, generate_company_graph
from repro.linkage import persons_of, train_classifiers

SPEC = CompanySpec(persons=400, companies=250, seed=42)


def main() -> None:
    graph, truth = generate_company_graph(SPEC)
    persons = persons_of(graph)
    print(f"population: {len(persons)} persons, {len(truth.families)} families, "
          f"{len(truth.links)} planted links")

    classifiers = train_classifiers(persons, truth.links, seed=1)
    for classifier in classifiers:
        print(f"  {classifier.link_class:12s} trained m/u:",
              {name: f"{est.m:.2f}/{est.u:.2f}"
               for name, est in classifier.estimates.items()})

    rules = [FamilyLinkCandidate(c) for c in classifiers]
    vadalink = VadaLink(rules, VadaLinkConfig(first_level_clusters=6, max_rounds=2))
    result = vadalink.augment(graph)

    predicted = {(e.source, e.target, e.label) for e in result.new_edges}
    print(f"\npredicted {len(predicted)} links with {result.comparisons:,} "
          f"comparisons in {result.rounds} rounds "
          f"({result.elapsed_seconds:.1f}s)")
    naive_pairs = len(persons) * (len(persons) - 1) * len(rules)
    print(f"(naive all-pairs would need {naive_pairs:,} comparisons)")

    print(f"\n{'class':14s}{'predicted':>10s}{'true':>8s}{'prec':>8s}{'recall':>8s}")
    for link_class in ("partner_of", "sibling_of", "parent_of"):
        predicted_class = {(x, y) for x, y, c in predicted if c == link_class}
        true_class = truth.pairs(link_class)
        hits = len(predicted_class & true_class)
        precision = hits / len(predicted_class) if predicted_class else 0.0
        recall = hits / len(true_class) if true_class else 0.0
        print(f"{link_class:14s}{len(predicted_class):>10d}{len(true_class):>8d}"
              f"{precision:>8.2f}{recall:>8.2f}")

    confusions = Counter(
        c for x, y, c in predicted
        if (x, y, c) not in truth.links
        and any((x, y, other) in truth.links for other in
                ("partner_of", "sibling_of", "parent_of"))
    )
    print(f"\nrelated-but-misclassified pairs by predicted class: {dict(confusions)}")


if __name__ == "__main__":
    main()
