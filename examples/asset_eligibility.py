"""Asset eligibility screening (close links, Definition 2.6).

A bank wants to accept collateral issued by company Y to back a loan to
company X.  ECB rules forbid this when X and Y are *closely linked*:
accumulated ownership of 20% or more in either direction, or a common
third party holding 20%+ of both.  This example screens every candidate
(loan, collateral) pair of a synthetic company group and explains each
rejection.

    python examples/asset_eligibility.py
"""

from repro.graph import CompanyGraph
from repro.ownership import accumulated_ownership, close_links


def build_group() -> CompanyGraph:
    """A small conglomerate with pyramid ownership and a common investor."""
    graph = CompanyGraph()
    graph.add_person("inv", name="Investor")
    companies = {
        "alpha": "Alpha Industrie SPA",
        "beta": "Beta Logistica SRL",
        "gamma": "Gamma Energia SRL",
        "delta": "Delta Foods SRL",
        "omega": "Omega Credit SPA",
    }
    for company, name in companies.items():
        graph.add_company(company, name=name)

    graph.add_shareholding("alpha", "beta", 0.55)    # pyramid top
    graph.add_shareholding("beta", "gamma", 0.40)    # Phi(alpha,gamma)=0.22
    graph.add_shareholding("inv", "alpha", 0.25)     # common investor
    graph.add_shareholding("inv", "delta", 0.30)     # ... of alpha and delta
    graph.add_shareholding("delta", "omega", 0.10)   # small stake only
    return graph


def main() -> None:
    graph = build_group()
    links = close_links(graph, threshold=0.2)
    linked = {}
    for link in links:
        linked.setdefault((link.x, link.y), link)

    print("=== Close-link screening (threshold 20%) ===")
    companies = sorted(node.id for node in graph.companies())
    for borrower in companies:
        for issuer in companies:
            if borrower >= issuer:
                continue
            link = linked.get((borrower, issuer))
            if link is None:
                verdict = "ELIGIBLE"
                detail = ""
            else:
                verdict = "REJECTED"
                if link.reason == "common-owner":
                    detail = (f" — common owner {link.witness} holds >= 20% "
                              f"of both")
                else:
                    phi = max(
                        accumulated_ownership(graph, borrower, issuer),
                        accumulated_ownership(graph, issuer, borrower),
                    )
                    detail = f" — accumulated ownership {phi:.0%}"
            print(f"  loan to {borrower:6s} backed by {issuer:6s}: {verdict}{detail}")

    print("\n=== Accumulated ownership matrix (Definition 2.5) ===")
    header = "        " + "".join(f"{c:>8s}" for c in companies)
    print(header)
    for source in companies:
        row = [f"{source:8s}"]
        for target in companies:
            if source == target:
                row.append(f"{'-':>8s}")
            else:
                phi = accumulated_ownership(graph, source, target)
                row.append(f"{phi:8.2f}" if phi else f"{'.':>8s}")
        print("".join(row))


if __name__ == "__main__":
    main()
