"""Ultimate-beneficial-owner screening — the AML extension.

Central banks use ownership graphs for anti-money-laundering (the paper's
motivating use cases).  EU AML directives ask: which *natural persons*
ultimately own 25%+ of a company, directly or through chains — and which
companies have no detectable owner at all (the red flags)?

The example builds a deliberately tangled structure: a clean holding
chain, a 51% control pyramid that stays under the ownership threshold,
a circular cross-holding (where integrated ownership still converges),
and a dispersed-ownership shell with no beneficial owner.

    python examples/beneficial_owners.py
"""

from repro.graph import CompanyGraph
from repro.ownership import (
    all_beneficial_owners,
    integrated_ownership,
    opaque_companies,
)


def build_structures() -> CompanyGraph:
    graph = CompanyGraph()
    for person in ("alice", "bob", "carla", "dario", "elena", "franco"):
        graph.add_person(person, name=person.capitalize())
    for company in ("chain1", "chain2", "pyr1", "pyr2", "pyr3",
                    "loop_a", "loop_b", "shell"):
        graph.add_company(company, name=company)

    # 1. clean chain: alice -> 80% -> chain1 -> 60% -> chain2
    graph.add_shareholding("alice", "chain1", 0.8)
    graph.add_shareholding("chain1", "chain2", 0.6)

    # 2. control pyramid: bob holds 51% at each level; integrated share of
    #    pyr3 is 0.51^3 = 13% (< 25%) but bob controls it all the way down
    graph.add_shareholding("bob", "pyr1", 0.51)
    graph.add_shareholding("pyr1", "pyr2", 0.51)
    graph.add_shareholding("pyr2", "pyr3", 0.51)

    # 3. circular cross-holding: carla holds 60% of loop_a; loop_a and
    #    loop_b own 50%/40% of each other (buy-back style circularity)
    graph.add_shareholding("carla", "loop_a", 0.6)
    graph.add_shareholding("loop_a", "loop_b", 0.5)
    graph.add_shareholding("loop_b", "loop_a", 0.4)

    # 4. dispersed shell: four persons at 20% each — nobody crosses 25%,
    #    nobody controls
    for person in ("dario", "elena", "franco", "alice"):
        graph.add_shareholding(person, "shell", 0.2)
    return graph


def main() -> None:
    graph = build_structures()

    print("=== Beneficial owners (threshold 25%, EU AMLD) ===")
    for company, owners in sorted(all_beneficial_owners(graph).items()):
        for owner in owners:
            print(f"  {company:8s} <- {owner.person:8s} "
                  f"integrated={owner.integrated_share:6.1%}  basis={owner.basis}")

    print("\n=== Walk-sum handles the circular holding ===")
    share = integrated_ownership(graph, "carla", "loop_b")
    print(f"  carla's integrated share of loop_b through the cycle: {share:.1%}")
    print("  (geometric series: 0.6 * 0.5 / (1 - 0.5*0.4) = 37.5%)")

    print("\n=== Companies with NO detectable beneficial owner ===")
    for company in opaque_companies(graph):
        shares = ", ".join(
            f"{owner}:{share:.0%}" for owner, share in graph.shareholders(company)
        )
        print(f"  {company}  ({shares})  <- AML red flag")


if __name__ == "__main__":
    main()
