"""Quickstart: build a small company graph and ask the paper's questions.

Runs in a couple of seconds::

    python examples/quickstart.py
"""

from repro.core import PipelineConfig, ReasoningPipeline
from repro.graph import CompanyGraph
from repro.ownership import accumulated_ownership, control_chain


def build_graph() -> CompanyGraph:
    """A miniature ownership network: a family, a holding and its group."""
    graph = CompanyGraph()

    graph.add_person("anna", name="Anna", surname="Rossi", sex="F",
                     birth_date="1961-04-12", birth_place="Roma",
                     address="Via Roma 10, Roma")
    # Italian spouses keep their own surnames
    graph.add_person("bruno", name="Bruno", surname="Bianchi", sex="M",
                     birth_date="1958-09-30", birth_place="Milano",
                     address="Via Roma 10, Roma")

    for company, name in [
        ("holding", "Rossi Holding SPA"),
        ("mills", "Molini Rossi SRL"),
        ("bakery", "Panificio Aurora SRL"),
        ("trucks", "Trasporti Celeri SRL"),
    ]:
        graph.add_company(company, name=name, legal_form=name.split()[-1],
                          address="Via Milano 1, Roma")

    # Anna and Bruno each hold 35% of the holding: only together they control it.
    graph.add_shareholding("anna", "holding", 0.35)
    graph.add_shareholding("bruno", "holding", 0.35)
    # The holding controls the mills; mills and holding together control the bakery.
    graph.add_shareholding("holding", "mills", 0.80)
    graph.add_shareholding("holding", "bakery", 0.30)
    graph.add_shareholding("mills", "bakery", 0.25)
    # The trucking firm is 20%-held by the holding: a close link, not control.
    graph.add_shareholding("holding", "trucks", 0.20)
    return graph


def main() -> None:
    graph = build_graph()
    pipeline = ReasoningPipeline(
        graph, PipelineConfig(first_level_clusters=1, use_embeddings=False)
    )

    print("=== Company control (Definition 2.3, Algorithm 5) ===")
    for controller, controlled in sorted(pipeline.control_pairs()):
        print(f"  {controller:8s} controls {controlled}")

    print("\n=== Close links (Definition 2.6, Algorithm 6) ===")
    seen = set()
    for x, y in sorted(pipeline.close_link_pairs()):
        if (y, x) not in seen:
            seen.add((x, y))
            print(f"  {x} ~ {y}   (Phi({x},{y}) = "
                  f"{accumulated_ownership(graph, x, y):.2f})")

    print("\n=== Personal links (Algorithm 7) ===")
    links = pipeline.family_links()
    for x, y, link_class in sorted(links):
        print(f"  {x} --{link_class}--> {y}")

    print("\n=== Family control (Definition 2.8, Algorithm 8) ===")
    pipeline.materialise_families(links)
    for family, company in sorted(pipeline.family_control_pairs()):
        members = sorted(
            edge.source for edge in pipeline.graph.in_edges(family, "family")
        )
        print(f"  family {{{', '.join(members)}}} controls {company}")

    print("\n=== Why does the family control the bakery? ===")
    chain = control_chain(graph, "holding", "bakery")
    print(f"  holding's absorption chain: {chain}")


if __name__ == "__main__":
    main()
