"""End-to-end tests for the asyncio HTTP reasoning API.

The acceptance-critical properties live here:

* N concurrent identical ``/control`` requests trigger exactly one
  underlying computation (single-flight);
* reads served while a ``POST /mutations`` re-augmentation runs come
  from the old snapshot version, until the new version is published
  atomically;
* admission control: saturation -> 429, deadline expiry -> 504;
* micro-batching: concurrent point lookups flush as one batch.
"""

import asyncio
import json
import time

import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.service import ServiceConfig, build_service


@pytest.fixture(scope="module")
def graph():
    g, _truth = generate_company_graph(CompanySpec(persons=30, companies=24, seed=11))
    return g


def make_service(graph, **overrides):
    return build_service(graph, config=ServiceConfig(port=0, **overrides))


async def http_request(port, method, path, body=None):
    """One HTTP/1.1 request over a fresh connection; returns (status, json)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        if payload:
            head += f"Content-Length: {len(payload)}\r\n"
        writer.write((head + "\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(body_bytes)


def slow_payload(snapshot, attr, delay_s):
    """Wrap a snapshot payload method with an artificial executor-side delay."""
    original = getattr(snapshot, attr)

    def wrapped(*args, **kwargs):
        time.sleep(delay_s)
        return original(*args, **kwargs)

    setattr(snapshot, attr, wrapped)


class TestEndpoints:
    def test_every_endpoint_over_a_socket(self, graph):
        service = make_service(graph)
        company = next(graph.companies()).id

        async def main():
            await service.start()
            port = service.port
            results = {}
            results["healthz"] = await http_request(port, "GET", "/healthz")
            results["control"] = await http_request(port, "GET", "/control")
            results["filtered"] = await http_request(
                port, "GET", "/control?threshold=0.4"
            )
            results["close"] = await http_request(port, "GET", "/close-links")
            results["ubo"] = await http_request(port, "GET", f"/ubo/{company}")
            results["family"] = await http_request(port, "GET", "/family")
            results["neighbors"] = await http_request(
                port, "GET", f"/neighbors/{company}?depth=2"
            )
            results["stats"] = await http_request(port, "GET", "/stats")
            results["metrics"] = await http_request(port, "GET", "/metrics")
            await service.stop()
            return results

        results = asyncio.run(main())
        for name, (status, payload) in results.items():
            assert status == 200, f"{name}: {payload}"
        assert results["healthz"][1]["version"] == 1
        assert results["control"][1]["count"] == len(service.manager.current.control)
        assert results["filtered"][1]["threshold"] == 0.4
        assert "owners" in results["ubo"][1]
        assert "reachable" in results["neighbors"][1]
        assert results["stats"][1]["nodes"] == graph.node_count
        assert results["metrics"][1]["requests"]["control"] == 2

    def test_error_statuses(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            port = service.port
            results = {
                "unknown_path": await http_request(port, "GET", "/nope"),
                "unknown_node": await http_request(port, "GET", "/ubo/GHOST"),
                "bad_threshold": await http_request(port, "GET", "/control?threshold=x"),
                "bad_method": await http_request(port, "POST", "/control"),
                "bad_depth": await http_request(port, "GET", "/neighbors/x?depth=99"),
                "bad_body": await http_request(port, "POST", "/mutations", body=[1]),
            }
            await service.stop()
            return results

        results = asyncio.run(main())
        assert results["unknown_path"][0] == 404
        assert results["unknown_node"][0] == 404
        assert results["bad_threshold"][0] == 400
        assert results["bad_method"][0] == 405
        assert results["bad_depth"][0] == 400
        assert results["bad_body"][0] == 400
        for _status, payload in results.values():
            assert "error" in payload

    def test_keep_alive_connection_serves_multiple_requests(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            statuses = []
            for path in ("/healthz", "/stats"):
                writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
                await writer.drain()
                header = await reader.readuntil(b"\r\n\r\n")
                length = int(
                    [h for h in header.split(b"\r\n") if b"Content-Length" in h][0]
                    .split(b":")[1]
                )
                await reader.readexactly(length)
                statuses.append(int(header.split()[1]))
            writer.close()
            await writer.wait_closed()
            await service.stop()
            return statuses

        assert asyncio.run(main()) == [200, 200]


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self, graph):
        """The acceptance proof: N identical /control requests, one computation."""
        service = make_service(graph)
        slow_payload(service.manager.current, "control_payload", 0.25)

        async def main():
            await service.start()
            port = service.port
            before = service.cache.computations
            responses = await asyncio.gather(
                *(
                    http_request(port, "GET", "/control?threshold=0.33")
                    for _ in range(12)
                )
            )
            after = service.cache.computations
            # a later identical request is a pure LRU hit, still one computation
            hits_before = service.cache.lru.hits
            late = await http_request(port, "GET", "/control?threshold=0.33")
            await service.stop()
            return before, after, responses, hits_before, late

        before, after, responses, hits_before, late = asyncio.run(main())
        assert after - before == 1, "coalescing failed: more than one computation"
        payloads = [p for _s, p in responses]
        assert all(s == 200 for s, _p in responses)
        assert all(p == payloads[0] for p in payloads)
        assert service.cache.flight.coalesced >= 1
        assert late[0] == 200
        assert service.cache.lru.hits == hits_before + 1
        assert service.cache.computations == after


class TestMutations:
    def test_old_snapshot_serves_until_atomic_publish(self, graph):
        """The acceptance proof: reads during re-augmentation see the old
        version; the new version appears atomically."""
        service = make_service(graph)
        service.updater.build_delay_s = 0.6
        owner = next(graph.companies()).id
        deltas = [
            {"op": "add_company", "id": "FRESHCO", "properties": {"name": "FreshCo"}},
            {"op": "add_shareholding", "owner": owner, "company": "FRESHCO", "share": 0.9},
        ]

        async def main():
            await service.start()
            port = service.port
            status, accepted = await http_request(
                port, "POST", "/mutations", body={"deltas": deltas}
            )
            assert status == 202, accepted
            assert accepted["status"] == "accepted"
            assert accepted["serving_version"] == 1

            during = []
            saw_rebuild_flag = False
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _s, health = await http_request(port, "GET", "/healthz")
                if health["rebuild_in_progress"]:
                    saw_rebuild_flag = True
                    _s, payload = await http_request(port, "GET", "/control")
                    during.append((health["version"], payload["version"]))
                if health["version"] == 2:
                    break
                await asyncio.sleep(0.02)
            assert saw_rebuild_flag, "rebuild finished before we could observe it"

            _s, after = await http_request(port, "GET", f"/control?source={owner}")
            _s, stats = await http_request(port, "GET", "/stats")
            await service.stop()
            return during, after, stats

        during, after, stats = asyncio.run(main())
        # every read that raced the rebuild was answered from version 1
        assert during and all(pair == (1, 1) for pair in during)
        assert after["version"] == 2
        assert [owner, "FRESHCO"] in after["pairs"]
        assert stats["version"] == 2
        assert service.manager.swaps == 2

    def test_rejected_batch_leaves_staging_untouched(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            port = service.port
            status, payload = await http_request(
                port,
                "POST",
                "/mutations?wait=1",
                body={"deltas": [{"op": "warp_reality", "id": "x"}]},
            )
            assert status == 400 and "unknown op" in payload["error"]
            # a valid batch afterwards publishes version 2, not 3
            status, payload = await http_request(
                port,
                "POST",
                "/mutations?wait=1",
                body={"deltas": [{"op": "add_company", "id": "OKCO"}]},
            )
            await service.stop()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["version"] == 2
        assert service.updater.batches_rejected == 1

    def test_wait_returns_published_version(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            status, payload = await http_request(
                service.port,
                "POST",
                "/mutations?wait=1",
                body={"deltas": [{"op": "add_person", "id": "PNEW"}]},
            )
            _s, health = await http_request(service.port, "GET", "/healthz")
            await service.stop()
            return status, payload, health

        status, payload, health = asyncio.run(main())
        assert status == 200
        assert payload["status"] == "published"
        assert payload["version"] == health["version"] == 2


class TestAdmissionControl:
    def test_saturation_returns_429_but_healthz_answers(self, graph):
        service = make_service(graph, max_concurrency=1, max_queue=0)
        slow_payload(service.manager.current, "close_links_payload", 0.4)

        async def main():
            await service.start()
            port = service.port
            slow = asyncio.create_task(
                http_request(port, "GET", "/close-links?threshold=0.31")
            )
            await asyncio.sleep(0.1)  # let the slow request occupy the slot
            status_rejected, rejected = await http_request(
                port, "GET", "/close-links?threshold=0.77"
            )
            status_health, _ = await http_request(port, "GET", "/healthz")
            status_slow, _ = await slow
            await service.stop()
            return status_rejected, rejected, status_health, status_slow

        status_rejected, rejected, status_health, status_slow = asyncio.run(main())
        assert status_rejected == 429
        assert "saturated" in rejected["error"]
        assert status_health == 200  # observability bypasses admission
        assert status_slow == 200
        assert service.metrics.rejected_429 == 1

    def test_deadline_expiry_returns_504(self, graph):
        service = make_service(graph, request_timeout_s=0.05)
        slow_payload(service.manager.current, "close_links_payload", 0.5)

        async def main():
            await service.start()
            status, payload = await http_request(
                service.port, "GET", "/close-links?threshold=0.41"
            )
            await service.stop()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 504
        assert "deadline" in payload["error"]
        assert service.metrics.timeouts_504 == 1


class TestMicroBatching:
    def test_concurrent_point_lookups_flush_as_one_batch(self, graph):
        service = make_service(graph, batch_delay_s=0.05, batch_max=64)
        companies = [node.id for node in graph.companies()][:8]

        async def main():
            await service.start()
            port = service.port
            responses = await asyncio.gather(
                *(http_request(port, "GET", f"/ubo/{c}") for c in companies)
            )
            await service.stop()
            return responses

        responses = asyncio.run(main())
        assert all(status == 200 for status, _ in responses)
        assert service._ubo_batcher.batches == 1
        assert service._ubo_batcher.batched_keys == len(companies)
        expected = service.manager.current.ubo_payloads(companies)
        for company, (_status, payload) in zip(companies, responses):
            assert payload == expected[company]


class TestMetrics:
    def test_latency_histogram_and_counters(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            port = service.port
            for _ in range(3):
                await http_request(port, "GET", "/control")
            await http_request(port, "GET", "/nope")
            _s, metrics = await http_request(port, "GET", "/metrics")
            await service.stop()
            return metrics

        metrics = asyncio.run(main())
        assert metrics["requests"]["control"] == 3
        assert metrics["requests"]["unknown"] == 1
        assert metrics["statuses"]["2xx"] >= 3
        assert metrics["statuses"]["4xx"] == 1
        histogram = metrics["latency_histogram"]["control"]
        assert sum(histogram) == 3
        assert metrics["cache"]["hits"] == 2  # 2nd and 3rd /control were LRU hits
        assert metrics["snapshot"]["version"] == 1
        assert metrics["updater"]["rebuilds"] == 0


class TestRebuildFailureRecovery:
    """Regression: a failed background rebuild used to strand staging.

    The batch was accepted, the build died, and every later batch kept
    stacking on state that would never publish — while the failure
    itself vanished into an unreferenced task.  The updater now keeps
    strong task references, records the error, and rolls staging back to
    the served snapshot.
    """

    def test_failed_rebuild_rolls_staging_back(self, graph):
        from repro.service import SnapshotBuilder, SnapshotManager
        from repro.service.updates import GraphUpdater

        async def main():
            builder = SnapshotBuilder()
            manager = SnapshotManager()
            manager.publish(builder.build(graph))
            updater = GraphUpdater(manager, builder, graph)

            original_build = builder.build
            builder.build = lambda *a, **kw: (_ for _ in ()).throw(
                RuntimeError("disk full")
            )
            await updater.apply([{"op": "add_company", "id": "DOOMEDCO"}])
            while updater._tasks:
                await asyncio.sleep(0.01)
            builder.build = original_build

            stats_after_failure = updater.stats()
            staging_after_failure = updater._staging

            # the next batch starts from the *served* graph: DOOMEDCO is
            # gone, and the batch publishes version 2 normally
            result = await updater.apply(
                [{"op": "add_company", "id": "OKCO"}], wait=True
            )
            return stats_after_failure, staging_after_failure, result

        stats, staging, result = asyncio.run(main())
        assert stats["rebuild_failures"] == 1
        assert stats["staging_rollbacks"] == 1
        assert "disk full" in stats["last_rebuild_error"]
        assert not staging.has_node("DOOMEDCO")
        assert result["version"] == 2

    def test_newer_batch_is_not_clobbered_by_old_failure(self, graph):
        from repro.service import SnapshotBuilder, SnapshotManager
        from repro.service.updates import GraphUpdater

        async def main():
            builder = SnapshotBuilder()
            manager = SnapshotManager()
            manager.publish(builder.build(graph))
            updater = GraphUpdater(manager, builder, graph)

            original_build = builder.build
            calls = {"n": 0}

            def build_once_broken(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient")
                return original_build(*args, **kwargs)

            builder.build = build_once_broken
            await updater.apply([{"op": "add_company", "id": "FIRSTCO"}])
            # accepted before the first rebuild fails: staging has moved
            # on, so the failure must leave the second batch's state alone
            await updater.apply([{"op": "add_company", "id": "SECONDCO"}])
            while updater._tasks:
                await asyncio.sleep(0.01)
            return updater.stats(), updater._staging

        stats, staging = asyncio.run(main())
        assert stats["rebuild_failures"] == 1
        assert stats["staging_rollbacks"] == 0  # newer batch owns staging
        assert staging.has_node("FIRSTCO") and staging.has_node("SECONDCO")

    def test_rebuild_tasks_hold_strong_references(self, graph):
        from repro.service import SnapshotBuilder, SnapshotManager
        from repro.service.updates import GraphUpdater

        async def main():
            builder = SnapshotBuilder()
            manager = SnapshotManager()
            manager.publish(builder.build(graph))
            updater = GraphUpdater(manager, builder, graph)
            updater.build_delay_s = 0.2
            await updater.apply([{"op": "add_company", "id": "SLOWCO"}])
            held = len(updater._tasks)
            while updater._tasks:
                await asyncio.sleep(0.01)
            return held, updater.stats()

        held, stats = asyncio.run(main())
        assert held == 1  # referenced while in flight, dropped after
        assert stats["rebuilds"] == 1
        assert stats["rebuild_failures"] == 0


class TestMetricsAccounting:
    def test_bypass_endpoints_stay_out_of_latency_histograms(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            port = service.port
            for _ in range(3):
                await http_request(port, "GET", "/healthz")
                await http_request(port, "GET", "/metrics")
            await http_request(port, "GET", "/control")
            _, payload = await http_request(port, "GET", "/metrics")
            await service.stop()
            return payload

        payload = asyncio.run(main())
        # counted as requests ...
        assert payload["requests"]["healthz"] == 3
        assert payload["requests"]["metrics"] >= 3
        assert payload["bypass_requests"] >= 6
        # ... but absent from the latency accounting they used to skew
        assert "healthz" not in payload["latency_histogram"]
        assert "metrics" not in payload["latency_histogram"]
        assert "healthz" not in payload["latency_sum_s"]
        # admitted endpoints still get full latency accounting
        assert sum(payload["latency_histogram"]["control"]) == 1
        assert payload["latency_sum_s"]["control"] > 0

    def test_identity_fields_on_stats_and_metrics(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            port = service.port
            _, stats = await http_request(port, "GET", "/stats")
            _, stats_again = await http_request(port, "GET", "/stats")
            _, metrics = await http_request(port, "GET", "/metrics")
            _, health = await http_request(port, "GET", "/healthz")
            await service.stop()
            return stats, stats_again, metrics, health

        stats, stats_again, metrics, health = asyncio.run(main())
        assert stats["snapshot_version"] == 1
        assert stats["worker_id"] is None  # single-process serving
        assert stats_again == stats  # cache hit keeps the identity fields
        assert metrics["snapshot_version"] == 1
        assert metrics["worker_id"] is None
        assert health["worker_id"] is None

    def test_metrics_merge_folds_worker_payloads(self):
        from repro.service import Metrics

        a, b = Metrics(), Metrics()
        a.observe("control", 0.004, 200)
        a.observe("control", 0.030, 200)
        a.observe("healthz", 0.001, 200, bypass=True)
        b.observe("control", 0.004, 200)
        b.observe("ubo", 0.200, 404)
        merged = Metrics.merge([a.to_dict(), b.to_dict()])
        assert merged["requests"] == {"control": 3, "healthz": 1, "ubo": 1}
        assert merged["statuses"] == {"2xx": 4, "4xx": 1}
        assert merged["bypass_requests"] == 1
        assert sum(merged["latency_histogram"]["control"]) == 3
        assert merged["latency_sum_s"]["control"] == pytest.approx(0.038)
        assert "healthz" not in merged["latency_histogram"]


class TestPoolHooks:
    def test_drain_finishes_in_flight_then_reports_idle(self, graph):
        service = make_service(graph)

        async def main():
            await service.start()
            port = service.port
            slow_payload(service.manager.current, "family_payload", 0.2)
            request_task = asyncio.create_task(http_request(port, "GET", "/family"))
            await asyncio.sleep(0.05)  # the read is now executor-side
            drained = await service.drain(timeout_s=5.0)
            status, _ = await request_task
            return drained, status

        drained, status = asyncio.run(main())
        assert drained is True
        assert status == 200  # the in-flight request completed during drain

    def test_mutation_forwarder_replaces_local_updater(self, graph):
        from repro.service import ReasoningService, SnapshotBuilder, SnapshotManager

        manager = SnapshotManager()
        manager.publish(SnapshotBuilder().build(graph))
        service = ReasoningService(manager, config=ServiceConfig(port=0))
        assert service.updater is None
        forwarded = []

        async def forwarder(tenant, deltas, wait):
            forwarded.append((tenant, deltas, wait))
            return 200, {"status": "published", "version": 99}

        service.mutation_forwarder = forwarder

        async def main():
            await service.start()
            port = service.port
            result = await http_request(
                port, "POST", "/mutations?wait=1", {"deltas": [{"op": "x"}]}
            )
            await service.stop()
            return result

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["version"] == 99
        assert forwarded == [("default", [{"op": "x"}], True)]

    def test_cluster_metrics_provider_answers_scoped_metrics(self, graph):
        service = make_service(graph)

        async def provider():
            return {"scope": "cluster", "workers": [0, 1]}

        service.cluster_metrics_provider = provider

        async def main():
            await service.start()
            port = service.port
            scoped = await http_request(port, "GET", "/metrics?scope=cluster")
            plain = await http_request(port, "GET", "/metrics")
            await service.stop()
            return scoped, plain

        (s_status, s_payload), (p_status, p_payload) = asyncio.run(main())
        assert s_status == 200 and s_payload == {"scope": "cluster", "workers": [0, 1]}
        assert p_status == 200 and "requests" in p_payload
