"""Tests for graph statistics — cross-validated against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CompanyGraph,
    PropertyGraph,
    average_clustering,
    clustering_coefficient,
    count_self_loops,
    degree_histogram,
    power_law_alpha,
    profile,
    strongly_connected_components,
    weakly_connected_components,
)


def graph_from_edges(n, edges):
    graph = PropertyGraph()
    for i in range(n):
        graph.add_node(i)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


@st.composite
def random_digraph(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=30,
        )
    )
    return n, edges


class TestComponentsAgainstNetworkx:
    @given(random_digraph())
    @settings(max_examples=60, deadline=None)
    def test_scc_matches_networkx(self, data):
        n, edges = data
        ours = graph_from_edges(n, edges)
        theirs = nx.DiGraph()
        theirs.add_nodes_from(range(n))
        theirs.add_edges_from(edges)
        ours_sccs = {frozenset(c) for c in strongly_connected_components(ours)}
        nx_sccs = {frozenset(c) for c in nx.strongly_connected_components(theirs)}
        assert ours_sccs == nx_sccs

    @given(random_digraph())
    @settings(max_examples=60, deadline=None)
    def test_wcc_matches_networkx(self, data):
        n, edges = data
        ours = graph_from_edges(n, edges)
        theirs = nx.DiGraph()
        theirs.add_nodes_from(range(n))
        theirs.add_edges_from(edges)
        ours_wccs = {frozenset(c) for c in weakly_connected_components(ours)}
        nx_wccs = {frozenset(c) for c in nx.weakly_connected_components(theirs)}
        assert ours_wccs == nx_wccs


class TestClustering:
    def test_triangle_has_full_clustering(self):
        graph = graph_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert clustering_coefficient(graph, 0) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        graph = graph_from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert clustering_coefficient(graph, 0) == 0.0

    def test_degree_below_two_is_zero(self):
        graph = graph_from_edges(2, [(0, 1)])
        assert clustering_coefficient(graph, 0) == 0.0

    @given(random_digraph())
    @settings(max_examples=40, deadline=None)
    def test_average_clustering_matches_networkx(self, data):
        n, edges = data
        simple_edges = {(u, v) for u, v in edges if u != v}
        ours = graph_from_edges(n, sorted(simple_edges))
        theirs = nx.Graph()
        theirs.add_nodes_from(range(n))
        theirs.add_edges_from(simple_edges)
        assert average_clustering(ours) == pytest.approx(
            nx.average_clustering(theirs), abs=1e-9
        )


class TestMiscStats:
    def test_self_loops_counted(self):
        graph = graph_from_edges(3, [(0, 0), (1, 1), (0, 1)])
        assert count_self_loops(graph) == 2

    def test_degree_histogram(self):
        graph = graph_from_edges(3, [(0, 1), (0, 2)])
        assert degree_histogram(graph) == {1: 2, 2: 1}

    def test_power_law_alpha_none_for_tiny(self):
        graph = graph_from_edges(1, [])
        assert power_law_alpha(graph) is None

    def test_power_law_alpha_positive(self):
        graph = graph_from_edges(6, [(0, i) for i in range(1, 6)])
        alpha = power_law_alpha(graph)
        assert alpha is not None and alpha > 1.0


class TestProfile:
    def test_profile_known_graph(self):
        graph = CompanyGraph()
        for c in ("a", "b", "c"):
            graph.add_company(c, name=c)
        graph.add_shareholding("a", "b", 0.6)
        graph.add_shareholding("b", "a", 0.6)
        graph.add_shareholding("b", "c", 0.5)
        result = profile(graph)
        assert result.nodes == 3
        assert result.edges == 3
        assert result.scc_count == 2  # {a,b} and {c}
        assert result.scc_max_size == 2
        assert result.wcc_count == 1
        assert result.max_out_degree == 2
        assert result.self_loops == 0

    def test_profile_rows_render(self):
        graph = CompanyGraph()
        graph.add_company("a", name="a")
        rows = profile(graph).as_rows()
        assert ("nodes", "1") in rows

    def test_empty_graph(self):
        result = profile(PropertyGraph())
        assert result.nodes == 0
        assert result.avg_in_degree == 0.0
