"""Oracle tests for delta-driven snapshot maintenance.

The incremental build path must be indistinguishable from a cold build:
for any accepted mutation batch, a builder that patches its previous row
state produces the same control closure, close-link pairs, family links
and (up to payload rounding) UBO index as a builder that recomputes the
world from scratch.  The cold oracle here is a builder with
``SnapshotConfig(incremental=False)`` — the exact pre-incremental code
path, kept as the escape hatch.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.service import SnapshotBuilder, SnapshotConfig, SnapshotManager
from repro.service.incremental import (
    DeltaBatch,
    affected_sources,
    shareholding_ancestors,
)
from repro.service.updates import GraphUpdater, apply_deltas


def make_graph(persons=30, companies=24, seed=11):
    graph, _truth = generate_company_graph(
        CompanySpec(persons=persons, companies=companies, seed=seed)
    )
    return graph


def assert_snapshots_equivalent(actual, expected):
    assert actual.control == expected.control
    assert actual.close_links == expected.close_links
    assert actual.family_links == expected.family_links
    assert set(actual.ubo) == set(expected.ubo)
    for company, expected_owners in expected.ubo.items():
        actual_owners = actual.ubo[company]
        assert [
            (o.person, round(o.integrated_share, 6), o.controls)
            for o in actual_owners
        ] == [
            (o.person, round(o.integrated_share, 6), o.controls)
            for o in expected_owners
        ], company


def build_pair(graph, deltas_seq):
    """Run the same delta batches through an incremental and a cold
    builder; return the final (incremental, cold) snapshots."""
    warm = SnapshotBuilder()
    cold = SnapshotBuilder(SnapshotConfig(incremental=False))
    staging = graph
    warm_snap = warm.build(staging)
    cold_snap = cold.build(staging)
    for deltas in deltas_seq:
        candidate = staging.copy()
        batch = apply_deltas(candidate, deltas)
        batch.base = staging
        batch.base_generation = staging.generation
        warm_snap = warm.build(candidate, delta=batch)
        cold_snap = cold.build(candidate)
        staging = candidate
    return warm_snap, cold_snap


SOME_SHARE = {"op": "add_shareholding", "share": 0.4}


class TestIncrementalBuild:
    def test_first_delta_build_is_incremental(self):
        graph = make_graph()
        owner = next(iter(graph.companies())).id
        target = [c.id for c in graph.companies() if c.id != owner][0]
        warm, cold = build_pair(
            graph,
            [[{**SOME_SHARE, "owner": owner, "company": target}]],
        )
        assert warm.incremental
        assert not cold.incremental
        assert_snapshots_equivalent(warm, cold)

    def test_edge_removal_batch(self):
        graph = make_graph()
        edge = next(iter(graph.edges("S")))
        warm, cold = build_pair(
            graph, [[{"op": "remove_edge", "id": edge.id}]]
        )
        assert warm.incremental
        assert_snapshots_equivalent(warm, cold)

    def test_node_removal_batch(self):
        graph = make_graph()
        company = next(iter(graph.companies())).id
        warm, cold = build_pair(
            graph, [[{"op": "remove_node", "id": company}]]
        )
        assert warm.incremental
        assert_snapshots_equivalent(warm, cold)

    def test_chained_batches_stay_incremental(self):
        graph = make_graph()
        companies = [c.id for c in graph.companies()]
        warm, cold = build_pair(
            graph,
            [
                [{**SOME_SHARE, "owner": companies[0], "company": companies[3]}],
                [{**SOME_SHARE, "owner": companies[3], "company": companies[5]}],
                [{"op": "remove_shareholding", "owner": companies[0],
                  "company": companies[3]}],
            ],
        )
        assert warm.incremental
        assert_snapshots_equivalent(warm, cold)

    def test_person_property_change_invalidates_family_links(self):
        graph = make_graph()
        person = next(iter(graph.persons())).id
        warm, cold = build_pair(
            graph,
            [[{"op": "set_property", "id": person, "name": "name",
               "value": "Zaphod Beeblebrox"}]],
        )
        assert warm.incremental
        assert_snapshots_equivalent(warm, cold)

    def test_stale_base_falls_back_to_cold(self):
        graph = make_graph()
        builder = SnapshotBuilder()
        builder.build(graph)
        candidate = graph.copy()
        batch = apply_deltas(
            candidate,
            [{**SOME_SHARE,
              "owner": next(iter(graph.companies())).id,
              "company": [c.id for c in graph.companies()][1]}],
        )
        batch.base = candidate  # wrong object: not the built graph
        batch.base_generation = candidate.generation
        snapshot = builder.build(candidate, delta=batch)
        assert not snapshot.incremental

    def test_out_of_band_mutation_breaks_the_chain(self):
        graph = make_graph()
        builder = SnapshotBuilder()
        builder.build(graph)
        companies = [c.id for c in graph.companies()]
        graph.add_shareholding(companies[0], companies[7], 0.1)  # sneaky
        candidate = graph.copy()
        batch = apply_deltas(
            candidate,
            [{**SOME_SHARE, "owner": companies[0], "company": companies[3]}],
        )
        batch.base = graph
        # the updater reads the generation at apply time, i.e. *after*
        # the out-of-band mutation bumped it past the built generation
        batch.base_generation = graph.generation
        assert not builder.build(candidate, delta=batch).incremental

    def test_escape_hatch_never_keeps_state(self):
        builder = SnapshotBuilder(SnapshotConfig(incremental=False))
        builder.build(make_graph())
        assert builder._state is None

    def test_reset_incremental_forces_cold_build(self):
        graph = make_graph()
        builder = SnapshotBuilder()
        builder.build(graph)
        builder.reset_incremental()
        candidate = graph.copy()
        batch = apply_deltas(
            candidate,
            [{**SOME_SHARE,
              "owner": next(iter(graph.companies())).id,
              "company": [c.id for c in graph.companies()][2]}],
        )
        batch.base = graph
        batch.base_generation = graph.generation
        assert not builder.build(candidate, delta=batch).incremental


class TestAffectedSources:
    def test_ancestors_include_seed(self):
        graph = make_graph()
        node = next(iter(graph.companies())).id
        assert node in shareholding_ancestors(graph, [node])

    def test_untouched_islands_are_not_affected(self):
        graph = make_graph()
        graph.add_company("island-x")
        graph.add_company("island-y")
        candidate = graph.copy()
        batch = apply_deltas(
            candidate,
            [{**SOME_SHARE, "owner": "island-x", "company": "island-y"}],
        )
        affected = affected_sources(batch, graph, candidate)
        assert "island-x" in affected
        # nothing reaches the islands, so no pre-existing source is dirty
        assert affected <= {"island-x", "island-y"}

    def test_removed_edge_affects_old_graph_ancestors(self):
        graph = make_graph()
        edge = next(iter(graph.edges("S")))
        candidate = graph.copy()
        batch = apply_deltas(candidate, [{"op": "remove_edge", "id": edge.id}])
        affected = affected_sources(batch, graph, candidate)
        # ancestors via the *old* graph still see the removed edge's source
        assert shareholding_ancestors(graph, [edge.source]) <= affected

    def test_delta_batch_unpacks_as_legacy_pair(self):
        batch = DeltaBatch(new_edges=["e"], removed_any=True)
        new_edges, removed_any = batch
        assert new_edges == ["e"] and removed_any is True


class TestUpdaterIntegration:
    def test_updater_publishes_incremental_versions(self):
        async def main():
            graph = make_graph()
            builder = SnapshotBuilder()
            manager = SnapshotManager()
            manager.publish(builder.build(graph))
            updater = GraphUpdater(manager, builder, graph)
            companies = [c.id for c in graph.companies()]
            await updater.apply(
                [{**SOME_SHARE, "owner": companies[0], "company": companies[4]}],
                wait=True,
            )
            first = manager.current
            await updater.apply(
                [{"op": "remove_shareholding", "owner": companies[0],
                  "company": companies[4]}],
                wait=True,
            )
            return first, manager.current

        first, second = asyncio.run(main())
        assert first.incremental and second.incremental
        assert second.version == first.version + 1

    def test_updater_result_matches_cold_oracle(self):
        async def main():
            graph = make_graph()
            builder = SnapshotBuilder()
            manager = SnapshotManager()
            manager.publish(builder.build(graph))
            updater = GraphUpdater(manager, builder, graph)
            companies = [c.id for c in graph.companies()]
            deltas = [
                {**SOME_SHARE, "owner": companies[1], "company": companies[6]},
                {"op": "add_company", "id": "newco"},
                {**SOME_SHARE, "owner": companies[6], "company": "newco"},
            ]
            await updater.apply(deltas, wait=True)
            return manager.current, updater._staging

        snapshot, staging = asyncio.run(main())
        assert snapshot.incremental
        cold = SnapshotBuilder(SnapshotConfig(incremental=False)).build(staging)
        assert_snapshots_equivalent(snapshot, cold)


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_random_batches_match_cold_oracle(data):
    """Random mutation batches (adds, removals, node ops, property
    edits) keep the incremental snapshot equal to the cold oracle."""
    graph = make_graph(persons=16, companies=14, seed=7)
    companies = sorted(c.id for c in graph.companies())
    persons = sorted(p.id for p in graph.persons())
    removable = sorted(e.id for e in graph.edges("S"))
    n_batches = data.draw(st.integers(1, 3), label="batches")
    deltas_seq = []
    for _ in range(n_batches):
        batch = []
        for _ in range(data.draw(st.integers(1, 3), label="ops")):
            kind = data.draw(
                st.sampled_from(
                    ["add_edge", "remove_edge", "add_company", "set_prop"]
                ),
                label="kind",
            )
            if kind == "add_edge":
                owner = data.draw(st.sampled_from(companies + persons))
                target = data.draw(st.sampled_from(companies))
                batch.append(
                    {"op": "add_shareholding", "owner": owner,
                     "company": target,
                     "share": data.draw(st.floats(0.05, 0.95))}
                )
            elif kind == "remove_edge" and removable:
                edge_id = data.draw(st.sampled_from(removable))
                removable.remove(edge_id)
                batch.append({"op": "remove_edge", "id": edge_id})
            elif kind == "add_company":
                new_id = f"rc-{len(companies)}"
                companies.append(new_id)
                batch.append({"op": "add_company", "id": new_id})
            elif kind == "set_prop":
                batch.append(
                    {"op": "set_property",
                     "id": data.draw(st.sampled_from(companies[:14])),
                     "name": "flag", "value": data.draw(st.integers(0, 3))}
                )
        if batch:
            deltas_seq.append(batch)
    if not deltas_seq:
        deltas_seq = [[{"op": "add_company", "id": "rc-fallback"}]]
    warm, cold = build_pair(graph, deltas_seq)
    assert warm.incremental
    assert_snapshots_equivalent(warm, cold)
