"""Tests for second-level blocking (#GenerateBlocks)."""

from repro.core import (
    BlockingScheme,
    company_blocker,
    feature_blocker,
    household_blocker,
    narrow_person_blocker,
    person_blocker,
    single_block,
    stable_hash,
)
from repro.graph import CompanyGraph, Node


def person(pid, **props):
    return Node(pid, "P", props)


def company(cid, **props):
    return Node(cid, "C", props)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_argument_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("ab")
        assert stable_hash("a") != stable_hash("b")

    def test_handles_none(self):
        assert isinstance(stable_hash(None), int)


class TestBlockers:
    def test_person_blocker_groups_by_surname(self):
        blocker = person_blocker()
        assert blocker(person("1", surname="Rossi")) == blocker(person("2", surname="rossi"))
        assert blocker(person("1", surname="Rossi")) != blocker(person("2", surname="Verdi"))

    def test_person_blocker_fallback_to_id(self):
        blocker = person_blocker()
        assert blocker(person("x1")) != blocker(person("x2"))

    def test_k_folding_bounds_block_count(self):
        blocker = person_blocker(k=4)
        keys = {blocker(person(str(i), surname=f"S{i}")) for i in range(100)}
        assert keys <= set(range(4))

    def test_narrow_blocker_splits_by_decade(self):
        blocker = narrow_person_blocker()
        a = person("1", surname="Rossi", birth_date="1950-01-01", birth_place="Roma")
        b = person("2", surname="Rossi", birth_date="1990-01-01", birth_place="Roma")
        assert blocker(a) != blocker(b)

    def test_household_blocker(self):
        blocker = household_blocker()
        assert blocker(person("1", address="x")) == blocker(person("2", address="x"))
        assert blocker(person("1", address="x")) != blocker(person("2", address="y"))

    def test_company_blocker_uses_city_and_form(self):
        blocker = company_blocker()
        a = company("1", legal_form="SRL", address="Via Roma 1, Roma")
        b = company("2", legal_form="SRL", address="Via Milano 9, Roma")
        c = company("3", legal_form="SPA", address="Via Milano 9, Roma")
        assert blocker(a) == blocker(b)
        assert blocker(a) != blocker(c)

    def test_feature_blocker_exact_values(self):
        blocker = feature_blocker(("color",))
        assert blocker(person("1", color="red")) == blocker(person("2", color="red"))

    def test_single_block(self):
        blocker = single_block()
        assert blocker(person("1")) == blocker(company("2"))


class TestScheme:
    def test_default_scheme_separates_labels(self):
        scheme = BlockingScheme.default()
        p = person("1", surname="Rossi")
        c = company("2", legal_form="SRL", address="Roma")
        assert scheme.block_of(p) != scheme.block_of(c)

    def test_partition_covers_all_nodes(self):
        scheme = BlockingScheme.default()
        nodes = [person(str(i), surname=("Rossi" if i % 2 else "Verdi")) for i in range(10)]
        blocks = scheme.partition(nodes)
        covered = {node.id for block in blocks.values() for node in block}
        assert covered == {str(i) for i in range(10)}
        # the surname pass yields exactly two shared blocks; the household
        # pass adds one singleton block per person (no address set)
        shared = [block for block in blocks.values() if len(block) > 1]
        assert len(shared) == 2

    def test_multi_pass_blocking_unions_keys(self):
        from repro.core import multi_blocker, household_blocker, person_blocker

        scheme = BlockingScheme(
            {"P": multi_blocker(person_blocker(), household_blocker())}
        )
        anna = person("a", surname="Rossi", address="x")
        bruno = person("b", surname="Bianchi", address="x")
        carla = person("c", surname="Rossi", address="y")
        blocks = scheme.partition([anna, bruno, carla])
        together = [
            {node.id for node in block} for block in blocks.values() if len(block) > 1
        ]
        assert {"a", "b"} in together   # household pass
        assert {"a", "c"} in together   # surname pass

    def test_unregistered_label_gets_catchall(self):
        scheme = BlockingScheme.default()
        family = Node("f1", "F", {})
        other = Node("f2", "F", {})
        assert scheme.block_of(family) == scheme.block_of(other)

    def test_exhaustive_scheme_one_block_per_label(self):
        scheme = BlockingScheme.exhaustive()
        nodes = [person("1", surname="A"), person("2", surname="B")]
        assert len(scheme.partition(nodes)) == 1
