"""Join planner + compiled evaluator tests.

The contract under test: planning is invisible except for speed — every
planned+compiled evaluation must produce the same database, firings and
stats as the textual-order interpreted engine (``plan=False``).
"""

import pytest

from repro.datalog import Database, Engine, parse_program
from repro.datalog.parser import parse_rule
from repro.datalog.planner import (
    JoinPlan,
    order_sensitive_predicates,
    plan_rule,
)


def both_engines(program_text: str, facts, **kwargs):
    planned = Engine(parse_program(program_text), Database(list(facts)), **kwargs)
    planned.run()
    unplanned = Engine(
        parse_program(program_text), Database(list(facts)), plan=False, **kwargs
    )
    unplanned.run()
    return planned, unplanned


def assert_equivalent(program_text: str, facts):
    planned, unplanned = both_engines(program_text, facts)
    assert set(planned.database.all_facts()) == set(unplanned.database.all_facts())
    assert planned.stats.rule_firings == unplanned.stats.rule_firings
    assert planned.stats.facts_derived == unplanned.stats.facts_derived
    return planned


class TestPlanShape:
    def test_small_relation_joins_first(self):
        database = Database(
            [("big", (i, i + 1)) for i in range(200)] + [("small", (3, 4))]
        )
        # warm both candidate indexes so estimates use real distinct counts
        database.index_for("big", (0,))
        rule = parse_rule("big(X, Y), small(Y, Z) -> out(X, Z).")
        plan = plan_rule(rule, None, database)
        assert plan.feasible
        assert [step.rendered for step in plan.steps if step.kind == "atom"] == [
            "small(Y, Z)",
            "big(X, Y)",
        ]

    def test_filters_hoist_to_earliest_bound_point(self):
        database = Database([("a", (1,)), ("b", (1, 2))])
        rule = parse_rule("a(X), b(X, Y), X > 0, Y > 0 -> out(X, Y).")
        plan = plan_rule(rule, None, database, reorder=False)
        kinds = [step.kind for step in plan.steps]
        # X > 0 moves between the atoms; Y > 0 stays after b
        assert kinds == ["atom", "comparison", "atom", "comparison"]
        assert plan.steps[1].rendered == "X > 0"

    def test_atoms_do_not_cross_an_aggregate(self):
        database = Database([("tiny", (1, 1))] + [("huge", (i, i)) for i in range(100)])
        rule = parse_rule(
            "huge(X, W), T = msum(W, <X>), tiny(T, Z) -> out(X, Z)."
        )
        plan = plan_rule(rule, None, database)
        rendered = [step.rendered for step in plan.steps]
        assert rendered.index("huge(X, W)") < rendered.index("T = msum(W, <X>)")
        assert rendered.index("T = msum(W, <X>)") < rendered.index("tiny(T, Z)")

    def test_seed_variables_are_bound_from_the_start(self):
        database = Database([("e", (1, 2)), ("f", (2, 3))])
        rule = parse_rule("e(X, Y), f(Y, Z) -> out(X, Z).")
        plan = plan_rule(rule, 0, database)
        assert plan.seed_index == 0
        (step,) = [s for s in plan.steps if s.kind == "atom"]
        assert step.rendered == "f(Y, Z)"
        assert step.probe_positions == (0,)  # Y is bound by the seed

    def test_unbindable_complex_term_falls_back(self):
        # Y only ever occurs inside the Skolem term, so no join order can
        # evaluate it: the plan must surrender to the interpreted path
        database = Database([("p", (1, "sk"))])
        rule = parse_rule("p(X, #f(Y)), not q(Y) -> out(X).")
        plan = plan_rule(rule, None, database)
        assert not plan.feasible

    def test_stale_on_cardinality_drift(self):
        database = Database([("r", (i,)) for i in range(10)])
        rule = parse_rule("r(X) -> out(X).")
        plan = plan_rule(rule, None, database)
        assert not plan.stale(database)
        # small-count drift is exempt
        for i in range(10, 25):
            database.add("r", (i,))
        assert not plan.stale(database)
        for i in range(25, 100):
            database.add("r", (i,))
        assert plan.stale(database)

    def test_empty_snapshot_goes_stale_once_rows_appear(self):
        database = Database()
        rule = parse_rule("r(X) -> out(X).")
        plan = plan_rule(rule, None, database)
        for i in range(40):
            database.add("r", (i,))
        assert plan.stale(database)

    def test_plan_describe_renders_estimates(self):
        database = Database([("r", (i,)) for i in range(5)])
        rule = parse_rule("r(X), X > 1 -> out(X).")
        plan = plan_rule(rule, None, database)
        lines = plan.describe()
        assert lines[0].startswith("r(X) [~")
        assert "X > 1" in lines


class TestOrderSensitivity:
    def test_aggregate_bodies_are_sensitive_transitively(self):
        program = parse_program(
            """
            feed(X, Y) -> mid(X, Y).
            mid(X, Y), base(Y, W), T = msum(W, <Y>) -> total(X, T).
            total(X, T) -> report(X, T).
            """
        )
        sensitive = order_sensitive_predicates(program)
        assert {"mid", "base", "feed"} <= sensitive
        # nothing feeds report into an aggregate, so deriving it is free
        assert "report" not in sensitive

    def test_mcount_is_order_insensitive(self):
        program = parse_program(
            "member(G, Z), T = mcount(<Z>) -> size(G, T)."
        )
        assert order_sensitive_predicates(program) == set()


class TestCompiledEquivalence:
    def test_recursive_closure(self):
        edges = [("edge", (i, (i + 1) % 7)) for i in range(7)]
        assert_equivalent(
            "edge(X, Y) -> path(X, Y). path(X, Z), edge(Z, Y) -> path(X, Y).",
            edges,
        )

    def test_constants_and_repeated_variables(self):
        facts = [("t", (1, 1, 2)), ("t", (1, 2, 2)), ("t", (3, 3, 3))]
        assert_equivalent("t(X, X, Y), t(Y, Y, Y) -> loop(X, Y).", facts)
        assert_equivalent('t(1, X, Y) -> one(X, Y).', facts)

    def test_mixed_arity_predicate(self):
        facts = [("link", ("e1", "a", "b")), ("link", ("e2", "a", "b", 0.5))]
        planned = assert_equivalent(
            """
            link(E, X, Y, W) -> weighted(X, Y, W).
            link(E, X, Y) -> plain(X, Y).
            weighted(X, Y, W), link(E, X, Y) -> both(X, Y).
            """,
            facts,
        )
        assert planned.holds("both", ("a", "b"))

    def test_zero_arity_atoms(self):
        assert_equivalent("flag(), p(X) -> out(X).", [("flag", ()), ("p", (1,))])
        assert_equivalent("flag(), p(X) -> out(X).", [("p", (1,))])

    def test_negation(self):
        facts = [("edge", (1, 2)), ("edge", (2, 3)), ("blocked", (2,))]
        assert_equivalent(
            "edge(X, Y), not blocked(Y) -> open_edge(X, Y).", facts
        )

    def test_assignment_and_comparison(self):
        facts = [("n", (i,)) for i in range(6)]
        assert_equivalent(
            "n(X), Y = X * 2 + 1, Y > 4, n(Y) -> odd_double(X, Y).", facts
        )

    def test_assignment_unifies_when_already_bound(self):
        facts = [("pair", (2, 4)), ("pair", (2, 5))]
        assert_equivalent("pair(X, Y), Y = X * 2 -> double(X).", facts)

    def test_skolem_seed_deferral(self):
        # the recursive delta seeds the atom whose second position is a
        # Skolem term: the compiled seed entry must defer its check
        assert_equivalent(
            """
            mark(X) -> path(X, #tag(X)).
            path(X, Y), edge(Y, Z) -> path(X, Z).
            mark(X), path(X, #tag(X)) -> hit(X).
            """,
            [("mark", (1,)), ("mark", (2,)), ("edge", (1, 2))],
        )

    def test_existential_head_invents_identical_nulls(self):
        # null identity embeds id(rule), so both engines must share the
        # parsed program for the invented nulls to be comparable at all
        program = parse_program("person(X) -> owns(X, C), company(C).")
        planned = Engine(program, Database([("person", ("p1",))]))
        planned.run()
        unplanned = Engine(program, Database([("person", ("p1",))]), plan=False)
        unplanned.run()
        assert set(planned.database.all_facts()) == set(
            unplanned.database.all_facts()
        )

    def test_aggregates_in_recursion(self):
        facts = [("edge", (1, 2, 3)), ("edge", (2, 3, 4)), ("edge", (1, 3, 9))]
        assert_equivalent(
            """
            edge(X, Y, W) -> reach(X, Y, W).
            reach(X, Z, W1), edge(Z, Y, W2), W = W1 + W2 -> reach(X, Y, W).
            reach(X, Y, W), T = msum(W, <Y>) -> mass(X, T).
            """,
            facts,
        )

    def test_external_functions(self):
        from repro.datalog.builtins import FunctionRegistry

        functions = FunctionRegistry()
        functions.register("double", lambda x: x * 2)
        program = "n(X), Y = $double(X) -> out(Y)."
        facts = [("n", (i,)) for i in range(4)]
        planned = Engine(
            parse_program(program), Database(list(facts)), functions=functions
        )
        planned.run()
        unplanned = Engine(
            parse_program(program),
            Database(list(facts)),
            functions=functions,
            plan=False,
        )
        unplanned.run()
        assert set(planned.database.all_facts()) == set(
            unplanned.database.all_facts()
        )

    def test_comparison_on_mixed_types_matches_interpreted(self):
        # builtins.compare: ordering across types is an error, but
        # equality is just False — the compiled fast path must preserve it
        facts = [("v", (1,)), ("v", ("one",))]
        assert_equivalent('v(X), X != "one" -> kept(X).', facts)


class TestEngineIntegration:
    def test_plan_false_never_compiles(self):
        engine = Engine(
            parse_program("edge(X, Y) -> path(X, Y)."),
            Database([("edge", (1, 2))]),
            plan=False,
        )
        engine.run()
        assert engine._compiled_cache == {}

    def test_provenance_disables_planning(self):
        engine = Engine(
            parse_program("edge(X, Y) -> path(X, Y)."),
            Database([("edge", (1, 2))]),
            provenance=True,
        )
        engine.run()
        assert engine._compiled_cache == {}
        assert engine.explain("path", (1, 2))  # provenance recorded as before

    def test_replans_on_growth(self):
        # path is empty when rule 2 is first planned; after the closure
        # explodes the snapshot is stale and the engine re-plans
        edges = [("edge", (i, i + 1)) for i in range(60)]
        engine = Engine(
            parse_program(
                "edge(X, Y) -> path(X, Y). path(X, Z), edge(Z, Y) -> path(X, Y)."
            ),
            Database(edges),
        )
        engine.run()
        assert engine.database.count("path") == 60 * 61 // 2
        assert any(
            compiled is not None and compiled.replans > 0
            for compiled in engine._compiled_cache.values()
        )

    def test_uncompilable_rule_is_cached_as_fallback(self):
        # reachable only through the complex-term safety over-approximation;
        # the interpreted engine cannot run this rule either, so exercise
        # the cache machinery directly instead of running to fixpoint
        program = parse_program("p(X, #f(Y)), not q(Y) -> out(X).")
        engine = Engine(program, Database())
        rule = program.rules[0]
        assert engine._compiled_for(rule, None) is None
        assert engine._compiled_cache[(id(rule), None)] is None
        assert engine._plan_fallbacks
        assert engine._compiled_for(rule, None) is None  # cached, no re-plan

    def test_profile_includes_plan_spans(self):
        from repro.telemetry import Tracer

        tracer = Tracer("test")
        engine = Engine(
            parse_program("edge(X, Y), edge(Y, Z) -> two_hop(X, Z)."),
            Database([("edge", (1, 2)), ("edge", (2, 3))]),
            tracer=tracer,
        )
        engine.run()
        tracer.finish()
        rendered = tracer.render()
        assert "planner" in rendered
        assert "plan:" in rendered
        assert "estimated_rows" in rendered
        assert "actual_rows" in rendered

    def test_naive_mode_uses_compiled_path_too(self):
        edges = [("edge", (i, i + 1)) for i in range(5)]
        program = "edge(X, Y) -> path(X, Y). path(X, Z), edge(Z, Y) -> path(X, Y)."
        naive_planned = Engine(
            parse_program(program), Database(list(edges)), seminaive=False
        )
        naive_planned.run()
        reference = Engine(parse_program(program), Database(list(edges)), plan=False)
        reference.run()
        assert set(naive_planned.database.all_facts()) == set(
            reference.database.all_facts()
        )
        assert naive_planned._compiled_cache

    def test_query_and_stats_survive_planning(self):
        planned, unplanned = both_engines(
            "edge(X, Y), edge(Y, Z), X != Z -> hop(X, Z).",
            [("edge", (1, 2)), ("edge", (2, 3)), ("edge", (2, 1))],
        )
        assert sorted(planned.query("hop")) == sorted(unplanned.query("hop"))
        assert planned.stats.iterations == unplanned.stats.iterations


class TestJoinPlanDataclass:
    def test_infeasible_plan_keeps_textual_order(self):
        database = Database([("p", (1, "x"))])
        rule = parse_rule("p(X, #f(Y)), not q(Y) -> out(X).")
        plan = plan_rule(rule, None, database)
        assert isinstance(plan, JoinPlan)
        assert plan.order == tuple(range(len(rule.body)))

    def test_membership_probe_is_cheapest(self):
        database = Database([("e", (1, 2))] + [("r", (i,)) for i in range(50)])
        rule = parse_rule("e(X, Y), r(X), r(Y) -> out(X, Y).")
        plan = plan_rule(rule, None, database)
        rendered = [s.rendered for s in plan.steps]
        # once e binds X and Y, the r atoms are existence probes and the
        # planner runs them immediately rather than scanning r
        assert rendered[0] == "e(X, Y)"
        assert plan.steps[1].estimated_rows < 1.0


@pytest.mark.parametrize("threshold", [0.2, 0.5])
def test_paper_close_links_program_equivalence(threshold):
    """The flagship workload: planned == unplanned on a small pyramid."""
    from repro.bench.workloads import ownership_pyramid
    from repro.core import KnowledgeGraph, close_link_program, input_mapping
    from repro.graph.relational import to_facts

    graph = ownership_pyramid(12, m=2, seed=5)
    kg = KnowledgeGraph(graph)
    kg.add_rules("m", input_mapping(False))
    kg.add_rules("p", close_link_program(threshold))
    program = kg.program()
    planned = Engine(program, to_facts(graph))
    planned.run()
    unplanned = Engine(program, to_facts(graph), plan=False)
    unplanned.run()
    assert set(planned.database.all_facts()) == set(unplanned.database.all_facts())
    assert planned.stats.rule_firings == unplanned.stats.rule_firings
