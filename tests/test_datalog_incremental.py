"""Oracle tests for incremental Datalog maintenance (DRed).

Every test drives an :class:`IncrementalEngine` through a sequence of
EDB updates and compares the maintained database against a fresh
:class:`Engine` evaluated from scratch over the same EDB.  The oracle
engine shares the *same* :class:`Program` object (rule identity feeds
the skolem labels of existential nulls, so label-less rules only produce
equal nulls across engines when the rule objects are shared).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, Engine, IncrementalEngine

TC = """
edge(X, Y) -> path(X, Y).
path(X, Z), edge(Z, Y) -> path(X, Y).
"""

CONTROL = """
company(X) -> ctrl(X, X).
ctrl(X, Z), own(Z, Y, W), T = msum(W, <Z>), T > 0.5 -> ctrl(X, Y).
"""


def db_state(database):
    return {
        predicate: sorted(map(repr, database.facts(predicate)))
        for predicate in sorted(database.predicates())
    }


def oracle_state(inc):
    engine = Engine(inc.program, Database(inc.edb_facts()))
    engine.run()
    return db_state(engine.database)


class TestAdditions:
    def test_addition_extends_closure(self):
        inc = IncrementalEngine(TC, [("edge", (1, 2)), ("edge", (2, 3))])
        stats = inc.update(additions=[("edge", (3, 4))])
        assert stats.mode == "seminaive"
        assert stats.derived >= 3  # (3,4) feeds (1,4), (2,4), (3,4)
        assert set(inc.query("path")) == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
        }
        assert db_state(inc.database) == oracle_state(inc)

    def test_duplicate_addition_is_noop(self):
        inc = IncrementalEngine(TC, [("edge", (1, 2))])
        stats = inc.update(additions=[("edge", (1, 2))])
        assert stats.added == 0
        assert stats.derived == 0

    def test_addition_closing_a_cycle(self):
        inc = IncrementalEngine(TC, [("edge", (1, 2)), ("edge", (2, 3))])
        inc.update(additions=[("edge", (3, 1))])
        assert db_state(inc.database) == oracle_state(inc)
        assert (1, 1) in set(inc.query("path"))

    def test_existential_rule_invents_equal_nulls(self):
        # the oracle shares the Program object, so the deterministic
        # skolemization produces the *same* null for the same frontier
        inc = IncrementalEngine(
            "employee(X) -> dept(X, D).", [("employee", ("p1",))]
        )
        inc.update(additions=[("employee", ("p2",))])
        assert db_state(inc.database) == oracle_state(inc)

    def test_program_facts_join_the_maintained_edb(self):
        inc = IncrementalEngine(
            """
            @fact edge(1, 2).
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """
        )
        assert ("edge", (1, 2)) in inc.edb_facts()
        inc.update(additions=[("edge", (2, 3))])
        assert db_state(inc.database) == oracle_state(inc)


class TestRemovals:
    def test_removal_deletes_dependent_facts(self):
        inc = IncrementalEngine(
            TC, [("edge", (1, 2)), ("edge", (2, 3)), ("edge", (3, 4))]
        )
        stats = inc.update(removals=[("edge", (2, 3))])
        assert stats.mode == "seminaive"
        assert stats.overdeleted > 0
        assert set(inc.query("path")) == {(1, 2), (3, 4)}
        assert db_state(inc.database) == oracle_state(inc)

    def test_rederivation_keeps_alternately_supported_facts(self):
        # two routes 1->3; removing one leaves path(1,3) derivable
        inc = IncrementalEngine(
            TC,
            [
                ("edge", (1, 2)), ("edge", (2, 3)),
                ("edge", (1, 5)), ("edge", (5, 3)), ("edge", (3, 4)),
            ],
        )
        stats = inc.update(removals=[("edge", (2, 3))])
        assert stats.rederived > 0
        paths = set(inc.query("path"))
        assert (1, 3) in paths and (1, 4) in paths
        assert db_state(inc.database) == oracle_state(inc)

    def test_removal_inside_a_cycle(self):
        # mutual support: path facts in a cycle justify each other, the
        # classic case where naive rederivation over-retains
        inc = IncrementalEngine(
            TC, [("edge", (1, 2)), ("edge", (2, 1)), ("edge", (2, 3))]
        )
        inc.update(removals=[("edge", (1, 2))])
        assert db_state(inc.database) == oracle_state(inc)
        assert set(inc.query("path")) == {(2, 1), (2, 3)}

    def test_removing_unknown_fact_is_noop(self):
        inc = IncrementalEngine(TC, [("edge", (1, 2))])
        stats = inc.update(removals=[("edge", (7, 8))])
        assert stats.removed == 0
        assert db_state(inc.database) == oracle_state(inc)

    def test_removed_edb_fact_survives_if_derivable(self):
        # path(1,2) asserted extensionally AND derivable from edge(1,2):
        # removing the extensional copy keeps the derived fact
        inc = IncrementalEngine(TC, [("edge", (1, 2)), ("path", (1, 2))])
        inc.update(removals=[("path", (1, 2))])
        assert (1, 2) in set(inc.query("path"))
        assert db_state(inc.database) == oracle_state(inc)

    def test_mixed_batch_removes_then_adds(self):
        inc = IncrementalEngine(
            TC, [("edge", (1, 2)), ("edge", (2, 3))]
        )
        inc.update(additions=[("edge", (3, 4))], removals=[("edge", (1, 2))])
        assert db_state(inc.database) == oracle_state(inc)


class TestFallbacks:
    def test_negation_always_recomputes(self):
        inc = IncrementalEngine(
            "node(X), not bad(X) -> good(X).",
            [("node", (1,)), ("node", (2,)), ("bad", (2,))],
        )
        stats = inc.update(additions=[("bad", (1,))])
        assert stats.mode == "recompute"
        assert inc.full_recomputes == 1
        assert set(inc.query("good")) == set()
        assert db_state(inc.database) == oracle_state(inc)

    def test_aggregate_additions_stay_incremental(self):
        inc = IncrementalEngine(
            CONTROL,
            [
                ("company", ("a",)), ("company", ("b",)), ("company", ("c",)),
                ("own", ("a", "b", 0.6)),
            ],
        )
        stats = inc.update(
            additions=[("own", ("b", "c", 0.3)), ("own", ("a", "c", 0.3))]
        )
        assert stats.mode == "seminaive"
        # joint control: a's direct 0.3 plus b's 0.3 via control sum past 0.5
        assert ("a", "c") in set(inc.query("ctrl"))
        oracle = Engine(inc.program, Database(inc.edb_facts()))
        oracle.run()
        assert set(inc.query("ctrl")) == set(oracle.query("ctrl"))

    def test_aggregate_removal_falls_back(self):
        inc = IncrementalEngine(
            CONTROL,
            [
                ("company", ("a",)), ("company", ("b",)),
                ("own", ("a", "b", 0.6)),
            ],
        )
        stats = inc.update(removals=[("own", ("a", "b", 0.6))])
        assert stats.mode == "recompute"
        assert set(inc.query("ctrl")) == {("a", "a"), ("b", "b")}
        assert db_state(inc.database) == oracle_state(inc)

    def test_fallback_does_not_resurrect_removed_program_fact(self):
        inc = IncrementalEngine(
            """
            @fact bad(2).
            node(X), not bad(X) -> good(X).
            """,
            [("node", (1,)), ("node", (2,))],
        )
        inc.update(removals=[("bad", (2,))])  # negation -> full recompute
        assert set(inc.query("good")) == {(1,), (2,)}
        assert ("bad", (2,)) not in inc.edb_facts()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.booleans(),  # True = add, False = remove
            st.integers(0, 5),
            st.integers(0, 5),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_random_update_sequences_match_oracle(ops):
    """Any interleaving of edge adds/removes keeps the maintained
    closure equal to a from-scratch evaluation."""
    inc = IncrementalEngine(TC, [("edge", (0, 1)), ("edge", (1, 2))])
    for add, x, y in ops:
        if add:
            inc.update(additions=[("edge", (x, y))])
        else:
            inc.update(removals=[("edge", (x, y))])
        assert db_state(inc.database) == oracle_state(inc)


class TestOverdeletionBackend:
    """DRed's over-deletion phase solves rule goals through the engine's
    planned/compiled evaluators; the interpreted join is only the escape
    hatch for rules the lowering rejected (or ``plan=False`` engines)."""

    def test_deletion_never_touches_the_interpreted_join(self):
        inc = IncrementalEngine(TC, [("edge", (0, 1)), ("edge", (1, 2)),
                                     ("edge", (2, 3)), ("edge", (0, 2))])

        def forbidden(*_args, **_kwargs):
            raise AssertionError("over-deletion used the interpreted join")

        inc.engine._join = forbidden
        stats = inc.update(removals=[("edge", (1, 2))])
        assert stats.mode == "seminaive"
        assert stats.overdeleted > 0
        assert db_state(inc.database) == oracle_state(inc)

    def test_unplanned_engine_keeps_the_interpreted_path(self):
        inc = IncrementalEngine(TC, [("edge", (0, 1)), ("edge", (1, 2))])
        inc.engine.plan_enabled = False
        inc.update(removals=[("edge", (0, 1))])
        assert db_state(inc.database) == oracle_state(inc)
