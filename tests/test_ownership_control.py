"""Tests for company control (Definition 2.3)."""

import pytest

from repro.graph import CompanyGraph, figure1_graph, figure2_graph
from repro.ownership import (
    control_chain,
    control_closure,
    controlled_by,
    controls,
    group_controlled,
)


def chain_graph(*shares):
    """p -> c0 -> c1 -> ... with the given shares."""
    graph = CompanyGraph()
    graph.add_person("p")
    previous = "p"
    for index, share in enumerate(shares):
        company = f"c{index}"
        graph.add_company(company)
        graph.add_shareholding(previous, company, share)
        previous = company
    return graph


class TestDirectControl:
    def test_majority_controls(self):
        graph = chain_graph(0.51)
        assert controls(graph, "p", "c0")

    def test_exactly_half_does_not_control(self):
        graph = chain_graph(0.5)
        assert not controls(graph, "p", "c0")

    def test_chain_of_majorities(self):
        graph = chain_graph(0.6, 0.7, 0.51)
        assert controlled_by(graph, "p") == {"c0", "c1", "c2"}

    def test_chain_broken_by_minority(self):
        graph = chain_graph(0.6, 0.4, 0.9)
        assert controlled_by(graph, "p") == {"c0"}


class TestJointControl:
    def test_joint_ownership_via_controlled_companies(self):
        """The paper's P1/E case: D (controlled) has 40%, P1 directly 20%."""
        graph = CompanyGraph()
        graph.add_person("p")
        for company in ("d", "e"):
            graph.add_company(company)
        graph.add_shareholding("p", "d", 0.75)
        graph.add_shareholding("d", "e", 0.4)
        graph.add_shareholding("p", "e", 0.2)
        assert controls(graph, "p", "e")

    def test_two_controlled_companies_combine(self):
        graph = CompanyGraph()
        graph.add_person("p")
        for company in ("a", "b", "t"):
            graph.add_company(company)
        graph.add_shareholding("p", "a", 0.6)
        graph.add_shareholding("p", "b", 0.6)
        graph.add_shareholding("a", "t", 0.3)
        graph.add_shareholding("b", "t", 0.3)
        assert controls(graph, "p", "t")

    def test_uncontrolled_shares_do_not_pool(self):
        graph = CompanyGraph()
        graph.add_person("p")
        for company in ("a", "t"):
            graph.add_company(company)
        graph.add_shareholding("p", "a", 0.4)   # not controlled
        graph.add_shareholding("a", "t", 0.4)
        graph.add_shareholding("p", "t", 0.2)
        assert not controls(graph, "p", "t")


class TestCycles:
    def test_mutual_ownership_terminates(self):
        graph = CompanyGraph()
        for company in ("a", "b"):
            graph.add_company(company)
        graph.add_shareholding("a", "b", 0.6)
        graph.add_shareholding("b", "a", 0.6)
        assert controlled_by(graph, "a") == {"b"}
        assert controlled_by(graph, "b") == {"a"}

    def test_self_loop_ignored_for_own_control(self):
        graph = CompanyGraph()
        graph.add_company("a")
        graph.add_shareholding("a", "a", 0.9)
        assert controlled_by(graph, "a") == set()


class TestClosureAndChains:
    def test_figure1_closure(self):
        graph = figure1_graph()
        pairs = control_closure(graph)
        expected = {
            ("P1", "C"), ("P1", "D"), ("P1", "E"), ("P1", "F"),
            ("P2", "G"), ("P2", "H"), ("P2", "I"), ("G", "H"),
        }
        assert expected <= pairs
        assert not any(y == "L" for _, y in pairs)

    def test_figure2_use_case_1(self):
        """Use case (1): does P2 control C7? Yes, via C5 and C6."""
        graph = figure2_graph()
        assert controls(graph, "P2", "C7")

    def test_closure_restricted_sources(self):
        graph = figure1_graph()
        pairs = control_closure(graph, sources=["P1"])
        assert all(x == "P1" for x, _ in pairs)

    def test_chain_explanation(self):
        graph = figure1_graph()
        chain = control_chain(graph, "P1", "F")
        assert chain is not None
        companies = [company for company, _ in chain]
        assert companies[-1] == "F"
        assert all(share > 0.5 for _, share in chain)

    def test_chain_none_when_no_control(self):
        graph = figure1_graph()
        assert control_chain(graph, "P1", "L") is None
        assert control_chain(graph, "P1", "P1") is None

    def test_missing_source(self):
        graph = figure1_graph()
        assert controlled_by(graph, "nobody") == set()
        assert control_chain(graph, "nobody", "C") is None


class TestGroupControl:
    def test_members_pool_shares(self):
        graph = CompanyGraph()
        graph.add_person("p1")
        graph.add_person("p2")
        graph.add_company("t")
        graph.add_shareholding("p1", "t", 0.3)
        graph.add_shareholding("p2", "t", 0.3)
        assert group_controlled(graph, ["p1", "p2"]) == {"t"}
        assert controlled_by(graph, "p1") == set()

    def test_paper_family_business_l(self):
        """Figure 1 narrative: P1 and P2 together control L (60%)."""
        graph = figure1_graph()
        joint = group_controlled(graph, ["P1", "P2"])
        assert "L" in joint

    def test_custom_threshold(self):
        graph = chain_graph(0.45)
        assert controlled_by(graph, "p", threshold=0.4) == {"c0"}
