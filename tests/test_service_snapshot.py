"""Tests for versioned snapshots: builds, payloads, atomic swaps."""

import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.graph import CompanyGraph
from repro.ownership.close_links import close_link_pairs
from repro.ownership.control import control_closure
from repro.service import Snapshot, SnapshotBuilder, SnapshotConfig, SnapshotManager


@pytest.fixture(scope="module")
def graph():
    g, _truth = generate_company_graph(CompanySpec(persons=30, companies=24, seed=11))
    return g


@pytest.fixture(scope="module")
def snapshot(graph):
    return SnapshotBuilder().build(graph)


class TestBuild:
    def test_versions_increase_monotonically(self, graph):
        builder = SnapshotBuilder()
        assert builder.build(graph).version == 1
        assert builder.build(graph).version == 2
        assert builder.version == 2

    def test_precomputed_control_matches_reference(self, graph, snapshot):
        assert snapshot.control == control_closure(graph, threshold=0.5)

    def test_precomputed_close_links_match_reference(self, graph, snapshot):
        assert snapshot.close_links == close_link_pairs(graph, 0.2, max_depth=12)

    def test_augmented_graph_has_typed_edges(self, graph, snapshot):
        assert snapshot.augmented.edge_count >= graph.edge_count + len(snapshot.control)
        control_edges = sum(1 for _ in snapshot.augmented.edges("control"))
        assert control_edges == len(snapshot.control)

    def test_store_indexes_built(self, snapshot):
        for prop in snapshot.config.index_properties:
            assert (None, prop) in snapshot.store._property_indexes

    def test_no_augment_skips_family_detection(self, graph):
        snapshot = SnapshotBuilder(SnapshotConfig(augment=False)).build(graph)
        assert snapshot.family_links == set()
        assert snapshot.control  # ownership analytics still precomputed


class TestPayloads:
    def test_control_payload_default_threshold(self, snapshot):
        payload = snapshot.control_payload()
        assert payload["version"] == snapshot.version
        assert payload["count"] == len(snapshot.control)
        assert all(len(pair) == 2 for pair in payload["pairs"])

    def test_control_payload_source_filter(self, snapshot):
        source = next(iter(snapshot.control))[0]
        payload = snapshot.control_payload(source=source)
        assert payload["pairs"]
        assert all(x == source for x, _ in payload["pairs"])

    def test_control_payload_custom_threshold(self, graph, snapshot):
        payload = snapshot.control_payload(threshold=0.35)
        expected = control_closure(graph, threshold=0.35)
        assert {tuple(p) for p in payload["pairs"]} == expected

    def test_ubo_batch_matches_precomputed(self, snapshot):
        companies = [c for c in snapshot.ubo][:4]
        payloads = snapshot.ubo_payloads(companies)
        for company in companies:
            owners = payloads[company]["owners"]
            assert [o["person"] for o in owners] == [
                o.person for o in snapshot.ubo[company]
            ]

    def test_ubo_batch_custom_threshold(self, snapshot):
        companies = [c for c in snapshot.ubo][:2]
        strict = snapshot.ubo_payloads(companies, threshold=0.9)
        for company in companies:
            for owner in strict[company]["owners"]:
                assert owner["integrated_share"] >= 0.9 or owner["controls"]

    def test_neighbors_payload(self, graph, snapshot):
        company = next(graph.companies()).id
        payload = snapshot.neighbors_payload(company)
        assert payload["id"] == company
        assert payload["label"] == "C"
        degree = len(payload["out"]) + len(payload["in"])
        assert degree >= snapshot.graph.degree(company) > 0 or degree == 0

    def test_neighbors_payload_depth(self, snapshot):
        source = next(iter(snapshot.control))[0]
        payload = snapshot.neighbors_payload(source, depth=3)
        assert "reachable" in payload

    def test_stats_payload(self, graph, snapshot):
        stats = snapshot.stats_payload()
        assert stats["nodes"] == graph.node_count
        assert stats["control_pairs"] == len(snapshot.control)
        assert stats["version"] == snapshot.version


class TestWarmRebuild:
    def test_warm_build_uses_incremental_embedder(self):
        graph, _ = generate_company_graph(CompanySpec(persons=40, companies=30, seed=5))
        config = SnapshotConfig(first_level_clusters=3, use_embeddings=True)
        builder = SnapshotBuilder(config)
        first = builder.build(graph)
        assert not first.warm
        assert builder._embedder.cold_rounds == 1

        mutated = graph.copy()
        mutated.add_company("WARMCO", name="WarmCo")
        owner = next(graph.companies()).id
        edge = mutated.add_shareholding(owner, "WARMCO", 0.7)
        second = builder.build(mutated, new_edges=[edge])
        assert second.warm
        assert second.version == 2
        assert builder._embedder.warm_rounds == 1

    def test_removals_force_cold_build(self):
        graph, _ = generate_company_graph(CompanySpec(persons=30, companies=24, seed=5))
        config = SnapshotConfig(first_level_clusters=3, use_embeddings=True)
        builder = SnapshotBuilder(config)
        builder.build(graph)
        second = builder.build(graph.copy(), new_edges=None)
        assert not second.warm
        assert builder._embedder.cold_rounds == 2


class TestManager:
    def test_empty_manager_raises(self):
        manager = SnapshotManager()
        assert manager.version == 0
        with pytest.raises(RuntimeError):
            manager.current

    def test_publish_swaps_atomically(self, graph):
        builder = SnapshotBuilder()
        manager = SnapshotManager()
        first = builder.build(graph)
        manager.publish(first)
        assert manager.current is first
        second = builder.build(graph)
        manager.publish(second)
        assert manager.current is second
        assert manager.swaps == 2
        assert manager.last_swap_pause_s < 0.01

    def test_publish_rejects_stale_version(self, graph):
        builder = SnapshotBuilder()
        manager = SnapshotManager()
        first = builder.build(graph)
        second = builder.build(graph)
        manager.publish(second)
        with pytest.raises(ValueError):
            manager.publish(first)

    def test_readers_keep_old_reference_during_swap(self, graph):
        builder = SnapshotBuilder()
        manager = SnapshotManager(builder.build(graph))
        held: Snapshot = manager.current
        manager.publish(builder.build(graph))
        # the old snapshot object stays fully usable for in-flight readers
        assert held.version == 1
        assert held.control_payload()["version"] == 1
        assert manager.current.version == 2


def test_minimal_graph_snapshot():
    graph = CompanyGraph()
    graph.add_person("p")
    graph.add_company("c")
    graph.add_shareholding("p", "c", 0.8)
    snapshot = SnapshotBuilder().build(graph)
    assert snapshot.control == {("p", "c")}
    assert snapshot.ubo["c"][0].person == "p"
