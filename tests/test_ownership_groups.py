"""Tests for control groups and groups of connected clients."""

import pytest

from repro.graph import CompanyGraph, figure1_graph
from repro.ownership import (
    connected_clients,
    control_groups,
    group_exposure,
    ultimate_controller,
)


def pyramid() -> CompanyGraph:
    """p -> holding -> {sub1, sub2}; sub2 -> leaf; q independent owner of x."""
    graph = CompanyGraph()
    graph.add_person("p")
    graph.add_person("q")
    for company in ("holding", "sub1", "sub2", "leaf", "x"):
        graph.add_company(company)
    graph.add_shareholding("p", "holding", 0.6)
    graph.add_shareholding("holding", "sub1", 0.7)
    graph.add_shareholding("holding", "sub2", 0.8)
    graph.add_shareholding("sub2", "leaf", 0.9)
    graph.add_shareholding("q", "x", 0.3)  # no control
    return graph


class TestUltimateController:
    def test_follows_the_chain_to_the_top(self):
        graph = pyramid()
        for company in ("holding", "sub1", "sub2", "leaf"):
            assert ultimate_controller(graph, company) == "p"

    def test_uncontrolled_company_has_none(self):
        graph = pyramid()
        assert ultimate_controller(graph, "x") is None

    def test_mutual_control_cycle_resolves_deterministically(self):
        graph = CompanyGraph()
        graph.add_company("a")
        graph.add_company("b")
        graph.add_shareholding("a", "b", 0.6)
        graph.add_shareholding("b", "a", 0.6)
        assert ultimate_controller(graph, "a") == ultimate_controller(graph, "b")

    def test_figure1(self):
        graph = figure1_graph()
        assert ultimate_controller(graph, "F") == "P1"
        assert ultimate_controller(graph, "H") == "P2"
        assert ultimate_controller(graph, "L") is None


class TestControlGroups:
    def test_pyramid_is_one_group(self):
        groups = control_groups(pyramid())
        assert len(groups) == 1
        group = groups[0]
        assert group.controller == "p"
        assert group.members == {"holding", "sub1", "sub2", "leaf"}
        assert group.size == 5

    def test_figure1_two_groups(self):
        groups = control_groups(figure1_graph())
        by_controller = {g.controller: g.members for g in groups}
        assert by_controller["P1"] == {"C", "D", "E", "F"}
        assert by_controller["P2"] == {"G", "H", "I"}

    def test_sorted_largest_first(self):
        groups = control_groups(figure1_graph())
        sizes = [g.size for g in groups]
        assert sizes == sorted(sizes, reverse=True)


class TestConnectedClients:
    def test_close_links_merge_groups(self):
        # two controlled chains share a common owner above the threshold
        graph = CompanyGraph()
        graph.add_person("z")
        for company in ("x", "y"):
            graph.add_company(company)
        graph.add_shareholding("z", "x", 0.25)
        graph.add_shareholding("z", "y", 0.25)
        groups = connected_clients(graph)
        assert any({"x", "y"} <= group for group in groups)

    def test_figure1_groups(self):
        groups = connected_clients(figure1_graph())
        merged = next(group for group in groups if "C" in group)
        # P1's whole sphere hangs together through control + close links
        assert {"P1", "C", "D", "E", "F"} <= merged

    def test_singletons_not_reported(self):
        graph = CompanyGraph()
        graph.add_company("lonely")
        assert connected_clients(graph) == []


class TestGroupExposure:
    def test_exposures_sum_over_groups(self):
        graph = pyramid()
        exposures = {"holding": 10.0, "sub1": 5.0, "leaf": 2.5, "x": 99.0}
        totals = group_exposure(graph, exposures)
        assert totals[0][1] == pytest.approx(17.5)  # p's group
        assert all("x" not in group for group, _ in totals)  # x is unconnected
