"""Tests for the end-to-end reasoning pipeline (Section 5 architecture)."""

import pytest

from repro.core import PipelineConfig, ReasoningPipeline
from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import FAMILY, CompanyGraph, figure1_graph
from repro.linkage import persons_of, train_classifiers
from repro.ownership import close_link_pairs, control_closure


def fast_config(**overrides):
    defaults = dict(first_level_clusters=1, use_embeddings=False)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def world():
    return generate_company_graph(
        CompanySpec(persons=80, companies=50, seed=31, feature_noise=0.0)
    )


class TestDeterministicProblems:
    def test_control_matches_reference(self):
        graph = figure1_graph()
        pipeline = ReasoningPipeline(graph, fast_config())
        assert pipeline.control_pairs() == control_closure(graph)

    def test_close_links_match_reference(self):
        graph = figure1_graph()
        pipeline = ReasoningPipeline(graph, fast_config())
        assert pipeline.close_link_pairs() == close_link_pairs(graph)

    def test_cyclic_graph_uses_procedural_fallback(self):
        graph = CompanyGraph()
        for company in ("a", "b", "c"):
            graph.add_company(company)
        graph.add_shareholding("a", "b", 0.5)
        graph.add_shareholding("b", "a", 0.5)
        graph.add_shareholding("a", "c", 0.25)
        pipeline = ReasoningPipeline(graph, fast_config())
        pairs = pipeline.close_link_pairs()  # must not diverge
        assert ("a", "c") in pairs

    def test_forced_procedural_mode(self):
        graph = figure1_graph()
        pipeline = ReasoningPipeline(graph, fast_config(close_links_via="procedural"))
        assert pipeline.close_link_pairs() == close_link_pairs(graph)


class TestFamilyDetection:
    def test_family_links_found(self, world):
        graph, truth = world
        classifiers = train_classifiers(persons_of(graph), truth.links, seed=2)
        pipeline = ReasoningPipeline(graph, fast_config(), classifiers=classifiers)
        links = pipeline.family_links()
        assert links
        recall = len(links & truth.links) / len(truth.links)
        assert recall > 0.5

    def test_detected_links_are_person_pairs(self, world):
        graph, truth = world
        pipeline = ReasoningPipeline(graph, fast_config())
        for x, y, _ in pipeline.family_links():
            assert graph.is_person(x) and graph.is_person(y)


class TestFamilyMaterialisation:
    def test_links_become_family_nodes(self, world):
        graph, truth = world
        pipeline = ReasoningPipeline(graph.copy(), fast_config())
        links = {("P1", "P2", "partner_of")}
        # use two real persons from the graph
        persons = [n.id for n in graph.persons()][:3]
        links = {
            (persons[0], persons[1], "partner_of"),
            (persons[1], persons[2], "sibling_of"),
        }
        families = pipeline.materialise_families(links)
        assert len(families) == 1
        members = next(iter(families.values()))
        assert members == set(persons[:3])
        assert sum(1 for _ in pipeline.graph.edges(FAMILY)) == 3

    def test_family_control_after_materialisation(self):
        graph = CompanyGraph()
        graph.add_person("mom", name="m")
        graph.add_person("dad", name="d")
        graph.add_company("firm", name="f")
        graph.add_shareholding("mom", "firm", 0.3)
        graph.add_shareholding("dad", "firm", 0.3)
        pipeline = ReasoningPipeline(graph, fast_config())
        pipeline.materialise_families({("mom", "dad", "partner_of")})
        pairs = pipeline.family_control_pairs()
        assert any(company == "firm" for _, company in pairs)


class TestAugment:
    def test_augment_adds_typed_edges(self, world):
        graph, truth = world
        classifiers = train_classifiers(persons_of(graph), truth.links, seed=2)
        pipeline = ReasoningPipeline(graph, fast_config(), classifiers=classifiers)
        augmented = pipeline.augment()
        labels = {edge.label for edge in augmented.edges()}
        assert "control" in labels or "close_link" in labels
        assert augmented.edge_count > graph.edge_count

    def test_augment_leaves_original_untouched(self, world):
        graph, _ = world
        before = graph.edge_count
        ReasoningPipeline(graph, fast_config()).augment()
        assert graph.edge_count == before


class TestProvenance:
    def test_control_explanation_available(self):
        graph = figure1_graph()
        pipeline = ReasoningPipeline(graph, fast_config())
        pipeline.control_pairs(provenance=True)
        engine = pipeline.last_engine
        lines = engine.explain("control", ("P1", "C"))
        assert any("ctrl" in line or "extensional" in line for line in lines)


class TestIncrementalReasoning:
    """config.incremental_reasoning serves reason() from a maintained
    fixpoint; the cold KnowledgeGraph.reason path is the oracle."""

    def test_results_match_cold_pipeline(self):
        graph = figure1_graph()
        warm = ReasoningPipeline(graph, fast_config(incremental_reasoning=True))
        cold = ReasoningPipeline(graph, fast_config())
        assert warm.control_pairs() == cold.control_pairs()
        # second call answers from the maintained engine, delta-free
        assert warm.control_pairs() == cold.control_pairs()
        assert len(warm._incremental_cache) == 1

    def test_maintained_engine_is_reused_across_calls(self):
        graph = figure1_graph()
        warm = ReasoningPipeline(graph, fast_config(incremental_reasoning=True))
        warm.control_pairs()
        maintained, _facts = next(iter(warm._incremental_cache.values()))
        warm.control_pairs()
        kept, _facts = next(iter(warm._incremental_cache.values()))
        assert kept is maintained
        assert maintained.full_recomputes == 0

    def test_extensional_delta_flows_through_maintenance(self):
        graph = figure1_graph()
        warm = ReasoningPipeline(graph, fast_config(incremental_reasoning=True))
        warm.control_pairs()
        maintained, _facts = next(iter(warm._incremental_cache.values()))
        warm.kg.extensional.add("own", ("C", "I", 0.9, None))
        got = warm.control_pairs()
        cold = ReasoningPipeline(graph, fast_config())
        cold.kg.extensional.add("own", ("C", "I", 0.9, None))
        assert got == cold.control_pairs()
        assert maintained.full_recomputes == 0  # served by the delta path

    def test_provenance_requests_bypass_the_maintained_engine(self):
        graph = figure1_graph()
        warm = ReasoningPipeline(graph, fast_config(incremental_reasoning=True))
        warm.control_pairs(provenance=True)
        engine = warm.last_engine
        lines = engine.explain("control", ("P1", "C"))
        assert lines
        assert warm._incremental_cache == {}
