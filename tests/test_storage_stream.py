"""Streaming generation into the store: column parity with the
in-memory frame, out-of-core point queries, and loader sinks."""

import numpy as np
import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.graph.columnar import GraphFrame
from repro.graph.company_graph import SHAREHOLDING
from repro.graph.io import load_company_csv_into, write_company_csv
from repro.storage import (
    FrameStore,
    GRAPH_COLUMNS,
    OutOfCoreGraph,
    StoreError,
    StreamingGraphWriter,
    generate_company_graph_stream,
)

SPEC = CompanySpec(persons=70, companies=50, seed=13, add_family_nodes=True)


@pytest.fixture(scope="module")
def oracle():
    """The same spec generated fully in memory."""
    return generate_company_graph(SPEC)


@pytest.fixture(scope="module")
def streamed(tmp_path_factory, oracle):
    root = tmp_path_factory.mktemp("stream") / "store"
    store = FrameStore.create(root)
    # tiny chunks so every chunk-boundary path is exercised
    writer = StreamingGraphWriter(store, chunk_rows=64, pos_cache_limit=32)
    from repro.datagen.company_generator import generate_company_graph_into

    truth = generate_company_graph_into(writer, SPEC)
    version = writer.finalize()
    return store, version, truth


class TestStreamingParity:
    def test_ground_truth_rng_identical(self, oracle, streamed):
        _, _, truth = streamed
        _, expected = oracle
        assert truth.links == expected.links
        assert truth.families == expected.families

    def test_catalog_counts(self, oracle, streamed):
        graph, _ = oracle
        store, version, _ = streamed
        (info,) = [v for v in store.versions(kind="graph") if v["version"] == version]
        assert info["state"] == "published"
        assert info["nodes"] == graph.node_count
        assert info["edges"] == graph.edge_count

    def test_columns_byte_identical_to_frame(self, oracle, streamed):
        graph, _ = oracle
        store, version, _ = streamed
        frame = GraphFrame.of(graph)
        buffers = dict(frame.buffers())
        vdir = store.version_dir(version)
        for name in ("edge_src", "edge_dst", "csr_indptr", "csr_targets",
                     "csr_positions", "csc_indptr", "csc_sources", "csc_positions"):
            stored = np.load(vdir / f"{name}.npy", mmap_mode="r")
            assert np.array_equal(stored, buffers[name]), name

    def test_manifest_covers_graph_columns(self, streamed):
        store, version, _ = streamed
        vdir = store.version_dir(version)
        for name in dict(GRAPH_COLUMNS):
            assert (vdir / f"{name}.npy").exists(), name


class TestOutOfCoreGraph:
    def test_point_queries_match_in_memory(self, oracle, streamed):
        graph, _ = oracle
        store, version, _ = streamed
        ooc = OutOfCoreGraph(store, version)
        try:
            assert ooc.node_count == graph.node_count
            assert ooc.edge_count == graph.edge_count
            for node in list(graph.nodes())[:40]:
                info = ooc.node(node.id)
                assert info["label"] == node.label
                assert info["properties"] == node.properties
                succ = sorted(
                    (t, lbl, None if w is None else round(w, 12))
                    for t, lbl, w in ooc.successors(node.id)
                )
                expected = sorted(
                    (e.target, e.label,
                     None if e.get("w") is None else round(e.get("w"), 12))
                    for e in graph.out_edges(node.id)
                )
                assert succ == expected, node.id
        finally:
            ooc.close()

    def test_share_sums_shareholdings(self, oracle, streamed):
        graph, _ = oracle
        store, version, _ = streamed
        ooc = OutOfCoreGraph(store, version)
        try:
            edge = next(e for e in graph.edges() if e.label == SHAREHOLDING)
            expected = sum(
                e.get("w") for e in graph.out_edges(edge.source, SHAREHOLDING)
                if e.target == edge.target
            )
            assert ooc.share(edge.source, edge.target) == pytest.approx(expected)
            assert ooc.share(edge.target, edge.source) == 0.0
        finally:
            ooc.close()

    def test_missing_node_raises(self, streamed):
        from repro.graph.property_graph import GraphError

        store, version, _ = streamed
        ooc = OutOfCoreGraph(store, version)
        try:
            with pytest.raises(GraphError):
                ooc.node("NO_SUCH_NODE")
        finally:
            ooc.close()


class TestWriterValidation:
    def test_non_string_id_rejected(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        writer = StreamingGraphWriter(store)
        with pytest.raises(StoreError, match="string node ids"):
            writer.add_node(42)
        writer.abort()

    def test_bad_share_rejected(self, tmp_path):
        from repro.graph.property_graph import GraphError

        store = FrameStore.create(tmp_path / "store")
        writer = StreamingGraphWriter(store)
        writer.add_person("P1")
        writer.add_company("C1")
        with pytest.raises(GraphError):  # same contract as CompanyGraph
            writer.add_shareholding("P1", "C1", 1.5)
        writer.abort()

    def test_abort_leaves_no_trace(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        writer = StreamingGraphWriter(store)
        writer.add_person("P1")
        version = writer.version
        writer.abort()
        assert store.versions() == []
        assert not store.version_dir(version).exists()


class TestCsvSink:
    def test_csv_streams_into_writer(self, tmp_path, oracle):
        graph, _ = oracle
        extract = tmp_path / "extract"
        write_company_csv(graph, extract)
        store = FrameStore.create(tmp_path / "store")
        writer = StreamingGraphWriter(store, chunk_rows=32)
        load_company_csv_into(extract, writer)
        version = writer.finalize()
        # the CSV layout only carries companies/persons/shareholdings, so
        # the stream must match the in-memory CSV round-trip exactly
        from repro.graph.io import read_company_csv

        expected = read_company_csv(extract)
        ooc = OutOfCoreGraph(store, version)
        try:
            assert ooc.node_count == expected.node_count
            assert ooc.edge_count == expected.edge_count
            edge = next(e for e in expected.edges() if e.label == SHAREHOLDING)
            assert ooc.share(edge.source, edge.target) == pytest.approx(
                sum(e.get("w") for e in expected.out_edges(edge.source, SHAREHOLDING)
                    if e.target == edge.target)
            )
        finally:
            ooc.close()


class TestStreamedGenerateHelper:
    def test_helper_matches_in_memory(self, tmp_path, oracle):
        _, expected = oracle
        store = FrameStore.create(tmp_path / "store")
        version, truth = generate_company_graph_stream(SPEC, store)
        assert truth.links == expected.links
        assert store.versions(kind="graph")[0]["version"] == version
