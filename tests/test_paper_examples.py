"""Every quantitative claim the paper's text makes about its worked
examples, checked end to end (Figures 1 and 2, Examples 2.4 and 2.7,
and the three use-case questions of Section 2)."""

import pytest

from repro.core import ReasoningPipeline, PipelineConfig
from repro.graph import figure1_graph, figure2_graph
from repro.ownership import (
    accumulated_ownership,
    close_link_pairs,
    controlled_by,
    controls,
    family_close_links,
    group_controlled,
)


@pytest.fixture(scope="module")
def fig1():
    return figure1_graph()


@pytest.fixture(scope="module")
def fig2():
    return figure2_graph()


class TestFigure1Narrative:
    """Section 1: 'P1 controls C, D, and E (via C), E (since it controls D,
    which owns 40% of E and P1 directly owns 20% of it), and F (via E and
    D). Similarly, P2 controls all its descendants except for L.
    Apparently, P1 exerts no control on L either.'"""

    def test_p1_controls(self, fig1):
        assert controlled_by(fig1, "P1") == {"C", "D", "E", "F"}

    def test_p2_controls_descendants_except_l(self, fig1):
        assert controlled_by(fig1, "P2") == {"G", "H", "I"}

    def test_nobody_controls_l_alone(self, fig1):
        for node in fig1.node_ids():
            assert not controls(fig1, node, "L")

    def test_g_and_i_closely_linked(self, fig1):
        """'G and I are closely linked since P2 owns more than 20% of both.'"""
        assert ("G", "I") in close_link_pairs(fig1)

    def test_p1_p2_together_control_l(self, fig1):
        """'knowing that P1 and P2 have personal connections allows to
        deduce that P1 and P2 together control L ... controlling 60% of it'"""
        assert "L" in group_controlled(fig1, ["P1", "P2"])
        assert fig1.share("F", "L") + fig1.share("I", "L") == pytest.approx(0.6)

    def test_d_g_family_close_link(self, fig1):
        """'although D and G do not strictly fulfil the definition of close
        link, as P1 and P2 have a personal connection ... prevent G from
        acting as a guarantor for D.'"""
        assert ("D", "G") not in close_link_pairs(fig1)
        assert ("D", "G") in family_close_links(fig1, ["P1", "P2"])


class TestFigure2Narrative:
    def test_example_24_p1_controls_c4_directly(self, fig2):
        """Example 2.4: 'P1 controls C4 by means of a direct 80% edge.'"""
        assert fig2.share("P1", "C4") == pytest.approx(0.8)
        assert controls(fig2, "P1", "C4")

    def test_example_24_p2_controls_c7_via_c5_c6(self, fig2):
        """Example 2.4 / use case (1): 'P2 controls C7, via C5 and C6.'"""
        assert controls(fig2, "P2", "C7")
        assert controls(fig2, "P2", "C5")
        assert controls(fig2, "P2", "C6")
        assert not controls(fig2, "P2", "C4")

    def test_example_27_common_owner(self, fig2):
        """Example 2.7: 'P3 owns 40% of C4 and 50% of C6, therefore they
        are in close link relationship by Definition 2.6-(iii).'"""
        assert fig2.share("P3", "C4") == pytest.approx(0.4)
        assert fig2.share("P3", "C6") == pytest.approx(0.5)
        assert ("C4", "C6") in close_link_pairs(fig2, threshold=0.2)

    def test_example_27_accumulated_ownership(self, fig2):
        """Example 2.7: 'since Phi(C4, C7) = 0.2, it follows that C4 and C7
        are in close link relationships by Definition 2.6-(i).'"""
        assert accumulated_ownership(fig2, "C4", "C7") == pytest.approx(0.2)
        assert ("C4", "C7") in close_link_pairs(fig2, threshold=0.2)

    def test_use_case_2_c6_c7_closely_related(self, fig2):
        """Use case (2): 'Are companies C6 and C7 closely related?'"""
        assert ("C6", "C7") in close_link_pairs(fig2)


class TestDeclarativeAgreesOnPaperExamples:
    """The Vadalog programs must reach the same conclusions."""

    @pytest.fixture(scope="class")
    def pipelines(self, fig1, fig2):
        config = PipelineConfig(first_level_clusters=1, use_embeddings=False)
        return ReasoningPipeline(fig1, config), ReasoningPipeline(fig2, config)

    def test_fig1_control(self, pipelines, fig1):
        pipeline, _ = pipelines
        pairs = pipeline.control_pairs()
        assert {y for x, y in pairs if x == "P1"} == {"C", "D", "E", "F"}
        assert {y for x, y in pairs if x == "P2"} == {"G", "H", "I"}

    def test_fig2_control(self, pipelines, fig2):
        _, pipeline = pipelines
        assert ("P2", "C7") in pipeline.control_pairs()

    def test_fig2_close_links(self, pipelines, fig2):
        _, pipeline = pipelines
        pairs = pipeline.close_link_pairs()
        assert ("C4", "C7") in pairs
        assert ("C4", "C6") in pairs
