"""Tests for the Example 3.2 influence program and phonetic blocking."""

from repro.core import influence_program, phonetic_person_blocker
from repro.datalog import is_null, solve
from repro.graph import Node
from repro.linkage import soundex, soundex_distance


class TestInfluenceProgram:
    """The paper's Example 3.2: ownership + marriage -> influence."""

    def setup_method(self):
        self.engine = solve(
            influence_program(),
            [
                ("person_e", ("anna",)),
                ("person_e", ("bruno",)),
                ("own_e", ("anna", "acme", 0.3)),
                ("married", ("anna", "bruno")),
            ],
        )

    def test_owner_influences(self):
        assert self.engine.holds("influence", ("anna", "acme"))

    def test_spouse_influences_through_marriage(self):
        # Rule 2 + Rule 3: bruno influences acme via the marriage
        assert self.engine.holds("influence", ("bruno", "acme"))

    def test_spouse_relation_symmetric(self):
        spouses = {(x, y) for x, y, *_ in self.engine.query("spouse")}
        assert ("anna", "bruno") in spouses
        assert ("bruno", "anna") in spouses

    def test_validity_interval_is_invented(self):
        # T1/T2 are existential: the chase invents nulls for the interval
        row = next(iter(self.engine.query("spouse")))
        assert is_null(row[2]) and is_null(row[3])

    def test_symmetric_spouse_shares_interval(self):
        rows = self.engine.query("spouse")
        intervals = {(row[2], row[3]) for row in rows}
        assert len(intervals) == 1  # the symmetry rule copies the nulls


class TestSoundex:
    def test_known_codes(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"
        assert soundex("Honeyman") == "H555"

    def test_typo_robustness(self):
        # vowel substitution (the generator's noise model) keeps the code
        assert soundex("Rossi") == soundex("Rossa")
        assert soundex("Bianchi") == soundex("Bienchi")

    def test_short_and_empty(self):
        assert soundex("A") == "A000"
        assert soundex("") == "0000"
        assert soundex("123") == "0000"

    def test_distance(self):
        assert soundex_distance("Rossi", "Rossa") == 0.0
        assert soundex_distance("Rossi", "Verdi") == 1.0


class TestPhoneticBlocker:
    def test_typo_lands_in_same_block(self):
        blocker = phonetic_person_blocker()
        clean = Node("1", "P", {"surname": "Marchetti"})
        typo = Node("2", "P", {"surname": "Marchetta"})
        other = Node("3", "P", {"surname": "Esposito"})
        assert blocker(clean) == blocker(typo)
        assert blocker(clean) != blocker(other)

    def test_k_folding(self):
        blocker = phonetic_person_blocker(k=3)
        keys = {blocker(Node(str(i), "P", {"surname": f"Name{i}"})) for i in range(50)}
        assert keys <= {0, 1, 2}
