"""Tests for node2vec: walks, skip-gram, k-means, clustering."""

import numpy as np
import pytest

from repro.embeddings import (
    Node2Vec,
    Node2VecConfig,
    RandomWalker,
    build_adjacency,
    cluster_inertia,
    embed_and_cluster,
    feature_token_adjacency,
    generate_walks,
    kmeans,
    train_skipgram,
)
from repro.graph import CompanyGraph, PropertyGraph


def two_cliques(bridge: bool = True) -> PropertyGraph:
    """Two 5-cliques, optionally connected by one bridge edge."""
    graph = PropertyGraph()
    for i in range(10):
        graph.add_node(i)
    for group in (range(5), range(5, 10)):
        members = list(group)
        for a in members:
            for b in members:
                if a < b:
                    graph.add_edge(a, b, w=1.0)
    if bridge:
        graph.add_edge(0, 5, w=0.1)
    return graph


class TestAdjacency:
    def test_undirected_merge(self):
        graph = PropertyGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("a", "b", w=0.3)
        graph.add_edge("b", "a", w=0.2)
        adjacency = build_adjacency(graph)
        assert dict(adjacency["a"]) == {"b": pytest.approx(0.5)}

    def test_self_loops_dropped(self):
        graph = PropertyGraph()
        graph.add_node("a")
        graph.add_edge("a", "a", w=1.0)
        assert build_adjacency(graph)["a"] == []

    def test_feature_tokens_link_similar_nodes(self):
        graph = CompanyGraph()
        graph.add_person("p1", surname="Rossi")
        graph.add_person("p2", surname="Rossi")
        graph.add_person("p3", surname="Verdi")
        adjacency = feature_token_adjacency(graph, ("surname",))
        token = ("__feature__", "surname", "Rossi")
        assert token in adjacency
        assert {n for n, _ in adjacency[token]} == {"p1", "p2"}


class TestWalks:
    def test_walks_follow_edges(self):
        graph = two_cliques()
        adjacency = build_adjacency(graph)
        walker = RandomWalker(adjacency, seed=1)
        for walk in walker.walks(list(adjacency), 2, 8):
            for a, b in zip(walk, walk[1:]):
                assert b in {n for n, _ in adjacency[a]}

    def test_deterministic_per_seed(self):
        graph = two_cliques()
        walks_a = generate_walks(graph, num_walks=3, walk_length=6, seed=42)
        walks_b = generate_walks(graph, num_walks=3, walk_length=6, seed=42)
        assert walks_a == walks_b

    def test_different_seeds_differ(self):
        graph = two_cliques()
        assert generate_walks(graph, seed=1) != generate_walks(graph, seed=2)

    def test_isolated_node_walk_is_singleton(self):
        graph = PropertyGraph()
        graph.add_node("lonely")
        walks = generate_walks(graph, num_walks=1, walk_length=5)
        assert walks == [["lonely"]]

    def test_invalid_pq_rejected(self):
        with pytest.raises(ValueError):
            RandomWalker({}, p=0.0)
        with pytest.raises(ValueError):
            RandomWalker({}, q=-1.0)


class _LinearScanWalker:
    """The historical per-step linear-scan sampler, kept as an oracle.

    :class:`RandomWalker` replaced this with precomputed cumulative-weight
    tables and ``bisect``; the guarantee is that under a fixed seed the
    walks are bit-identical (same left-to-right accumulation order, one
    ``random()`` per step).
    """

    def __init__(self, adjacency, p=1.0, q=1.0, seed=0):
        import random as _random

        self.adjacency = adjacency
        self.p = p
        self.q = q
        self._rng = _random.Random(seed)
        self._neighbor_sets = {
            node: {neighbor for neighbor, _ in neighbors}
            for node, neighbors in adjacency.items()
        }

    def walk(self, start, length):
        walk = [start]
        if length <= 1:
            return walk
        neighbors = self.adjacency.get(start, ())
        if not neighbors:
            return walk
        weights = [weight for _, weight in neighbors]
        current = self._choose(neighbors, weights)
        walk.append(current)
        while len(walk) < length:
            neighbors = self.adjacency.get(current, ())
            if not neighbors:
                break
            previous = walk[-2]
            previous_neighbors = self._neighbor_sets.get(previous, set())
            weights = []
            for node, weight in neighbors:
                if node == previous:
                    weights.append(weight / self.p)
                elif node in previous_neighbors:
                    weights.append(weight)
                else:
                    weights.append(weight / self.q)
            current = self._choose(neighbors, weights)
            walk.append(current)
        return walk

    def walks(self, nodes, num_walks, length):
        all_walks = []
        starts = list(nodes)
        for _ in range(num_walks):
            self._rng.shuffle(starts)
            for start in starts:
                all_walks.append(self.walk(start, length))
        return all_walks

    def _choose(self, neighbors, weights):
        threshold = self._rng.random() * sum(weights)
        cumulative = 0.0
        for (node, _), weight in zip(neighbors, weights):
            cumulative += weight
            if cumulative >= threshold:
                return node
        return neighbors[-1][0]


class TestWalkerOracle:
    """Cumulative-table sampling is bit-identical to the linear scan."""

    @pytest.mark.parametrize("p,q", [(1.0, 1.0), (0.25, 4.0), (2.0, 0.5)])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_identical_walks_under_fixed_seed(self, p, q, seed):
        adjacency = build_adjacency(two_cliques())
        fast = RandomWalker(adjacency, p=p, q=q, seed=seed)
        oracle = _LinearScanWalker(adjacency, p=p, q=q, seed=seed)
        nodes = list(adjacency)
        assert fast.walks(nodes, 4, 12) == oracle.walks(nodes, 4, 12)

    def test_identical_on_weighted_mixed_id_graph(self):
        graph = PropertyGraph()
        for node in ("a", "b", 1, 2, 3):
            graph.add_node(node)
        graph.add_edge("a", "b", w=0.3)
        graph.add_edge("a", 1, w=2.5)
        graph.add_edge("b", 2, w=0.1)
        graph.add_edge(1, 2, w=1.0)
        graph.add_edge(2, 3, w=4.0)
        graph.add_edge(3, "a", w=0.7)
        adjacency = build_adjacency(graph)
        fast = RandomWalker(adjacency, p=0.5, q=2.0, seed=99)
        oracle = _LinearScanWalker(adjacency, p=0.5, q=2.0, seed=99)
        nodes = list(adjacency)
        assert fast.walks(nodes, 5, 10) == oracle.walks(nodes, 5, 10)


class TestSkipGram:
    def test_clique_members_more_similar_than_strangers(self):
        graph = two_cliques()
        walks = generate_walks(graph, num_walks=10, walk_length=20, seed=3)
        model = train_skipgram(walks, dimensions=16, epochs=3, seed=3)
        same = model.similarity(1, 2)
        cross = model.similarity(1, 7)
        assert same > cross

    def test_deterministic(self):
        graph = two_cliques()
        walks = generate_walks(graph, num_walks=4, walk_length=10, seed=0)
        m1 = train_skipgram(walks, dimensions=8, epochs=1, seed=5)
        m2 = train_skipgram(walks, dimensions=8, epochs=1, seed=5)
        assert np.allclose(m1.input_vectors, m2.input_vectors)

    def test_most_similar_excludes_self(self):
        graph = two_cliques()
        walks = generate_walks(graph, num_walks=5, walk_length=10, seed=0)
        model = train_skipgram(walks, dimensions=8, epochs=1, seed=0)
        best = model.most_similar(0, top=3)
        assert len(best) == 3
        assert all(node != 0 for node, _ in best)

    def test_empty_walks(self):
        model = train_skipgram([], dimensions=4)
        assert model.vocabulary == []

    def test_max_pairs_subsampling(self):
        graph = two_cliques()
        walks = generate_walks(graph, num_walks=4, walk_length=10, seed=0)
        model = train_skipgram(walks, dimensions=8, epochs=1, seed=0, max_pairs=100)
        assert len(model.vocabulary) == 10


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0.0, 0.1, (30, 2))
        blob_b = rng.normal(5.0, 0.1, (30, 2))
        points = np.vstack([blob_a, blob_b])
        labels, centroids = kmeans(points, 2, seed=0)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]

    def test_k_clamped_to_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels, centroids = kmeans(points, 10)
        assert len(centroids) <= 2

    def test_empty_input(self):
        labels, centroids = kmeans(np.empty((0, 3)), 4)
        assert len(labels) == 0

    def test_identical_points(self):
        points = np.ones((5, 2))
        labels, _ = kmeans(points, 3, seed=1)
        assert len(labels) == 5

    def test_inertia_nonincreasing_in_k(self):
        rng = np.random.default_rng(1)
        points = rng.normal(0, 1, (60, 3))
        inertias = []
        for k in (1, 2, 4, 8):
            labels, centroids = kmeans(points, k, seed=0)
            inertias.append(cluster_inertia(points, labels, centroids))
        assert all(b <= a * 1.05 for a, b in zip(inertias, inertias[1:]))


class TestEmbedAndCluster:
    def test_single_cluster_mode(self):
        graph = two_cliques()
        assignment = embed_and_cluster(graph, 1)
        assert set(assignment.values()) == {0}

    def test_cliques_separate(self):
        graph = two_cliques()
        config = Node2VecConfig(dimensions=16, walk_length=15, num_walks=10, epochs=3, seed=0)
        assignment = embed_and_cluster(graph, 2, config)
        left = {assignment[i] for i in range(5)}
        right = {assignment[i] for i in range(5, 10)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_node2vec_class_api(self):
        graph = two_cliques()
        embedder = Node2Vec(Node2VecConfig(dimensions=8, num_walks=2, epochs=1))
        model = embedder.fit(graph)
        matrix = embedder.embedding_matrix(list(graph.node_ids()))
        assert matrix.shape == (10, 8)
        assert model is embedder.model

    def test_embedding_before_fit_raises(self):
        embedder = Node2Vec()
        with pytest.raises(RuntimeError):
            embedder.embedding_matrix([1])
