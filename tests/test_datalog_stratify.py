"""Tests for dependency analysis and stratification."""

import pytest

from repro.datalog import StratificationError, parse_program, stratify


def strata_of(source: str):
    return stratify(parse_program(source))


class TestOrdering:
    def test_dependencies_come_first(self):
        strata = strata_of(
            """
            p(X) -> q(X).
            q(X) -> r(X).
            """
        )
        positions = {}
        for stratum in strata:
            for predicate in stratum.predicates:
                positions[predicate] = stratum.index
        assert positions["p"] < positions["q"] < positions["r"]

    def test_recursive_component_merged(self):
        strata = strata_of(
            """
            e(X, Y) -> t(X, Y).
            t(X, Z), e(Z, Y) -> t(X, Y).
            """
        )
        t_stratum = next(s for s in strata if "t" in s.predicates)
        assert t_stratum.recursive

    def test_mutual_recursion_one_stratum(self):
        strata = strata_of(
            """
            base(X) -> even(X).
            even(X), step(X, Y) -> odd(Y).
            odd(X), step(X, Y) -> even(Y).
            """
        )
        component = next(s for s in strata if "even" in s.predicates)
        assert "odd" in component.predicates

    def test_multihead_rules_keep_heads_together(self):
        # all heads of a rule must live in one stratum so no consumer can
        # be scheduled between them (regression test for the input-mapping bug)
        strata = strata_of(
            """
            src(X) -> a(X), b(X), c(X).
            b(X) -> consumer(X).
            """
        )
        positions = {}
        for stratum in strata:
            for predicate in stratum.predicates:
                positions[predicate] = stratum.index
        assert positions["a"] == positions["b"] == positions["c"]
        assert positions["consumer"] > positions["b"]

    def test_rules_assigned_exactly_once(self):
        program = parse_program(
            """
            p(X) -> q(X), r(X).
            q(X) -> s(X).
            r(X) -> s(X).
            """
        )
        strata = stratify(program)
        assigned = [rule for stratum in strata for rule in stratum.rules]
        assert len(assigned) == len(program.rules)


class TestNegation:
    def test_stratified_negation_accepted(self):
        strata = strata_of(
            """
            p(X) -> q(X).
            r(X), not q(X) -> s(X).
            """
        )
        positions = {}
        for stratum in strata:
            for predicate in stratum.predicates:
                positions[predicate] = stratum.index
        assert positions["q"] < positions["s"]

    def test_negation_in_cycle_rejected(self):
        with pytest.raises(StratificationError):
            strata_of(
                """
                p(X), not q(X) -> q(X).
                """
            )

    def test_negation_in_mutual_cycle_rejected(self):
        with pytest.raises(StratificationError):
            strata_of(
                """
                a(X), not b(X) -> c(X).
                c(X) -> b(X).
                b(X) -> a(X).
                """
            )

    def test_aggregates_allowed_in_recursion(self):
        # monotonic aggregation must not trigger stratification errors
        strata = strata_of(
            """
            seed(X) -> reach(X, X).
            reach(X, Z), edge(Z, Y, W), T = msum(W, <Z>), T > 0.5 -> reach(X, Y).
            """
        )
        assert any("reach" in s.predicates for s in strata)
