"""Tests for the polymorphic Candidate rules."""

import pytest

from repro.core import (
    CloseLinkCandidate,
    ControlCandidate,
    FamilyLinkCandidate,
    default_family_candidates,
)
from repro.graph import CompanyGraph, figure1_graph
from repro.linkage import BayesianLinkClassifier, partner_features


@pytest.fixture
def graph():
    return figure1_graph()


class TestControlCandidate:
    def test_accepts_only_targets_companies(self, graph):
        rule = ControlCandidate()
        p1, c, p2 = graph.node("P1"), graph.node("C"), graph.node("P2")
        assert rule.accepts(p1, c)
        assert rule.accepts(c, c)
        assert not rule.accepts(p1, p2)

    def test_decides_paper_pairs(self, graph):
        rule = ControlCandidate()
        assert rule.decide(graph, graph.node("P1"), graph.node("F")) is not None
        assert rule.decide(graph, graph.node("P1"), graph.node("L")) is None

    def test_cache_invalidated(self, graph):
        rule = ControlCandidate()
        assert rule.decide(graph, graph.node("P1"), graph.node("C")) is not None
        rule.invalidate()
        assert rule._cache == {}


class TestCloseLinkCandidate:
    def test_accepts_companies_only(self, graph):
        rule = CloseLinkCandidate()
        assert rule.accepts(graph.node("C"), graph.node("D"))
        assert not rule.accepts(graph.node("P1"), graph.node("C"))

    def test_common_owner_pair_found(self, graph):
        # P1 owns 80% of C and 75% of D -> C~D by common owner
        rule = CloseLinkCandidate()
        decision = rule.decide(graph, graph.node("C"), graph.node("D"))
        assert decision is not None
        assert decision["witness"] == "P1"

    def test_unrelated_pair_rejected(self, graph):
        rule = CloseLinkCandidate()
        assert rule.decide(graph, graph.node("C"), graph.node("G")) is None

    def test_invalidate_clears_cache(self, graph):
        rule = CloseLinkCandidate()
        rule.decide(graph, graph.node("C"), graph.node("D"))
        rule.invalidate()
        assert rule._pairs is None


class TestFamilyLinkCandidate:
    def test_accepts_persons_only(self, graph):
        rule = default_family_candidates()[0]
        assert rule.accepts(graph.node("P1"), graph.node("P2"))
        assert not rule.accepts(graph.node("P1"), graph.node("C"))

    def test_decision_includes_probability(self):
        graph = CompanyGraph()
        left = graph.add_person("a", address="x", birth_date="1960-01-01", sex="M")
        right = graph.add_person("b", address="x", birth_date="1962-01-01", sex="F")
        rule = FamilyLinkCandidate(
            BayesianLinkClassifier("partner_of", partner_features())
        )
        decision = rule.decide(graph, left, right)
        assert decision is not None
        assert 0.5 < decision["probability"] <= 1.0

    def test_threshold_respected(self):
        graph = CompanyGraph()
        left = graph.add_person("a", address="x", birth_date="1960-01-01", sex="M")
        right = graph.add_person("b", address="x", birth_date="1962-01-01", sex="F")
        rule = FamilyLinkCandidate(
            BayesianLinkClassifier("partner_of", partner_features()),
            threshold=0.9999,
        )
        assert rule.decide(graph, left, right) is None

    def test_default_candidates_cover_three_classes(self):
        classes = {rule.link_class for rule in default_family_candidates()}
        assert classes == {"partner_of", "sibling_of", "parent_of"}
