"""Tests for the fast-path ``#GraphEmbedClust`` stack: the deterministic
parallel walk kernel, warm-startable SGNS/k-means, and the incremental
re-embedder behind ``VadaLinkConfig(incremental=True)``."""

import numpy as np
import pytest

from repro.core.blocking import BlockingScheme
from repro.core.vadalink import VadaLink, VadaLinkConfig
from repro.embeddings import (
    IncrementalEmbedder,
    Node2Vec,
    Node2VecConfig,
    RandomWalker,
    build_adjacency,
    embed_and_cluster,
    kmeans,
    train_skipgram,
    update_skipgram,
)
from repro.embeddings.skipgram import SkipGramModel
from repro.graph import CompanyGraph, PropertyGraph


def ring_graph(n: int = 12, spokes: bool = True) -> PropertyGraph:
    """A ring with a few chords plus isolated nodes — mixed degrees."""
    graph = PropertyGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, w=1.0 + (i % 3))
    if spokes:
        for i in range(0, n, 4):
            graph.add_edge(i, (i + n // 2) % n, w=0.5)
    graph.add_node("isolated-a")
    graph.add_node("isolated-b")
    return graph


def small_company_graph(persons: int = 24) -> CompanyGraph:
    graph = CompanyGraph()
    surnames = ("Rossi", "Verdi", "Bianchi")
    for i in range(persons):
        graph.add_person(f"p{i}", surname=surnames[i % 3], address=f"street {i % 5}")
    for i in range(persons // 2):
        graph.add_company(f"c{i}")
        graph.add_shareholding(f"p{i}", f"c{i}", 0.6)
        graph.add_shareholding(f"p{(i + 1) % persons}", f"c{i}", 0.4)
    return graph


class TestParallelWalkKernel:
    @pytest.mark.parametrize("workers", [2, 3, 4, 7])
    def test_worker_count_never_changes_walks(self, workers):
        adjacency = build_adjacency(ring_graph())
        nodes = list(adjacency)
        oracle = RandomWalker(adjacency, seed=5).walks(nodes, 4, 10, workers=1)
        sharded = RandomWalker(adjacency, seed=5).walks(
            nodes, 4, 10, workers=workers
        )
        assert oracle == sharded

    def test_biased_kernel_worker_invariant(self):
        adjacency = build_adjacency(ring_graph())
        nodes = list(adjacency)
        oracle = RandomWalker(adjacency, p=0.5, q=2.0, seed=5).walks(
            nodes, 3, 8, workers=1
        )
        sharded = RandomWalker(adjacency, p=0.5, q=2.0, seed=5).walks(
            nodes, 3, 8, workers=4
        )
        assert oracle == sharded

    def test_walks_independent_of_other_starts(self):
        # each (node, walk index) owns its stream: a subset of starts
        # reproduces exactly its slice of the full run
        adjacency = build_adjacency(ring_graph())
        nodes = list(adjacency)
        full = RandomWalker(adjacency, seed=5).walks(nodes, 3, 10, workers=1)
        subset = nodes[4:7]
        partial = RandomWalker(adjacency, seed=5).walks(subset, 3, 10, workers=1)
        offset = 4 * 3
        assert partial == full[offset:offset + len(subset) * 3]

    def test_lockstep_matches_per_walk_reference(self):
        # the unbiased lockstep path must agree with the scalar
        # (node, index)-seeded kernel it vectorises
        adjacency = build_adjacency(ring_graph())
        nodes = list(adjacency)
        walker = RandomWalker(adjacency, seed=9)
        lockstep = walker.walks(nodes, 3, 12, workers=1)
        reference = [
            RandomWalker(adjacency, seed=9)._seeded_walk(node, index, 12)
            for node in nodes
            for index in range(3)
        ]
        assert lockstep == reference

    def test_isolated_and_unknown_starts_yield_singletons(self):
        adjacency = build_adjacency(ring_graph())
        walker = RandomWalker(adjacency, seed=1)
        walks = walker.walks(["isolated-a", "missing", 0], 2, 6, workers=2)
        assert walks[0] == ["isolated-a"]
        assert walks[2] == ["missing"]
        assert len(walks[4]) == 6

    def test_node_major_order(self):
        adjacency = build_adjacency(ring_graph(spokes=False))
        nodes = list(adjacency)
        walks = RandomWalker(adjacency, seed=2).walks(nodes, 3, 5, workers=1)
        assert len(walks) == len(nodes) * 3
        for position, node in enumerate(nodes):
            for index in range(3):
                assert walks[position * 3 + index][0] == node

    def test_workers_must_be_positive(self):
        adjacency = build_adjacency(ring_graph())
        with pytest.raises(ValueError):
            RandomWalker(adjacency, seed=1).walks([0], 1, 5, workers=0)

    def test_legacy_path_untouched_by_kernel(self):
        # workers=None must keep drawing from the shared shuffled RNG,
        # unaffected by the deterministic kernel living alongside it
        adjacency = build_adjacency(ring_graph())
        nodes = list(adjacency)
        first = RandomWalker(adjacency, seed=3).walks(nodes, 2, 8)
        second = RandomWalker(adjacency, seed=3).walks(nodes, 2, 8)
        assert first == second
        assert first != RandomWalker(adjacency, seed=4).walks(nodes, 2, 8)


class TestEmbedClusterParallel:
    def test_embed_and_cluster_bit_identical_across_workers(self):
        graph = small_company_graph()
        assignments = [
            embed_and_cluster(
                graph, 4,
                Node2VecConfig(
                    dimensions=12, walk_length=8, num_walks=3, epochs=1,
                    window=3, seed=0, workers=workers,
                ),
                feature_properties=("surname",),
            )
            for workers in (1, 2, 4)
        ]
        assert assignments[0] == assignments[1] == assignments[2]

    def test_embedding_matrix_stays_float32(self):
        graph = small_company_graph()
        node2vec = Node2Vec(
            Node2VecConfig(dimensions=8, walk_length=6, num_walks=2, epochs=1)
        )
        node2vec.fit(graph)
        matrix = node2vec.embedding_matrix(["p0", "never-seen-node"])
        assert matrix.dtype == np.float32
        assert np.any(matrix[0] != 0.0)
        assert np.all(matrix[1] == 0.0)


class TestWarmStarts:
    def test_kmeans_accepts_initial_centroids(self):
        rng = np.random.default_rng(0)
        points = np.vstack([
            rng.normal(0.0, 0.1, (20, 3)), rng.normal(5.0, 0.1, (20, 3)),
        ]).astype(np.float32)
        labels, centroids = kmeans(points, 2, seed=0)
        relabels, recentroids = kmeans(points, 2, seed=0, initial_centroids=centroids)
        assert np.array_equal(labels, relabels)
        assert np.allclose(centroids, recentroids)

    def test_kmeans_ignores_mismatched_centroids(self):
        points = np.random.default_rng(1).normal(size=(10, 3)).astype(np.float32)
        wrong = np.zeros((5, 2), dtype=np.float32)
        labels, _ = kmeans(points, 3, seed=0, initial_centroids=wrong)
        assert len(labels) == 10

    def test_skipgram_warm_start_copies_shared_rows(self):
        walks = [["a", "b", "c", "a"], ["b", "c", "a", "b"]] * 4
        first = train_skipgram(walks, dimensions=8, epochs=1, seed=0)
        second = SkipGramModel(["a", "b", "c", "d"], 8, seed=1)
        copied = second.warm_start_from(first)
        assert copied == 3
        assert np.array_equal(second.vector("a"), first.vector("a"))

    def test_update_skipgram_extends_vocabulary(self):
        walks = [["a", "b", "c", "a"], ["b", "c", "a", "b"]] * 4
        model = train_skipgram(walks, dimensions=8, epochs=1, seed=0)
        counts = {"a": 8, "b": 8, "c": 8, "d": 4}
        update_skipgram(
            model, [["c", "d", "c", "d"]] * 4, counts=counts,
            window=2, negative=2, epochs=1,
            learning_rate=0.025, seed=0,
        )
        assert "d" in model.index
        assert model.vector("d").dtype == np.float32


class TestIncrementalEmbedder:
    def test_cold_round_matches_full_recompute(self):
        graph = small_company_graph()
        config = Node2VecConfig(
            dimensions=12, walk_length=8, num_walks=3, epochs=1, window=3,
            seed=0, workers=1,
        )
        embedder = IncrementalEmbedder(4, config, feature_properties=("surname",))
        cold = embedder.embed(graph)
        full = embed_and_cluster(
            graph, 4, config, feature_properties=("surname",)
        )
        assert cold == full
        assert embedder.cold_rounds == 1 and embedder.warm_rounds == 0

    def test_warm_round_covers_every_node(self):
        graph = small_company_graph()
        config = Node2VecConfig(
            dimensions=12, walk_length=8, num_walks=3, epochs=1, window=3,
            seed=0, workers=1,
        )
        embedder = IncrementalEmbedder(4, config, feature_properties=("surname",))
        embedder.embed(graph)
        edge = graph.add_edge("p0", "p5", "same_family")
        warm = embedder.embed(graph, new_edges=[edge])
        assert set(warm) == set(graph.node_ids())
        assert embedder.warm_rounds == 1
        assert all(0 <= label < 4 for label in warm.values())

    def test_new_node_in_warm_round_gets_embedded(self):
        graph = small_company_graph()
        config = Node2VecConfig(
            dimensions=12, walk_length=8, num_walks=3, epochs=1, window=3,
            seed=0, workers=1,
        )
        embedder = IncrementalEmbedder(4, config)
        embedder.embed(graph)
        graph.add_person("p-new", surname="Nuovo")
        edge = graph.add_edge("p-new", "p0", "same_family")
        warm = embedder.embed(graph, new_edges=[edge])
        assert "p-new" in warm

    def test_reset_forces_cold_round(self):
        graph = small_company_graph()
        embedder = IncrementalEmbedder(
            3, Node2VecConfig(dimensions=8, walk_length=6, num_walks=2, epochs=1)
        )
        embedder.embed(graph)
        embedder.reset()
        edge = graph.add_edge("p0", "p1", "same_family")
        embedder.embed(graph, new_edges=[edge])
        assert embedder.cold_rounds == 2


class _SurnameRule:
    """Links persons sharing a surname — adds edges in round one, which
    makes round two re-embed (warm under ``incremental=True``)."""

    link_class = "same_family"
    blocking = None

    def accepts(self, left, right):
        return left.label == "P" and right.label == "P"

    def decide(self, graph, left, right):
        if left.properties.get("surname") == right.properties.get("surname"):
            return {"probability": 1.0}
        return None

    def invalidate(self):
        pass


class TestVadaLinkIncremental:
    def _graph(self):
        return small_company_graph(persons=12)

    def _config(self, incremental: bool) -> VadaLinkConfig:
        return VadaLinkConfig(
            first_level_clusters=3,
            node2vec=Node2VecConfig(
                dimensions=12, walk_length=8, num_walks=3, epochs=1, window=3,
                seed=0, workers=1,
            ),
            embedding_features=("surname",),
            max_rounds=2,
            incremental=incremental,
        )

    def test_fallback_matches_seed_first_level_clustering(self):
        # incremental=False must reproduce the seed behaviour: the
        # from-scratch embed_and_cluster assignment every round
        graph = self._graph()
        link = VadaLink([_SurnameRule()], self._config(incremental=False))
        clusters = link._first_level_clusters(graph)
        config = self._config(incremental=False)
        expected = embed_and_cluster(
            graph,
            config.first_level_clusters,
            config.node2vec,
            feature_properties=config.embedding_features,
        )
        for label, members in clusters.items():
            for node in members:
                assert expected[node.id] == label

    def test_incremental_and_fallback_agree_on_first_round(self):
        graph = self._graph()
        incremental = VadaLink([_SurnameRule()], self._config(incremental=True))
        fallback = VadaLink([_SurnameRule()], self._config(incremental=False))
        config = VadaLinkConfig()
        assert config.incremental is True  # the documented default
        result_inc = incremental.augment(graph)
        result_full = fallback.augment(graph)
        # both run the loop to completion and link the same universe of
        # nodes (round >= 2 embeddings may legitimately differ)
        assert result_inc.rounds >= 1 and result_full.rounds >= 1
        assert {e.label for e in result_inc.new_edges} == \
            {e.label for e in result_full.new_edges}


class _CountingRule:
    """Accepts every (P, P) pair and counts decide() calls per pair."""

    link_class = "same_family"
    blocking = None

    def __init__(self):
        self.decided: dict[tuple, int] = {}

    def accepts(self, left, right):
        return left.label == "P" and right.label == "P"

    def decide(self, graph, left, right):
        key = (left.id, right.id)
        self.decided[key] = self.decided.get(key, 0) + 1
        return None  # never link: every pair stays eligible all round

    def invalidate(self):
        pass


class TestBlockDedup:
    def test_overlapping_blocks_decide_each_pair_once(self):
        # multi-pass blocking puts a pair in several blocks; the round
        # must still evaluate it at most once per rule
        graph = CompanyGraph()
        for i in range(6):
            graph.add_person(f"p{i}", surname="Rossi", address="same street")
        rule = _CountingRule()
        scheme = BlockingScheme({
            "P": lambda node: [
                ("surname", node.properties.get("surname")),
                ("address", node.properties.get("address")),
            ]
        })
        link = VadaLink(
            [rule],
            VadaLinkConfig(
                use_embeddings=False, blocking=scheme, max_rounds=1,
            ),
        )
        result = link.augment(graph)
        assert rule.decided  # pairs were evaluated
        assert max(rule.decided.values()) == 1
        # every ordered pair exactly once: n * (n - 1) comparisons
        assert result.comparisons == 6 * 5
