"""Bit-identity oracles for the vectorized (batch columnar) backend.

The vectorized executor must be invisible except for speed: on every
program it either produces the *same insertion sequence* of facts and
the same firing counts as the per-tuple compiled path, or it falls back
to that path (per rule at lowering time, per engine key at runtime).
These tests pin all three backends against each other:

* ``Engine(...)``                 — vectorized (the default with numpy),
* ``Engine(..., vectorize=False)``— planned + compiled, the oracle,
* ``Engine(..., plan=False)``     — textual-order interpretation.
"""

import math

import pytest
from hypothesis import given, settings

from repro.bench.workloads import density_scenario, ownership_pyramid
from repro.core import (
    KnowledgeGraph,
    close_link_program,
    family_control_program,
    input_mapping,
)
from repro.datalog import Database, Engine, parse_program
from repro.datalog.columns import NUMPY_AVAILABLE
from repro.graph.relational import to_facts
from tests.test_datalog_properties import recursive_aggregate_programs

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="vectorized backend requires numpy"
)


def _fixpoint(program, facts, **kwargs):
    if isinstance(program, str):
        program = parse_program(program)
    engine = Engine(program, Database(list(facts)), **kwargs)
    engine.run()
    return engine


def _assert_three_way_identity(program_text, facts):
    """Vectorized == compiled bit-for-bit; both == interpreted as sets."""
    # parse once: existential nulls are skolemized per rule *instance*,
    # so cross-engine identity needs the same Rule objects
    program = parse_program(program_text)
    vec = _fixpoint(program, facts)
    cmp = _fixpoint(program, facts, vectorize=False)
    interp = _fixpoint(program, facts, plan=False)
    assert list(vec.database.all_facts()) == list(cmp.database.all_facts())
    assert vec.stats.rule_firings == cmp.stats.rule_firings
    assert vec.stats.facts_derived == cmp.stats.facts_derived
    assert set(vec.database.all_facts()) == set(interp.database.all_facts())
    return vec, cmp


def _paper_engine(graph, body, families, **kwargs):
    kg = KnowledgeGraph(graph)
    kg.add_rules("map", input_mapping(families))
    kg.add_rules("task", body)
    engine = Engine(kg.program(), to_facts(graph), **kwargs)
    engine.run()
    return engine


class TestBackendSelection:
    def test_vectorize_on_by_default_when_planned(self):
        engine = _fixpoint("edge(X, Y) -> path(X, Y).", [("edge", (1, 2))])
        assert engine.vectorize_enabled
        assert engine._vector_cache  # the rule was lowered

    def test_vectorize_false_keeps_compiled_path(self):
        engine = _fixpoint(
            "edge(X, Y) -> path(X, Y).", [("edge", (1, 2))], vectorize=False
        )
        assert not engine.vectorize_enabled
        assert engine._vector_cache == {}
        assert engine.query("path") == [(1, 2)]

    def test_unplanned_engine_never_vectorizes(self):
        engine = _fixpoint(
            "edge(X, Y) -> path(X, Y).", [("edge", (1, 2))], plan=False
        )
        assert not engine.vectorize_enabled


class TestPaperWorkloadParity:
    """The two hottest declarative workloads, exactly as the bench runs them."""

    def test_close_links_pyramid(self):
        graph = ownership_pyramid(16, m=3, seed=7)
        body = close_link_program(0.2)
        vec = _paper_engine(graph, body, families=False)
        cmp = _paper_engine(graph, body, families=False, vectorize=False)
        assert list(vec.database.all_facts()) == list(cmp.database.all_facts())
        assert vec.stats.rule_firings == cmp.stats.rule_firings
        # the close-link join rules must actually run vectorized
        assert vec._vector_fallbacks == {}
        assert vec._vector_disabled == set()

    def test_family_control_superdense(self):
        graph, _truth = density_scenario("superdense", 60, seed=7)
        body = family_control_program(0.5)
        vec = _paper_engine(graph, body, families=True)
        cmp = _paper_engine(graph, body, families=True, vectorize=False)
        assert list(vec.database.all_facts()) == list(cmp.database.all_facts())
        assert vec.stats.rule_firings == cmp.stats.rule_firings
        assert vec._vector_fallbacks == {}
        assert vec._vector_disabled == set()


class TestAggregateParity:
    """Aggregate rules vectorize their join prefix, then cut to a compiled
    tail sharing the engine's accumulator state — firing counts and
    monotone convergence must match the all-compiled run exactly."""

    FACTS = [
        ("contribution", (g, z, w / 8.0))
        for g in range(3)
        for z in range(4)
        for w in (1, 3, 5)
    ]

    @pytest.mark.parametrize("aggregate", ["msum", "mcount", "mmax", "mmin", "mprod"])
    def test_grouped_aggregate(self, aggregate):
        spec = "W" if aggregate == "mcount" else "W, <Z>"
        if aggregate == "mcount":
            spec = "<Z>"
        program = f"contribution(G, Z, W), T = {aggregate}({spec}) -> total(G, T)."
        _assert_three_way_identity(program, self.FACTS)

    def test_recursive_msum_with_join(self):
        # the paper's company-control shape: aggregate over a recursive join
        program = """
        own(X, Y, W) -> share(X, Y, W).
        ctrl(X, Z), own(Z, Y, W) -> share_via(X, Y, Z, W).
        share(X, Y, W), T = msum(W, <Y>), T > 0.5 -> ctrl(X, Y).
        share_via(X, Y, Z, W), T = msum(W, <Z>), T > 0.5 -> ctrl(X, Y).
        """
        facts = [
            ("own", (f"c{i}", f"c{j}", 0.3))
            for i in range(5)
            for j in range(i + 1, min(i + 4, 6))
        ]
        vec, _ = _assert_three_way_identity(program, facts)
        # the msum rules are supported via the cut/tail path, not rejected
        assert vec._vector_fallbacks == {}

    def test_stratified_negation(self):
        program = """
        edge(X, Y) -> path(X, Y).
        path(X, Z), edge(Z, Y) -> path(X, Y).
        edge(X, Y), not path(Y, X) -> oneway(X, Y).
        node(X), not path(X, X) -> acyclic(X).
        """
        facts = [("edge", (1, 2)), ("edge", (2, 3)), ("edge", (3, 1)),
                 ("edge", (4, 5))] + [("node", (n,)) for n in range(1, 6)]
        vec, _ = _assert_three_way_identity(program, facts)
        assert vec._vector_fallbacks == {}


class TestComparisonsAndAssignments:
    def test_mixed_numeric_comparisons(self):
        program = """
        own(X, Y, W), W >= 0.5 -> major(X, Y).
        own(X, Y, W), W < 0.5, W != 0.1 -> minor(X, Y).
        own(X, Y, W), own(Y, Z, V), W > V -> decreasing(X, Z).
        """
        facts = [("own", ("a", "b", 0.7)), ("own", ("b", "c", 0.5)),
                 ("own", ("c", "d", 0.1)), ("own", ("a", "d", 1))]
        _assert_three_way_identity(program, facts)

    def test_arithmetic_assignment(self):
        program = "own(X, Y, W), V = W * 2.0 - 0.1 -> scaled(X, Y, V)."
        facts = [("own", ("a", "b", 0.25)), ("own", ("b", "c", 0.5))]
        _assert_three_way_identity(program, facts)

    def test_repeated_variables_and_constants(self):
        program = """
        edge(X, X) -> loop(X).
        edge(X, Y), edge(Y, "hub") -> spoke(X).
        """
        facts = [("edge", (1, 1)), ("edge", (1, "hub")), ("edge", (2, 1)),
                 ("edge", ("hub", "hub"))]
        _assert_three_way_identity(program, facts)


class TestLoweringFallbacks:
    """Rules the lowering cannot express fall back per (rule, seed) with a
    recorded reason — never a wrong answer."""

    def test_complex_seed_occurrence_falls_back(self):
        # recursion through ``tagged`` makes the semi-naive rounds seed
        # the complex-term atom directly — those (rule, seed) keys cannot
        # be lowered and must fall back with a recorded reason
        program = """
        mark(X) -> tagged(X, #tag(X)).
        tagged(X, Y) -> tagged(Y, X).
        mark(X), tagged(X, #tag(X)) -> hit(X), tagged(X, X).
        """
        facts = [("mark", ("a",)), ("mark", ("b",))]
        vec, _ = _assert_three_way_identity(program, facts)
        assert vec._vector_fallbacks
        assert any(
            "complex" in reason or "join" in reason
            for reason in vec._vector_fallbacks.values()
        )

    def test_modulo_expression_runs_in_the_per_row_tail(self):
        # '%' is unreachable from the surface syntax (it opens a comment)
        # but programmatic rules can build the Expr; the lowering cuts to
        # the compiled per-row tail right before the assignment
        from repro.datalog.atoms import Assignment, Atom
        from repro.datalog.rules import Program, Rule
        from repro.datalog.terms import Constant, Expr, Variable

        rule = Rule(
            body=(
                Atom("num", (Variable("X"),)),
                Assignment(Variable("Y"), Expr("%", (Variable("X"), Constant(3)))),
            ),
            head=(Atom("residue", (Variable("X"), Variable("Y"))),),
        )
        facts = [("num", (n,)) for n in range(7)]
        vec = Engine(Program(rules=[rule]), Database(list(facts)))
        vec.run()
        cmp = Engine(Program(rules=[rule]), Database(list(facts)), vectorize=False)
        cmp.run()
        assert list(vec.database.all_facts()) == list(cmp.database.all_facts())
        assert sorted(vec.query("residue")) == [(n, n % 3) for n in range(7)]

    def test_skolem_head_still_exact(self):
        # Skolem heads cannot be emitted vectorized; the rule runs its
        # (empty) join prefix vectorized and the head through the
        # compiled tail, reproducing deterministic skolemization
        program = """
        mark(X) -> owner(X, #inv(X)).
        owner(X, Y), mark(X) -> pair(X, Y).
        """
        facts = [("mark", (1,)), ("mark", (2,))]
        _assert_three_way_identity(program, facts)

    def test_existential_head_still_exact(self):
        program = "company(X) -> controller(Z, X)."
        facts = [("company", ("a",)), ("company", ("b",))]
        _assert_three_way_identity(program, facts)


class TestRuntimeFallbacks:
    """Value-dependent hazards surface mid-execution: the rule key is
    disabled permanently and the compiled oracle takes over, on the
    unchanged database state."""

    def test_unsafe_integers_disable_ordering_rule(self):
        big = 2**53 + 1  # not exactly representable in float64
        program = "val(X), X > 1 -> huge(X)."
        facts = [("val", (big,)), ("val", (2,)), ("val", (0,))]
        vec, _ = _assert_three_way_identity(program, facts)
        assert vec._vector_disabled
        assert any(
            "unsafe" in r or "float" in r for r in vec._vector_fallbacks.values()
        )

    def test_nan_head_value_disables_rule(self):
        program = "val(X), Y = X * 1.0 -> img(Y)."
        nan = float("nan")
        engine = _fixpoint(program, [("val", (nan,)), ("val", (2.0,))])
        assert engine._vector_disabled
        derived = engine.query("img")
        assert sorted(v for (v,) in derived if not math.isnan(v)) == [2.0]
        assert sum(1 for (v,) in derived if math.isnan(v)) == 1

    def test_results_identical_after_runtime_fallback(self):
        big = 2**60
        program = """
        val(X), X > 1 -> huge(X).
        huge(X), val(Y), X != Y -> pair(X, Y).
        """
        facts = [("val", (big,)), ("val", (5,)), ("val", (1,))]
        vec, cmp = _assert_three_way_identity(program, facts)
        assert vec._vector_disabled  # first rule fell back at runtime
        assert set(vec.query("pair")) == set(cmp.query("pair"))


class TestExplainBackendAttribute:
    """EXPLAIN spans name the backend per (rule, seed occurrence)."""

    def _plan_spans(self, engine_tracer):
        spans = []
        for span in engine_tracer.root.walk():
            if span.name.startswith("plan:"):
                spans.append(span)
        return spans

    def test_vectorized_rules_are_labelled(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        engine = Engine(
            parse_program("edge(X, Y), edge(Y, Z) -> hop(X, Z)."),
            Database([("edge", (1, 2)), ("edge", (2, 3))]),
            tracer=tracer,
        )
        engine.run()
        backends = {s.attributes.get("backend") for s in self._plan_spans(tracer)}
        assert backends == {"vectorized"}

    def test_fallback_rules_carry_reason(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        engine = Engine(
            parse_program(
                """
                mark(X) -> tagged(X, #tag(X)).
                tagged(X, Y) -> tagged(Y, X).
                mark(X), tagged(X, #tag(X)) -> hit(X), tagged(X, X).
                """
            ),
            Database([("mark", ("a",))]),
            tracer=tracer,
        )
        engine.run()
        spans = self._plan_spans(tracer)
        compiled_spans = [
            s for s in spans if s.attributes.get("backend") == "compiled"
        ]
        assert compiled_spans  # the complex-seed occurrences fell back
        assert any(s.attributes.get("vector_fallback") for s in compiled_spans)

    def test_no_vectorize_engine_reports_compiled(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        engine = Engine(
            parse_program("edge(X, Y) -> path(X, Y)."),
            Database([("edge", (1, 2))]),
            tracer=tracer,
            vectorize=False,
        )
        engine.run()
        backends = {s.attributes.get("backend") for s in self._plan_spans(tracer)}
        assert backends == {"compiled"}


class TestHypothesisOracle:
    """Random recursive/aggregate/negation/Skolem programs: the vectorized
    fixpoint is the compiled fixpoint, insertion order and firings
    included; both match the interpreted fixpoint as a set."""

    @given(recursive_aggregate_programs())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_equals_compiled_equals_interpreted(self, case):
        program_text, facts = case
        _assert_three_way_identity(program_text, facts)

    @given(recursive_aggregate_programs())
    @settings(max_examples=25, deadline=None)
    def test_fallbacks_never_change_results(self, case):
        # whatever subset of rules fell back, the union of backends still
        # reproduces the oracle database exactly
        program_text, facts = case
        vec = _fixpoint(program_text, facts)
        cmp = _fixpoint(program_text, facts, vectorize=False)
        assert list(vec.database.all_facts()) == list(cmp.database.all_facts())
