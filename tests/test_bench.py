"""Tests for the experiment harness and the recall protocol."""

import pytest

from repro.bench import (
    Experiment,
    check_shape,
    dense_synthetic,
    density_scenario,
    naive_comparison_count,
    naive_family_detection,
    no_cluster_ground_truth,
    ownership_pyramid,
    realworld_like,
    recall_at_clusters,
    recall_curve,
    timed,
    timed_repeat,
)
from repro.core import FamilyLinkCandidate, VadaLinkConfig
from repro.datagen import CompanySpec, generate_company_graph
from repro.linkage import default_classifiers, persons_of, train_classifiers


class TestHarness:
    def test_experiment_records_and_renders(self):
        experiment = Experiment("Fig X", "n")
        experiment.record(10, seconds=0.5, recall=0.99)
        experiment.record(20, seconds=1.25)
        table = experiment.render()
        assert "Fig X" in table
        assert "seconds" in table and "recall" in table
        assert "0.9900" in table

    def test_empty_experiment_renders(self):
        assert "no measurements" in Experiment("empty", "x").render()

    def test_series_extraction(self):
        experiment = Experiment("e", "x")
        experiment.record(1, t=2.0)
        experiment.record(2, t=4.0)
        assert experiment.series("t") == [(1, 2.0), (2, 4.0)]

    def test_timed(self):
        result, elapsed = timed(lambda: 42)
        assert result == 42 and elapsed >= 0

    def test_timed_repeat(self):
        result, mean, spread = timed_repeat(lambda: "ok", repeats=3)
        assert result == "ok" and mean >= 0 and spread >= 0

    def test_check_shape(self):
        rising = [(1, 1.0), (2, 2.0), (3, 3.0)]
        falling = [(1, 3.0), (2, 2.0), (3, 1.0)]
        assert check_shape(rising, "increasing")
        assert not check_shape(rising, "decreasing")
        assert check_shape(falling, "non-increasing")
        assert check_shape([(1, 1.0), (2, 0.99)], "increasing", tolerance=0.05)


class TestWorkloads:
    def test_realworld_like_sparse(self):
        graph, truth = realworld_like(100, seed=1)
        assert sum(1 for _ in graph.persons()) == 100
        assert truth.links

    def test_dense_has_more_edges_than_sparse(self):
        sparse, _ = realworld_like(150, seed=2)
        dense, _ = dense_synthetic(150, seed=2)
        assert dense.edge_count > sparse.edge_count

    def test_density_scenarios_ordered(self):
        counts = [
            density_scenario(d, 150, seed=3)[0].edge_count
            for d in ("sparse", "normal", "dense", "superdense")
        ]
        assert counts == sorted(counts)

    def test_ownership_pyramid(self):
        graph = ownership_pyramid(80, m=2, seed=0)
        assert graph.node_count == 80


class TestNaiveBaseline:
    def test_comparison_count_formula(self):
        assert naive_comparison_count(10, link_classes=3) == 270

    def test_naive_detection_counts_all_pairs(self):
        graph, truth = generate_company_graph(
            CompanySpec(persons=20, companies=5, seed=5, feature_noise=0.0)
        )
        classifiers = default_classifiers()
        links, comparisons = naive_family_detection(graph, classifiers)
        assert comparisons == naive_comparison_count(20, len(classifiers))

    def test_naive_finds_planted_links(self):
        graph, truth = generate_company_graph(
            CompanySpec(persons=40, companies=5, seed=6, feature_noise=0.0)
        )
        classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
        links, _ = naive_family_detection(graph, classifiers)
        recall = len(links & truth.links) / len(truth.links)
        assert recall > 0.5


class TestRecallProtocol:
    @pytest.fixture(scope="class")
    def setup(self):
        graph, truth = generate_company_graph(
            CompanySpec(persons=80, companies=30, seed=9, feature_noise=0.0)
        )
        classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
        rules = [FamilyLinkCandidate(c) for c in classifiers]
        config = VadaLinkConfig(first_level_clusters=1, use_embeddings=False, max_rounds=1)
        return graph, rules, config

    def test_ground_truth_nonempty(self, setup):
        graph, rules, config = setup
        truth = no_cluster_ground_truth(graph, rules, config)
        assert truth

    def test_single_cluster_recall_is_one(self, setup):
        graph, rules, config = setup
        truth = no_cluster_ground_truth(graph, rules, config)
        point = recall_at_clusters(graph, rules, truth, clusters=1, config=config)
        assert point.recall == pytest.approx(1.0)

    def test_many_clusters_lose_recall(self, setup):
        graph, rules, config = setup
        truth = no_cluster_ground_truth(graph, rules, config)
        extreme = recall_at_clusters(graph, rules, truth, clusters=500, config=config)
        single = recall_at_clusters(graph, rules, truth, clusters=1, config=config)
        assert extreme.recall <= single.recall

    def test_recall_curve_shape(self, setup):
        graph, rules, config = setup
        points = recall_curve(graph, rules, (1, 50), config=config, repeats=1)
        assert len(points) == 2
        assert points[0].recall >= points[1].recall


class TestAsciiPlot:
    def test_plot_renders_points(self):
        experiment = Experiment("fig", "x")
        for x, y in [(1, 1.0), (10, 0.5), (100, 0.1)]:
            experiment.record(x, recall=y)
        plot = experiment.ascii_plot("recall", width=30, height=6, logx=True)
        assert plot.count("*") == 3
        assert "fig — recall (log x)" in plot

    def test_plot_requires_two_points(self):
        experiment = Experiment("fig", "x")
        experiment.record(1, t=1.0)
        assert "not enough" in experiment.ascii_plot("t")

    def test_flat_series_does_not_crash(self):
        experiment = Experiment("fig", "x")
        experiment.record(1, t=2.0)
        experiment.record(2, t=2.0)
        assert "*" in experiment.ascii_plot("t")
