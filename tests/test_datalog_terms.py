"""Tests for terms: labelled nulls and Skolem functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog import Constant, Expr, Null, SkolemTerm, Variable, is_null, skolem
from repro.datalog.terms import variables_of


class TestNull:
    def test_equality_by_label(self):
        assert Null("a") == Null("a")
        assert Null("a") != Null("b")

    def test_hashable_and_usable_in_sets(self):
        assert len({Null("a"), Null("a"), Null("b")}) == 2

    def test_not_equal_to_plain_string(self):
        assert Null("a") != "a"

    def test_is_null(self):
        assert is_null(Null("x"))
        assert not is_null("x")
        assert not is_null(None)

    def test_repr_and_str(self):
        assert "a" in repr(Null("a"))
        assert "a" in str(Null("a"))


class TestSkolem:
    def test_deterministic(self):
        assert skolem("f", ("a", 1)) == skolem("f", ("a", 1))

    def test_injective_on_arguments(self):
        assert skolem("f", ("a",)) != skolem("f", ("b",))
        assert skolem("f", ("a", "b")) != skolem("f", ("ab",))

    def test_disjoint_ranges_across_functions(self):
        # a company and a person with the same name get different OIDs
        assert skolem("sk_c", ("ACME",)) != skolem("sk_p", ("ACME",))

    def test_type_sensitive(self):
        assert skolem("f", (1,)) != skolem("f", ("1",))
        assert skolem("f", (True,)) != skolem("f", (1,))

    def test_nested_tuples(self):
        assert skolem("f", (("a", "b"),)) != skolem("f", ("a", "b"))

    def test_null_arguments(self):
        assert skolem("f", (Null("x"),)) == skolem("f", (Null("x"),))
        assert skolem("f", (Null("x"),)) != skolem("f", (Null("y"),))

    @given(
        st.lists(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)), max_size=4),
        st.lists(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)), max_size=4),
    )
    def test_property_injectivity(self, left, right):
        if tuple(left) != tuple(right):
            assert skolem("f", tuple(left)) != skolem("f", tuple(right))
        else:
            assert skolem("f", tuple(left)) == skolem("f", tuple(right))


class TestVariablesOf:
    def test_variable(self):
        assert list(variables_of(Variable("X"))) == [Variable("X")]

    def test_constant_has_none(self):
        assert list(variables_of(Constant(3))) == []

    def test_nested_expression(self):
        expr = Expr("+", (Variable("X"), Expr("*", (Variable("Y"), Constant(2)))))
        assert {v.name for v in variables_of(expr)} == {"X", "Y"}

    def test_skolem_term(self):
        term = SkolemTerm("sk", (Variable("A"), Constant("b")))
        assert [v.name for v in variables_of(term)] == ["A"]
