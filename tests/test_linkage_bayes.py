"""Tests for the Bayesian link classifier and Graham combination."""

import pytest

from repro.linkage import (
    BayesianLinkClassifier,
    FeatureSpec,
    equality_distance,
    graham_combination,
    parent_direction,
    partner_features,
)
from repro.linkage.bayes import FeatureEstimate


class TestGrahamCombination:
    def test_empty(self):
        assert graham_combination([]) == 0.0

    def test_single_passthrough(self):
        assert graham_combination([0.8]) == pytest.approx(0.8, abs=1e-3)

    def test_agreement_amplifies(self):
        assert graham_combination([0.8, 0.8]) > 0.8
        assert graham_combination([0.2, 0.2]) < 0.2

    def test_neutral_stays_half(self):
        assert graham_combination([0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_extremes_clamped(self):
        # one certain feature must not produce exactly 0 or 1
        assert 0.0 < graham_combination([0.0, 0.9]) < 1.0
        assert 0.0 < graham_combination([1.0, 0.1]) < 1.0

    def test_symmetric_disagreement_cancels(self):
        assert graham_combination([0.9, 0.1]) == pytest.approx(0.5, abs=1e-6)


class TestFeatureEstimate:
    def test_match_raises_posterior(self):
        estimate = FeatureEstimate(m=0.9, u=0.1)
        assert estimate.posterior(True, prior=0.3) > 0.3

    def test_non_match_lowers_posterior(self):
        estimate = FeatureEstimate(m=0.9, u=0.1)
        assert estimate.posterior(False, prior=0.3) < 0.3

    def test_inverted_feature(self):
        # m < u: matching is evidence AGAINST (partners' equal sex)
        estimate = FeatureEstimate(m=0.05, u=0.5)
        assert estimate.posterior(True, prior=0.3) < 0.3
        assert estimate.posterior(False, prior=0.3) > 0.3

    def test_uninformative_feature(self):
        estimate = FeatureEstimate(m=0.5, u=0.5)
        assert estimate.posterior(True, prior=0.3) == pytest.approx(0.3)


SPECS = (
    FeatureSpec("a", equality_distance, 0.5),
    FeatureSpec("b", equality_distance, 0.5),
)


class TestClassifier:
    def test_matching_pair_scores_high(self):
        classifier = BayesianLinkClassifier("link", SPECS)
        left = {"a": 1, "b": 2}
        assert classifier.probability(left, dict(left)) > 0.5
        assert classifier.predict(left, dict(left))

    def test_mismatching_pair_scores_low(self):
        classifier = BayesianLinkClassifier("link", SPECS)
        assert classifier.probability({"a": 1, "b": 2}, {"a": 9, "b": 8}) < 0.5

    def test_missing_feature_contributes_nothing(self):
        classifier = BayesianLinkClassifier("link", SPECS)
        with_missing = classifier.probability({"a": 1}, {"a": 1})
        both = classifier.probability({"a": 1, "b": 2}, {"a": 1, "b": 2})
        assert 0.5 < with_missing < both

    def test_all_missing_gives_zero(self):
        classifier = BayesianLinkClassifier("link", SPECS)
        assert classifier.probability({}, {}) == 0.0

    def test_fit_recovers_planted_probabilities(self):
        classifier = BayesianLinkClassifier("link", SPECS)
        # feature "a" always matches on links, never otherwise; "b" is noise
        pairs, labels = [], []
        for i in range(50):
            pairs.append(({"a": 1, "b": i}, {"a": 1, "b": i}))
            labels.append(True)
            pairs.append(({"a": 1, "b": 1}, {"a": 2, "b": 1}))
            labels.append(False)
        classifier.fit(pairs, labels)
        assert classifier.estimates["a"].m > 0.9
        assert classifier.estimates["a"].u < 0.1
        assert classifier.prior == pytest.approx(0.5, abs=0.05)

    def test_fit_with_explicit_prior(self):
        classifier = BayesianLinkClassifier("link", SPECS)
        classifier.fit([(({"a": 1}), ({"a": 1}))], [True], prior=0.01)
        assert classifier.prior == 0.01

    def test_direction_constraint(self):
        classifier = BayesianLinkClassifier(
            "parent_of", SPECS, direction=parent_direction
        )
        parent = {"a": 1, "b": 2, "birth_date": "1950-01-01"}
        child = {"a": 1, "b": 2, "birth_date": "1985-01-01"}
        assert classifier.probability(parent, child) > 0.5
        assert classifier.probability(child, parent) == 0.0

    def test_direction_missing_birth_dates(self):
        classifier = BayesianLinkClassifier(
            "parent_of", SPECS, direction=parent_direction
        )
        assert classifier.probability({"a": 1}, {"a": 1}) == 0.0


class TestPartnerDefaults:
    def test_opposite_sex_cohabitants_detected(self):
        classifier = BayesianLinkClassifier("partner_of", partner_features())
        husband = {"address": "x", "birth_date": "1960-01-01", "sex": "M"}
        wife = {"address": "x", "birth_date": "1963-05-05", "sex": "F"}
        assert classifier.predict(husband, wife)

    def test_strangers_rejected(self):
        classifier = BayesianLinkClassifier("partner_of", partner_features())
        one = {"address": "x", "birth_date": "1960-01-01", "sex": "M"}
        other = {"address": "y", "birth_date": "1990-05-05", "sex": "F"}
        assert not classifier.predict(one, other)
