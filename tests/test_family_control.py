"""Tests for family control and family close links (Definitions 2.8/2.9)."""

import pytest

from repro.graph import FAMILY, CompanyGraph, figure1_graph
from repro.ownership import (
    all_family_close_links,
    all_family_control,
    families_from_graph,
    family_close_links,
    family_controlled,
)


def family_business_graph() -> CompanyGraph:
    """Two spouses each hold 30% of the family firm; the firm controls a sub."""
    graph = CompanyGraph()
    graph.add_person("mom")
    graph.add_person("dad")
    graph.add_person("stranger")
    graph.add_company("firm")
    graph.add_company("sub")
    graph.add_shareholding("mom", "firm", 0.3)
    graph.add_shareholding("dad", "firm", 0.3)
    graph.add_shareholding("stranger", "firm", 0.4)
    graph.add_shareholding("firm", "sub", 0.6)
    return graph


class TestFamilyControl:
    def test_members_pool_to_control(self):
        graph = family_business_graph()
        assert family_controlled(graph, ["mom", "dad"]) == {"firm", "sub"}

    def test_single_member_insufficient(self):
        graph = family_business_graph()
        assert family_controlled(graph, ["mom"]) == set()

    def test_figure1_family_controls_l(self):
        """The paper's headline example: P1+P2 as a family control L (60%)."""
        graph = figure1_graph()
        controlled = family_controlled(graph, ["P1", "P2"])
        assert "L" in controlled
        # and everything each controls individually
        assert {"C", "D", "E", "F", "G", "H", "I"} <= controlled


class TestFamilyCloseLinks:
    def test_distinct_members_induce_link(self):
        graph = CompanyGraph()
        graph.add_person("i")
        graph.add_person("j")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("i", "x", 0.3)
        graph.add_shareholding("j", "y", 0.3)
        links = family_close_links(graph, ["i", "j"])
        assert ("x", "y") in links and ("y", "x") in links

    def test_same_member_does_not_count_twice(self):
        graph = CompanyGraph()
        graph.add_person("i")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("i", "x", 0.3)
        graph.add_shareholding("i", "y", 0.3)
        # Definition 2.9 needs two DISTINCT members i != j
        assert family_close_links(graph, ["i"]) == set()

    def test_threshold_respected(self):
        graph = CompanyGraph()
        graph.add_person("i")
        graph.add_person("j")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("i", "x", 0.1)
        graph.add_shareholding("j", "y", 0.3)
        assert family_close_links(graph, ["i", "j"]) == set()
        assert family_close_links(graph, ["i", "j"], threshold=0.05) != set()

    def test_paper_d_g_example(self):
        """Figure 1 narrative: P1-P2 personal tie puts D and G in close link."""
        graph = figure1_graph()
        links = family_close_links(graph, ["P1", "P2"])
        assert ("D", "G") in links and ("G", "D") in links


class TestDeclaredFamilies:
    def test_families_from_graph(self):
        graph = family_business_graph()
        graph.add_node("fam", "F")
        graph.add_edge("mom", "fam", FAMILY)
        graph.add_edge("dad", "fam", FAMILY)
        assert families_from_graph(graph) == {"fam": {"mom", "dad"}}

    def test_all_family_control(self):
        graph = family_business_graph()
        graph.add_node("fam", "F")
        graph.add_edge("mom", "fam", FAMILY)
        graph.add_edge("dad", "fam", FAMILY)
        pairs = all_family_control(graph)
        assert ("fam", "firm") in pairs and ("fam", "sub") in pairs

    def test_all_family_close_links(self):
        graph = CompanyGraph()
        graph.add_person("i")
        graph.add_person("j")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("i", "x", 0.3)
        graph.add_shareholding("j", "y", 0.3)
        graph.add_node("fam", "F")
        graph.add_edge("i", "fam", FAMILY)
        graph.add_edge("j", "fam", FAMILY)
        assert ("x", "y") in all_family_close_links(graph)
