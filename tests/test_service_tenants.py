"""Tenant isolation: the multi-tenant registry vs independent services.

The acceptance-critical contract: two tenants served from one process
(one cache, one micro-batcher, one single-flight table) answer **byte
for byte** what two independent single-tenant services answer — with
deliberately colliding graph shapes (same node-id keyspace, same
snapshot versions, different edges), so any cross-tenant bleed in the
cache keyspace or batch grouping shows up as a wrong payload, not a
subtle perf artifact.  Also covered: the ``/t/{tenant}`` admin
lifecycle, unknown-tenant 404s on every route, un-prefixed alias
routing, and a property test over the tenant-keyed cache.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.graph.company_graph import CompanyGraph
from repro.service import (
    DEFAULT_TENANT,
    GraphRegistry,
    LRUCache,
    ServiceConfig,
    SingleFlight,
    SnapshotManager,
    TenantError,
    UnknownTenantError,
    build_service,
    validate_tenant,
)
from repro.service.snapshot import snapshot_key


def small_graph(seed: int) -> CompanyGraph:
    """Same id keyspace (P*/C*) for every seed; different edges."""
    g, _truth = generate_company_graph(
        CompanySpec(persons=18, companies=14, seed=seed)
    )
    return g


def make_service(graph, tenant=DEFAULT_TENANT, **overrides):
    return build_service(
        graph, config=ServiceConfig(port=0, **overrides), tenant=tenant
    )


async def http_request(port, method, path, body=None):
    """One HTTP/1.1 request over a fresh connection; returns (status, json)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        if payload:
            head += f"Content-Length: {len(payload)}\r\n"
        writer.write((head + "\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(body_bytes)


#: fields of /stats that legitimately differ between a multi-tenant
#: service and an isolated one: identity (tenant, worker, persist
#: health) and wall-clock timing — everything else must be byte-equal
_STATS_IDENTITY_FIELDS = (
    "tenant", "worker_id", "persist", "built_s", "created_at",
)


def canonical(endpoint: str, payload) -> str:
    if endpoint.startswith("stats"):
        payload = {
            k: v for k, v in payload.items() if k not in _STATS_IDENTITY_FIELDS
        }
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# registry unit surface
# ----------------------------------------------------------------------


class TestRegistry:
    def test_validate_tenant(self):
        for good in ("a", "default", "tenant-1", "A.b_c", "0x", "a" * 64):
            assert validate_tenant(good) == good
        for bad in ("", "-x", ".x", "a/b", "a b", "a" * 65, None, 7, "t\n"):
            with pytest.raises(TenantError):
                validate_tenant(bad)

    def test_first_adopt_sets_alias_and_duplicates_fail(self):
        registry = GraphRegistry()
        manager = SnapshotManager()
        registry.adopt("alpha", manager)
        assert registry.alias == "alpha"
        assert "alpha" in registry and len(registry) == 1
        with pytest.raises(TenantError):
            registry.adopt("alpha", SnapshotManager())

    def test_get_unknown_raises_with_one_line_message(self):
        registry = GraphRegistry()
        with pytest.raises(UnknownTenantError) as err:
            registry.get("ghost")
        assert str(err.value) == "unknown tenant: ghost"
        assert err.value.tenant == "ghost"

    def test_create_empty_and_drop(self):
        registry = GraphRegistry()
        binding = registry.create("acme")
        assert binding.version == 1
        assert binding.updater is not None  # mutable: grows via deltas
        assert binding.info()["nodes"] == 0
        assert registry.stats()["versions"] == {"acme": 1}
        registry.drop("acme")
        assert "acme" not in registry
        with pytest.raises(UnknownTenantError):
            registry.drop("acme")
        assert registry.stats() == {
            "tenants": 0, "alias": "acme", "created": 1, "dropped": 1,
            "versions": {},
        }

    def test_persist_hook_factory_wires_new_updaters(self):
        seen = []
        registry = GraphRegistry()
        registry.persist_hook_factory = lambda name: lambda snap: seen.append(
            (name, snap.version)
        )
        binding = registry.create("acme")
        # create() persists v1 through the hook on its own, so a
        # created-but-never-mutated tenant survives a restart
        assert seen == [("acme", 1)]
        assert binding.updater.persists == 1
        binding.updater.persist_hook(binding.manager.current)
        assert seen == [("acme", 1), ("acme", 1)]


# ----------------------------------------------------------------------
# byte-identity vs independent single-tenant services
# ----------------------------------------------------------------------


def reasoning_paths(graph):
    company = next(graph.companies()).id
    person = next(graph.persons()).id
    return [
        "/control",
        "/control?threshold=0.4",
        "/close-links",
        "/family",
        f"/ubo/{company}",
        f"/neighbors/{company}?depth=2",
        f"/neighbors/{person}?depth=1",
        "/stats",
    ]


class TestTenantIsolation:
    def test_two_tenants_byte_identical_to_independent_services(self):
        # colliding shapes: same id keyspace, same version numbers
        multi = make_service(small_graph(3), tenant="alpha")
        multi.registry.create("beta", graph=small_graph(7))
        solo_a = make_service(small_graph(3))
        solo_b = make_service(small_graph(7))
        paths = reasoning_paths(small_graph(3))

        async def main():
            await multi.start()
            await solo_a.start()
            await solo_b.start()
            try:
                for round_ in range(2):  # round 2 reads through the cache
                    for path in paths:
                        # concurrent same-path requests for both tenants:
                        # single-flight and the micro-batcher see both in
                        # one window and must not coalesce across tenants
                        (sa, pa), (sb, pb), (ssa, psa), (ssb, psb) = (
                            await asyncio.gather(
                                http_request(
                                    multi.port, "GET", f"/t/alpha{path}"
                                ),
                                http_request(
                                    multi.port, "GET", f"/t/beta{path}"
                                ),
                                http_request(solo_a.port, "GET", path),
                                http_request(solo_b.port, "GET", path),
                            )
                        )
                        endpoint = path.lstrip("/")
                        assert sa == ssa == 200, (path, pa, psa)
                        assert sb == ssb == 200, (path, pb, psb)
                        assert canonical(endpoint, pa) == canonical(
                            endpoint, psa
                        ), f"alpha diverged on {path} (round {round_})"
                        assert canonical(endpoint, pb) == canonical(
                            endpoint, psb
                        ), f"beta diverged on {path} (round {round_})"
                        # the two tenants really do differ (the collision
                        # is in shape, not content) — a symmetric bleed
                        # would otherwise pass the equality checks above
                        if path == "/control":
                            assert canonical(endpoint, pa) != canonical(
                                endpoint, pb
                            )
            finally:
                await multi.stop()
                await solo_a.stop()
                await solo_b.stop()

        asyncio.run(main())

    def test_mutation_cycle_leaves_other_tenant_untouched(self):
        multi = make_service(small_graph(3), tenant="alpha")
        multi.registry.create("beta", graph=small_graph(7))
        solo_a = make_service(small_graph(3))
        solo_b = make_service(small_graph(7))
        deltas = [
            {"op": "add_company", "id": "ZNEW"},
            {"op": "add_shareholding", "owner": "C000000", "company": "ZNEW",
             "share": 0.6},
        ]
        paths = reasoning_paths(small_graph(3))

        async def main():
            await multi.start()
            await solo_a.start()
            await solo_b.start()
            try:
                # warm beta's cache pre-mutation, then mutate only alpha
                _, beta_before = await http_request(
                    multi.port, "GET", "/t/beta/control"
                )
                status, mutated = await http_request(
                    multi.port, "POST", "/t/alpha/mutations?wait=1",
                    body={"deltas": deltas},
                )
                assert status == 200 and mutated["version"] == 2, mutated
                status, _ = await http_request(
                    solo_a.port, "POST", "/mutations?wait=1",
                    body={"deltas": deltas},
                )
                assert status == 200
                for path in paths:
                    endpoint = path.lstrip("/")
                    _, pa = await http_request(
                        multi.port, "GET", f"/t/alpha{path}"
                    )
                    _, psa = await http_request(solo_a.port, "GET", path)
                    assert canonical(endpoint, pa) == canonical(
                        endpoint, psa
                    ), f"alpha diverged on {path} after mutation"
                    _, pb = await http_request(
                        multi.port, "GET", f"/t/beta{path}"
                    )
                    _, psb = await http_request(solo_b.port, "GET", path)
                    assert canonical(endpoint, pb) == canonical(
                        endpoint, psb
                    ), f"beta diverged on {path} after alpha's mutation"
                _, beta_stats = await http_request(
                    multi.port, "GET", "/t/beta/stats"
                )
                assert beta_stats["version"] == 1  # untouched
                _, beta_after = await http_request(
                    multi.port, "GET", "/t/beta/control"
                )
                assert beta_after == beta_before
            finally:
                await multi.stop()
                await solo_a.stop()
                await solo_b.stop()

        asyncio.run(main())

    def test_unknown_tenant_is_one_line_404_on_every_route(self):
        service = make_service(small_graph(1))
        routes = [
            ("GET", "/t/ghost"),
            ("GET", "/t/ghost/control"),
            ("GET", "/t/ghost/close-links"),
            ("GET", "/t/ghost/family"),
            ("GET", "/t/ghost/ubo/C0"),
            ("GET", "/t/ghost/neighbors/C0"),
            ("GET", "/t/ghost/stats"),
            ("POST", "/t/ghost/mutations"),
            ("DELETE", "/t/ghost"),
        ]

        async def main():
            await service.start()
            try:
                results = []
                for method, path in routes:
                    body = {"deltas": []} if method == "POST" else None
                    results.append(
                        (path,)
                        + await http_request(service.port, method, path, body)
                    )
                return results
            finally:
                await service.stop()

        for path, status, payload in asyncio.run(main()):
            assert status == 404, (path, payload)
            assert payload == {"error": "unknown tenant: ghost"}, path

    def test_unprefixed_routes_alias_to_seeded_tenant(self):
        service = make_service(small_graph(5), tenant="seeded")

        async def main():
            await service.start()
            try:
                _, plain = await http_request(service.port, "GET", "/control")
                _, prefixed = await http_request(
                    service.port, "GET", "/t/seeded/control"
                )
                _, listing = await http_request(service.port, "GET", "/t")
                return plain, prefixed, listing
            finally:
                await service.stop()

        plain, prefixed, listing = asyncio.run(main())
        assert plain == prefixed
        assert listing["alias"] == "seeded"
        assert [t["tenant"] for t in listing["tenants"]] == ["seeded"]


# ----------------------------------------------------------------------
# tenant admin lifecycle
# ----------------------------------------------------------------------


class TestTenantAdmin:
    def test_create_mutate_delete_recreate(self):
        service = make_service(small_graph(2))

        async def main():
            await service.start()
            port = service.port
            try:
                out = {}
                out["put"] = await http_request(port, "PUT", "/t/acme")
                out["put_again"] = await http_request(port, "PUT", "/t/acme")
                out["info"] = await http_request(port, "GET", "/t/acme")
                out["mutate"] = await http_request(
                    port, "POST", "/t/acme/mutations?wait=1",
                    body={"deltas": [{"op": "add_company", "id": "SOLO"}]},
                )
                out["control_cached"] = await http_request(
                    port, "GET", "/t/acme/control"
                )
                out["del_alias"] = await http_request(
                    port, "DELETE", f"/t/{DEFAULT_TENANT}"
                )
                out["delete"] = await http_request(port, "DELETE", "/t/acme")
                out["gone"] = await http_request(port, "GET", "/t/acme/control")
                out["recreate"] = await http_request(port, "PUT", "/t/acme")
                # the recreated tenant must not serve the old tenant's
                # cached payloads (delete evicts its cache keyspace)
                out["fresh_stats"] = await http_request(
                    port, "GET", "/t/acme/stats"
                )
                out["bad_name"] = await http_request(port, "PUT", "/t/bad%20name")
                out["listing"] = await http_request(port, "GET", "/t")
                return out
            finally:
                await service.stop()

        out = asyncio.run(main())
        assert out["put"][0] == 201 and out["put"][1]["status"] == "created"
        assert out["put"][1]["version"] == 1
        assert out["put_again"][0] == 200
        assert out["put_again"][1]["status"] == "exists"
        assert out["info"][1]["tenant"] == "acme"
        assert out["mutate"][0] == 200 and out["mutate"][1]["version"] == 2
        assert out["control_cached"][0] == 200
        assert out["del_alias"][0] == 400
        assert "alias" in out["del_alias"][1]["error"]
        assert out["delete"][0] == 200
        assert out["delete"][1] == {
            "status": "deleted", "tenant": "acme", "version": 2,
        }
        assert out["gone"][0] == 404
        assert out["recreate"][0] == 201
        assert out["fresh_stats"][1]["nodes"] == 0
        assert out["fresh_stats"][1]["version"] == 1
        assert out["bad_name"][0] == 400
        assert {t["tenant"] for t in out["listing"][1]["tenants"]} == {
            DEFAULT_TENANT, "acme",
        }

    def test_metrics_carry_tenant_dimension(self):
        service = make_service(small_graph(2))
        service.registry.create("acme", graph=small_graph(4))

        async def main():
            await service.start()
            try:
                await http_request(service.port, "GET", "/control")
                await http_request(service.port, "GET", "/t/acme/control")
                await http_request(service.port, "GET", "/t/acme/family")
                _, metrics = await http_request(service.port, "GET", "/metrics")
                _, stats = await http_request(service.port, "GET", "/t/acme/stats")
                return metrics, stats
            finally:
                await service.stop()

        metrics, stats = asyncio.run(main())
        assert metrics["tenant_requests"][DEFAULT_TENANT] == 1
        assert metrics["tenant_requests"]["acme"] == 2
        assert set(metrics["tenants"]) == {DEFAULT_TENANT, "acme"}
        assert metrics["registry"]["tenants"] == 2
        assert stats["tenant"] == "acme"


# ----------------------------------------------------------------------
# cache keyspace property: payloads never cross tenants
# ----------------------------------------------------------------------


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["alpha", "beta", "gamma"]),
        st.integers(min_value=1, max_value=3),   # colliding versions
        st.sampled_from(["control", "ubo", "neighbors"]),
        st.integers(min_value=0, max_value=2),   # colliding params
    ),
    max_size=80,
)


class TestCacheTenantProperty:
    @given(ops=_OPS)
    @settings(deadline=None, max_examples=60)
    def test_lru_never_returns_another_tenants_payload(self, ops):
        # tiny capacity forces evictions mid-sequence; the payload
        # records its own key so any cross-tenant hit is self-evident
        lru = LRUCache(capacity=4)
        for tenant, version, endpoint, param in ops:
            key = snapshot_key(version, endpoint, (param,), tenant=tenant)
            hit = lru.get(key)
            if hit is not None:
                assert hit == (tenant, version, endpoint, param)
            lru.put(key, (tenant, version, endpoint, param))

    def test_single_flight_does_not_coalesce_across_tenants(self):
        flight = SingleFlight()
        calls = []

        def compute_for(tenant):
            async def compute():
                calls.append(tenant)
                await asyncio.sleep(0.01)
                return f"payload-of-{tenant}"
            return compute

        async def main():
            # identical (version, endpoint, params); only the tenant differs
            key_a = snapshot_key(1, "control", (), tenant="alpha")
            key_b = snapshot_key(1, "control", (), tenant="beta")
            return await asyncio.gather(
                flight.run(key_a, compute_for("alpha")),
                flight.run(key_b, compute_for("beta")),
                flight.run(key_a, compute_for("alpha")),
            )

        first, second, third = asyncio.run(main())
        assert first == third == "payload-of-alpha"
        assert second == "payload-of-beta"
        assert sorted(calls) == ["alpha", "beta"]  # coalesced within, not across
