"""Tests for the business-facing explanation service."""

import pytest

from repro.core.explain import (
    Explanation,
    explain_close_link,
    explain_control,
    explain_family_link,
)
from repro.graph import figure1_graph, figure2_graph
from repro.linkage import BayesianLinkClassifier, partner_features
from repro.linkage.training import default_classifiers


class TestExplainControl:
    def test_positive_chain(self):
        explanation = explain_control(figure1_graph(), "P1", "F")
        assert explanation.verdict
        assert any("control established" in step for step in explanation.steps)
        assert any("absorbs" in step for step in explanation.steps)

    def test_negative_case(self):
        explanation = explain_control(figure1_graph(), "P1", "L")
        assert not explanation.verdict
        assert any("no set of companies" in step for step in explanation.steps)

    def test_render(self):
        rendered = explain_control(figure1_graph(), "P2", "I").render()
        assert "YES" in rendered
        assert rendered.startswith("does P2 control I?")

    def test_direct_share_mentioned_when_present(self):
        explanation = explain_control(figure1_graph(), "F", "L")
        assert not explanation.verdict
        assert any("20.0%" in step for step in explanation.steps)


class TestExplainCloseLink:
    def test_direct_condition(self):
        explanation = explain_close_link(figure2_graph(), "C4", "C7")
        assert explanation.verdict
        assert any("condition (i)" in step for step in explanation.steps)
        assert any("C4 -> C3 -> C7" in step for step in explanation.steps)

    def test_common_owner_condition(self):
        explanation = explain_close_link(figure2_graph(), "C4", "C6")
        assert explanation.verdict
        assert any("condition (iii)" in step and "P3" in step
                   for step in explanation.steps)

    def test_negative_case(self):
        explanation = explain_close_link(figure1_graph(), "C", "G")
        assert not explanation.verdict
        assert any("no third party" in step for step in explanation.steps)


class TestExplainFamilyLink:
    def test_positive_partner(self):
        classifier = BayesianLinkClassifier("partner_of", partner_features())
        husband = {"address": "x", "birth_date": "1960-01-01", "sex": "M"}
        wife = {"address": "x", "birth_date": "1963-05-05", "sex": "F"}
        explanation = explain_family_link(classifier, husband, wife)
        assert explanation.verdict
        assert any("address: match" in step for step in explanation.steps)
        assert any("combined probability" in step for step in explanation.steps)

    def test_direction_violation_reported(self):
        classifiers = {c.link_class: c for c in default_classifiers()}
        child = {"birth_date": "1990-01-01", "surname": "Rossi"}
        parent = {"birth_date": "1960-01-01", "surname": "Rossi"}
        explanation = explain_family_link(classifiers["parent_of"], child, parent)
        assert not explanation.verdict
        assert any("direction constraint" in step for step in explanation.steps)

    def test_missing_feature_reported(self):
        classifier = BayesianLinkClassifier("partner_of", partner_features())
        explanation = explain_family_link(classifier, {"address": "x"}, {"address": "x"})
        assert any("missing value" in step for step in explanation.steps)
