"""Tests for the indexed fact store."""

from repro.datalog import Database


class TestAddRemove:
    def test_add_returns_true_when_new(self):
        db = Database()
        assert db.add("p", (1, 2))
        assert not db.add("p", (1, 2))

    def test_contains(self):
        db = Database([("p", (1,))])
        assert db.contains("p", (1,))
        assert not db.contains("p", (2,))
        assert not db.contains("q", (1,))
        assert ("p", (1,)) in db

    def test_remove(self):
        db = Database([("p", (1,)), ("p", (2,))])
        assert db.remove("p", (1,))
        assert not db.remove("p", (1,))
        assert db.facts("p") == [(2,)]

    def test_add_all_counts_new(self):
        db = Database()
        added = db.add_all([("p", (1,)), ("p", (1,)), ("q", (2,))])
        assert added == 2

    def test_len_and_count(self):
        db = Database([("p", (1,)), ("p", (2,)), ("q", (3,))])
        assert len(db) == 3
        assert db.count("p") == 2
        assert db.count("missing") == 0


class TestMatch:
    def test_full_scan(self):
        db = Database([("p", (1, "a")), ("p", (2, "b"))])
        assert sorted(db.match("p", {})) == [(1, "a"), (2, "b")]

    def test_single_position(self):
        db = Database([("p", (1, "a")), ("p", (2, "b")), ("p", (1, "c"))])
        assert sorted(db.match("p", {0: 1})) == [(1, "a"), (1, "c")]

    def test_multi_position(self):
        db = Database([("p", (1, "a")), ("p", (1, "b"))])
        assert list(db.match("p", {0: 1, 1: "b"})) == [(1, "b")]

    def test_no_match(self):
        db = Database([("p", (1,))])
        assert list(db.match("p", {0: 99})) == []
        assert list(db.match("unknown", {0: 1})) == []

    def test_index_stays_fresh_after_insert(self):
        db = Database([("p", (1, "a"))])
        assert list(db.match("p", {0: 2})) == []  # builds the index
        db.add("p", (2, "b"))
        assert list(db.match("p", {0: 2})) == [(2, "b")]

    def test_index_invalidated_by_remove(self):
        db = Database([("p", (1, "a")), ("p", (2, "b"))])
        assert list(db.match("p", {0: 1})) == [(1, "a")]
        db.remove("p", (1, "a"))
        assert list(db.match("p", {0: 1})) == []

    def test_mixed_arity_same_predicate(self):
        # the engine stores link/3 and link/4 under one name
        db = Database([("link", (1, 2, 3)), ("link", (1, 2, 3, 0.5))])
        assert db.count("link") == 2


class TestBulk:
    def test_all_facts(self):
        facts = [("p", (1,)), ("q", (2, 3))]
        db = Database(facts)
        assert sorted(db.all_facts()) == sorted(facts)

    def test_copy_is_independent(self):
        db = Database([("p", (1,))])
        clone = db.copy()
        clone.add("p", (2,))
        assert db.count("p") == 1
        assert clone.count("p") == 2

    def test_predicates_skips_empty(self):
        db = Database([("p", (1,))])
        db.remove("p", (1,))
        assert db.predicates() == []

    def test_repr(self):
        db = Database([("p", (1,))])
        assert "p" in repr(db)


class TestFactsIsolation:
    """``facts()`` hands out a copy: callers cannot corrupt the store."""

    def test_mutating_returned_list_does_not_corrupt_contains(self):
        db = Database([("p", (1,)), ("p", (2,))])
        rows = db.facts("p")
        rows.append((3,))
        rows.remove((1,))
        assert db.contains("p", (1,))
        assert not db.contains("p", (3,))
        assert db.count("p") == 2

    def test_mutating_returned_list_does_not_corrupt_match(self):
        db = Database([("p", (1, "a")), ("p", (2, "b"))])
        assert list(db.match("p", {0: 1})) == [(1, "a")]  # builds the index
        db.facts("p").clear()
        assert list(db.match("p", {0: 1})) == [(1, "a")]
        assert sorted(db.match("p", {})) == [(1, "a"), (2, "b")]

    def test_missing_predicate_returns_fresh_list(self):
        db = Database()
        rows = db.facts("absent")
        rows.append((1,))
        assert db.count("absent") == 0
        assert db.facts("absent") == []

    def test_copy_rebuilds_sets_from_rows(self):
        db = Database([("p", (1,)), ("q", (2,))])
        db.remove("q", (2,))  # leaves an empty predicate entry behind
        clone = db.copy()
        assert clone.count() == 1
        assert clone.contains("p", (1,))
        assert not clone.contains("q", (2,))
        # clone indexes are built independently of the original's
        assert list(clone.match("p", {0: 1})) == [(1,)]
        clone.add("p", (5,))
        assert not db.contains("p", (5,))
