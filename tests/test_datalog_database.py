"""Tests for the indexed fact store."""

from repro.datalog import Database


class TestAddRemove:
    def test_add_returns_true_when_new(self):
        db = Database()
        assert db.add("p", (1, 2))
        assert not db.add("p", (1, 2))

    def test_contains(self):
        db = Database([("p", (1,))])
        assert db.contains("p", (1,))
        assert not db.contains("p", (2,))
        assert not db.contains("q", (1,))
        assert ("p", (1,)) in db

    def test_remove(self):
        db = Database([("p", (1,)), ("p", (2,))])
        assert db.remove("p", (1,))
        assert not db.remove("p", (1,))
        assert db.facts("p") == [(2,)]

    def test_add_all_counts_new(self):
        db = Database()
        added = db.add_all([("p", (1,)), ("p", (1,)), ("q", (2,))])
        assert added == 2

    def test_len_and_count(self):
        db = Database([("p", (1,)), ("p", (2,)), ("q", (3,))])
        assert len(db) == 3
        assert db.count("p") == 2
        assert db.count("missing") == 0


class TestMatch:
    def test_full_scan(self):
        db = Database([("p", (1, "a")), ("p", (2, "b"))])
        assert sorted(db.match("p", {})) == [(1, "a"), (2, "b")]

    def test_single_position(self):
        db = Database([("p", (1, "a")), ("p", (2, "b")), ("p", (1, "c"))])
        assert sorted(db.match("p", {0: 1})) == [(1, "a"), (1, "c")]

    def test_multi_position(self):
        db = Database([("p", (1, "a")), ("p", (1, "b"))])
        assert list(db.match("p", {0: 1, 1: "b"})) == [(1, "b")]

    def test_no_match(self):
        db = Database([("p", (1,))])
        assert list(db.match("p", {0: 99})) == []
        assert list(db.match("unknown", {0: 1})) == []

    def test_index_stays_fresh_after_insert(self):
        db = Database([("p", (1, "a"))])
        assert list(db.match("p", {0: 2})) == []  # builds the index
        db.add("p", (2, "b"))
        assert list(db.match("p", {0: 2})) == [(2, "b")]

    def test_index_invalidated_by_remove(self):
        db = Database([("p", (1, "a")), ("p", (2, "b"))])
        assert list(db.match("p", {0: 1})) == [(1, "a")]
        db.remove("p", (1, "a"))
        assert list(db.match("p", {0: 1})) == []

    def test_mixed_arity_same_predicate(self):
        # the engine stores link/3 and link/4 under one name
        db = Database([("link", (1, 2, 3)), ("link", (1, 2, 3, 0.5))])
        assert db.count("link") == 2


class TestBulk:
    def test_all_facts(self):
        facts = [("p", (1,)), ("q", (2, 3))]
        db = Database(facts)
        assert sorted(db.all_facts()) == sorted(facts)

    def test_copy_is_independent(self):
        db = Database([("p", (1,))])
        clone = db.copy()
        clone.add("p", (2,))
        assert db.count("p") == 1
        assert clone.count("p") == 2

    def test_predicates_skips_empty(self):
        db = Database([("p", (1,))])
        db.remove("p", (1,))
        assert db.predicates() == []

    def test_repr(self):
        db = Database([("p", (1,))])
        assert "p" in repr(db)


class TestIndexStability:
    """Compiled evaluators capture index dicts once and probe them across
    semi-naive rounds: add/remove must update those dicts in place."""

    def test_remove_updates_index_in_place(self):
        db = Database([("p", (1, "a")), ("p", (1, "b")), ("p", (2, "c"))])
        index = db.index_for("p", (0,))
        assert db.remove("p", (1, "a"))
        # same dict object, bucket shrunk in place
        assert db.index_for("p", (0,)) is index
        assert index[(1,)] == [(1, "b")]

    def test_remove_drops_empty_bucket(self):
        db = Database([("p", (1, "a"))])
        index = db.index_for("p", (0,))
        db.remove("p", (1, "a"))
        assert (1,) not in index
        db.add("p", (1, "z"))
        assert index[(1,)] == [(1, "z")]

    def test_add_updates_captured_index(self):
        db = Database([("p", (1, "a"))])
        index = db.index_for("p", (1,))
        db.add("p", (2, "a"))
        assert sorted(index[("a",)]) == [(1, "a"), (2, "a")]

    def test_mixed_arity_remove_skips_short_tuples(self):
        db = Database([("link", (1, 2)), ("link", (1, 2, 3))])
        index = db.index_for("link", (2,))  # only link/3 participates
        assert index == {(3,): [(1, 2, 3)]}
        assert db.remove("link", (1, 2))  # must not KeyError on the index
        assert db.remove("link", (1, 2, 3))
        assert index == {}

    def test_remove_keeps_live_set_and_rows_in_sync(self):
        db = Database([("p", (1,)), ("p", (2,))])
        rows = db.live_rows("p")
        members = db.live_set("p")
        db.remove("p", (1,))
        assert rows == [(2,)]
        assert members == {(2,)}

    def test_distinct_count_reports_only_built_indexes(self):
        db = Database([("p", (1, "a")), ("p", (2, "a"))])
        assert db.distinct_count("p", (0,)) is None
        db.index_for("p", (0,))
        assert db.distinct_count("p", (0,)) == 2
        assert db.distinct_count("p", (1,)) is None


class TestIterFacts:
    def test_iter_facts_is_a_live_view(self):
        db = Database([("p", (1,))])
        iterator = db.iter_facts("p")
        db.add("p", (2,))
        assert list(iterator) == [(1,), (2,)]

    def test_iter_facts_missing_predicate(self):
        db = Database()
        assert list(db.iter_facts("absent")) == []
        # must not create an empty entry as a side effect
        assert db.predicates() == []

    def test_iter_facts_matches_facts_copy(self):
        db = Database([("p", (1,)), ("p", (2,))])
        assert list(db.iter_facts("p")) == db.facts("p")


class TestFactsIsolation:
    """``facts()`` hands out a copy: callers cannot corrupt the store."""

    def test_mutating_returned_list_does_not_corrupt_contains(self):
        db = Database([("p", (1,)), ("p", (2,))])
        rows = db.facts("p")
        rows.append((3,))
        rows.remove((1,))
        assert db.contains("p", (1,))
        assert not db.contains("p", (3,))
        assert db.count("p") == 2

    def test_mutating_returned_list_does_not_corrupt_match(self):
        db = Database([("p", (1, "a")), ("p", (2, "b"))])
        assert list(db.match("p", {0: 1})) == [(1, "a")]  # builds the index
        db.facts("p").clear()
        assert list(db.match("p", {0: 1})) == [(1, "a")]
        assert sorted(db.match("p", {})) == [(1, "a"), (2, "b")]

    def test_missing_predicate_returns_fresh_list(self):
        db = Database()
        rows = db.facts("absent")
        rows.append((1,))
        assert db.count("absent") == 0
        assert db.facts("absent") == []

    def test_copy_rebuilds_sets_from_rows(self):
        db = Database([("p", (1,)), ("q", (2,))])
        db.remove("q", (2,))  # leaves an empty predicate entry behind
        clone = db.copy()
        assert clone.count() == 1
        assert clone.contains("p", (1,))
        assert not clone.contains("q", (2,))
        # clone indexes are built independently of the original's
        assert list(clone.match("p", {0: 1})) == [(1,)]
        clone.add("p", (5,))
        assert not db.contains("p", (5,))
