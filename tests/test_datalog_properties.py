"""Property-based tests of the Datalog engine against independent oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, Engine, parse_program, solve

TC_PROGRAM = """
edge(X, Y) -> path(X, Y).
path(X, Z), edge(Z, Y) -> path(X, Y).
"""


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=25,
        )
    )
    return edges


class TestTransitiveClosureOracle:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, edges):
        engine = solve(TC_PROGRAM, [("edge", e) for e in edges])
        ours = set(engine.query("path"))

        digraph = nx.DiGraph(edges)
        theirs = set()
        for source in digraph.nodes:
            lengths = nx.single_source_shortest_path_length(digraph, source)
            for target, distance in lengths.items():
                if distance >= 1:
                    theirs.add((source, target))
                # self-paths via cycles need >= 1 step; networkx reports
                # distance 0 for the source itself, so detect cycles:
            if digraph.has_edge(source, source):
                theirs.add((source, source))
        # nodes on directed cycles reach themselves
        for component in nx.strongly_connected_components(digraph):
            if len(component) > 1:
                for node in component:
                    theirs.add((node, node))
        assert ours == theirs

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_naive_equals_seminaive(self, edges):
        facts = [("edge", e) for e in edges]
        fast = solve(TC_PROGRAM, list(facts))
        slow = Engine(parse_program(TC_PROGRAM), Database(list(facts)), seminaive=False)
        slow.run()
        assert set(fast.query("path")) == set(slow.query("path"))

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, edges):
        facts = [("edge", e) for e in edges]
        first = solve(TC_PROGRAM, list(facts))
        second = solve(TC_PROGRAM, list(facts))
        assert set(first.query("path")) == set(second.query("path"))


class TestAggregateOracle:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),       # group
                st.integers(min_value=0, max_value=6),       # contributor
                st.floats(min_value=0.01, max_value=1.0),    # value
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_msum_equals_python_groupby(self, rows):
        engine = solve(
            "contribution(G, Z, W), T = msum(W, <Z>) -> total(G, T).",
            [("contribution", row) for row in rows],
        )
        # oracle: per group, each contributor counts once at its max value
        expected: dict[int, dict[int, float]] = {}
        for group, contributor, value in rows:
            bucket = expected.setdefault(group, {})
            bucket[contributor] = max(bucket.get(contributor, 0.0), value)
        for group, contributions in expected.items():
            target = sum(contributions.values())
            best = max(t for g, t in engine.query("total") if g == group)
            assert best == pytest.approx(target)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=9)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mcount_equals_distinct_count(self, rows):
        engine = solve(
            "member(G, Z), T = mcount(<Z>) -> size(G, T).",
            [("member", row) for row in rows],
        )
        expected: dict[int, set[int]] = {}
        for group, member in rows:
            expected.setdefault(group, set()).add(member)
        for group, members in expected.items():
            best = max(t for g, t in engine.query("size") if g == group)
            assert best == len(members)


class TestSetSemantics:
    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_duplicate_facts_are_idempotent(self, edges):
        once = solve(TC_PROGRAM, [("edge", e) for e in edges])
        twice = solve(TC_PROGRAM, [("edge", e) for e in edges + edges])
        assert set(once.query("path")) == set(twice.query("path"))

    @given(edge_lists())
    @settings(max_examples=20, deadline=None)
    def test_monotone_under_fact_addition(self, edges):
        if not edges:
            return
        smaller = solve(TC_PROGRAM, [("edge", e) for e in edges[:-1]])
        larger = solve(TC_PROGRAM, [("edge", e) for e in edges])
        assert set(smaller.query("path")) <= set(larger.query("path"))


@st.composite
def recursive_aggregate_programs(draw):
    """A random recursive program with optional Skolem checks + aggregates.

    The generated rules are drawn so the interesting engine paths get
    exercised: rules whose body holds a complex term over a predicate
    derived recursively in the same stratum (the semi-naive seed path),
    and monotonic aggregates over recursively derived facts (the
    duplicate-round pruning path).
    """
    rules = ["edge(X, Y) -> path(X, Y).",
             "path(X, Z), edge(Z, Y) -> path(X, Y)."]
    if draw(st.booleans()):
        rules.append("path(X, Y) -> path(Y, X).")
    if draw(st.booleans()):
        # Skolem producer + checker, recursive through path so delta
        # facts seed the complex-term atom
        rules.append("mark(X) -> path(X, #tag(X)).")
        checked = draw(st.sampled_from(["#tag(X)", "#other(X)"]))
        rules.append(
            f"mark(X), path(X, {checked}) -> hit(X), path(X, X)."
        )
    aggregate = draw(st.sampled_from([None, "msum", "mcount", "mmax"]))
    if aggregate == "msum":
        rules.append("weight(X, Y, W), path(X, Y), T = msum(W, <Y>) "
                     "-> mass(X, T).")
    elif aggregate == "mcount":
        rules.append("path(X, Y), T = mcount(<Y>) -> fanout(X, T).")
        if draw(st.booleans()):
            # feed the count back into recursion
            rules.append("fanout(X, T), T > 2 -> busy(X), path(X, X).")
    elif aggregate == "mmax":
        rules.append("weight(X, Y, W), path(X, Y), T = mmax(W, <Y>) "
                     "-> best(X, T).")
    if draw(st.booleans()):
        # stratified negation over an EDB predicate
        rules.append("edge(X, Y), not mark(Y) -> open_end(X, Y).")
    if draw(st.booleans()):
        # stratified negation over the recursively derived predicate:
        # isolated sits in a stratum strictly above path
        rules.append("mark(X), not path(X, X) -> isolated(X).")

    n = draw(st.integers(min_value=1, max_value=6))
    node = st.integers(min_value=0, max_value=n - 1)
    edges = draw(st.lists(st.tuples(node, node), max_size=12))
    marks = draw(st.lists(node, max_size=3))
    weights = draw(
        st.lists(
            st.tuples(node, node, st.integers(min_value=1, max_value=9)),
            max_size=8,
        )
    )
    facts = (
        [("edge", e) for e in edges]
        + [("mark", (m,)) for m in marks]
        + [("weight", w) for w in weights]
    )
    return "\n".join(rules), facts


class TestRandomProgramOracle:
    """Semi-naive and naive evaluation agree on random programs."""

    @given(recursive_aggregate_programs())
    @settings(max_examples=60, deadline=None)
    def test_naive_equals_seminaive_on_random_programs(self, case):
        program_text, facts = case
        fast = Engine(parse_program(program_text), Database(list(facts)))
        fast.run()
        slow = Engine(
            parse_program(program_text), Database(list(facts)), seminaive=False
        )
        slow.run()
        assert set(fast.database.all_facts()) == set(slow.database.all_facts())

    @given(recursive_aggregate_programs())
    @settings(max_examples=30, deadline=None)
    def test_seminaive_never_fires_more_than_naive(self, case):
        # semi-naive restricts each rule to delta-seeded bindings, so it
        # can only remove duplicate work, never add derivations
        program_text, facts = case
        fast = Engine(parse_program(program_text), Database(list(facts)))
        fast.run()
        slow = Engine(
            parse_program(program_text), Database(list(facts)), seminaive=False
        )
        slow.run()
        assert fast.stats.facts_derived == slow.stats.facts_derived


class TestPlannerOracle:
    """The join planner + compiled evaluators are invisible except for speed.

    Planned+compiled evaluation must reach a byte-identical fixpoint —
    same facts, same firing counts — as textual-order interpretation on
    random recursive/aggregate/negation programs.
    """

    @given(recursive_aggregate_programs())
    @settings(max_examples=60, deadline=None)
    def test_planned_equals_unplanned_on_random_programs(self, case):
        program_text, facts = case
        program = parse_program(program_text)
        planned = Engine(program, Database(list(facts)))
        planned.run()
        unplanned = Engine(program, Database(list(facts)), plan=False)
        unplanned.run()
        assert set(planned.database.all_facts()) == set(
            unplanned.database.all_facts()
        )
        assert planned.stats.rule_firings == unplanned.stats.rule_firings
        assert planned.stats.facts_derived == unplanned.stats.facts_derived

    @given(recursive_aggregate_programs())
    @settings(max_examples=30, deadline=None)
    def test_planned_naive_equals_unplanned_seminaive(self, case):
        # cross the two axes: the compiled path under naive evaluation
        # must still agree with the interpreted semi-naive fixpoint
        program_text, facts = case
        naive_planned = Engine(
            parse_program(program_text), Database(list(facts)), seminaive=False
        )
        naive_planned.run()
        seminaive_unplanned = Engine(
            parse_program(program_text), Database(list(facts)), plan=False
        )
        seminaive_unplanned.run()
        assert set(naive_planned.database.all_facts()) == set(
            seminaive_unplanned.database.all_facts()
        )
