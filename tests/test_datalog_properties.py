"""Property-based tests of the Datalog engine against independent oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, Engine, parse_program, solve

TC_PROGRAM = """
edge(X, Y) -> path(X, Y).
path(X, Z), edge(Z, Y) -> path(X, Y).
"""


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=25,
        )
    )
    return edges


class TestTransitiveClosureOracle:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, edges):
        engine = solve(TC_PROGRAM, [("edge", e) for e in edges])
        ours = set(engine.query("path"))

        digraph = nx.DiGraph(edges)
        theirs = set()
        for source in digraph.nodes:
            lengths = nx.single_source_shortest_path_length(digraph, source)
            for target, distance in lengths.items():
                if distance >= 1:
                    theirs.add((source, target))
                # self-paths via cycles need >= 1 step; networkx reports
                # distance 0 for the source itself, so detect cycles:
            if digraph.has_edge(source, source):
                theirs.add((source, source))
        # nodes on directed cycles reach themselves
        for component in nx.strongly_connected_components(digraph):
            if len(component) > 1:
                for node in component:
                    theirs.add((node, node))
        assert ours == theirs

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_naive_equals_seminaive(self, edges):
        facts = [("edge", e) for e in edges]
        fast = solve(TC_PROGRAM, list(facts))
        slow = Engine(parse_program(TC_PROGRAM), Database(list(facts)), seminaive=False)
        slow.run()
        assert set(fast.query("path")) == set(slow.query("path"))

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, edges):
        facts = [("edge", e) for e in edges]
        first = solve(TC_PROGRAM, list(facts))
        second = solve(TC_PROGRAM, list(facts))
        assert set(first.query("path")) == set(second.query("path"))


class TestAggregateOracle:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),       # group
                st.integers(min_value=0, max_value=6),       # contributor
                st.floats(min_value=0.01, max_value=1.0),    # value
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_msum_equals_python_groupby(self, rows):
        engine = solve(
            "contribution(G, Z, W), T = msum(W, <Z>) -> total(G, T).",
            [("contribution", row) for row in rows],
        )
        # oracle: per group, each contributor counts once at its max value
        expected: dict[int, dict[int, float]] = {}
        for group, contributor, value in rows:
            bucket = expected.setdefault(group, {})
            bucket[contributor] = max(bucket.get(contributor, 0.0), value)
        for group, contributions in expected.items():
            target = sum(contributions.values())
            best = max(t for g, t in engine.query("total") if g == group)
            assert best == pytest.approx(target)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=9)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mcount_equals_distinct_count(self, rows):
        engine = solve(
            "member(G, Z), T = mcount(<Z>) -> size(G, T).",
            [("member", row) for row in rows],
        )
        expected: dict[int, set[int]] = {}
        for group, member in rows:
            expected.setdefault(group, set()).add(member)
        for group, members in expected.items():
            best = max(t for g, t in engine.query("size") if g == group)
            assert best == len(members)


class TestSetSemantics:
    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_duplicate_facts_are_idempotent(self, edges):
        once = solve(TC_PROGRAM, [("edge", e) for e in edges])
        twice = solve(TC_PROGRAM, [("edge", e) for e in edges + edges])
        assert set(once.query("path")) == set(twice.query("path"))

    @given(edge_lists())
    @settings(max_examples=20, deadline=None)
    def test_monotone_under_fact_addition(self, edges):
        if not edges:
            return
        smaller = solve(TC_PROGRAM, [("edge", e) for e in edges[:-1]])
        larger = solve(TC_PROGRAM, [("edge", e) for e in edges])
        assert set(smaller.query("path")) <= set(larger.query("path"))
