"""Tests for classifier training on planted ground truth."""

from repro.datagen import CompanySpec, generate_company_graph
from repro.linkage import (
    PARENT_OF,
    PARTNER_OF,
    SIBLING_OF,
    default_classifiers,
    persons_of,
    train_classifiers,
    training_pairs,
)


def small_world():
    return generate_company_graph(
        CompanySpec(persons=200, companies=50, seed=11, feature_noise=0.0)
    )


class TestTrainingPairs:
    def test_positive_pairs_labelled_true(self):
        graph, truth = small_world()
        examples = training_pairs(persons_of(graph), truth.links, PARTNER_OF, seed=1)
        positives = [pair for pair, label in examples if label]
        assert len(positives) == len(truth.pairs(PARTNER_OF))

    def test_negatives_generated(self):
        graph, truth = small_world()
        examples = training_pairs(
            persons_of(graph), truth.links, PARTNER_OF, negatives_per_positive=2, seed=1
        )
        negatives = sum(1 for _, label in examples if not label)
        positives = sum(1 for _, label in examples if label)
        assert negatives >= positives  # roughly 2x, budget-limited

    def test_negatives_are_not_true_links(self):
        graph, truth = small_world()
        examples = training_pairs(persons_of(graph), truth.links, SIBLING_OF, seed=2)
        linked_feature_pairs = {
            (id(l), id(r)) for (l, r), label in examples if label
        }
        assert linked_feature_pairs  # sanity: structure built

    def test_deterministic(self):
        graph, truth = small_world()
        a = training_pairs(persons_of(graph), truth.links, PARTNER_OF, seed=5)
        b = training_pairs(persons_of(graph), truth.links, PARTNER_OF, seed=5)
        assert len(a) == len(b)
        assert [label for _, label in a] == [label for _, label in b]


class TestTrainedClassifiers:
    def test_training_beats_or_matches_defaults_on_accuracy(self):
        """Accuracy over a balanced set of true links and random non-links:
        training learns honest u-probabilities, so it may trade a little
        recall for precision but must not lose overall accuracy."""
        import random

        graph, truth = small_world()
        persons = persons_of(graph)
        trained = {c.link_class: c for c in train_classifiers(persons, truth.links, seed=3)}
        untrained = {c.link_class: c for c in default_classifiers()}

        rng = random.Random(99)
        person_ids = sorted(persons)
        linked = {(x, y) for x, y, _ in truth.links}
        negatives = []
        while len(negatives) < len(truth.links):
            x, y = rng.sample(person_ids, 2)
            if (x, y) not in linked:
                negatives.append((x, y))

        def accuracy(classifiers):
            correct = total = 0
            for x, y, link_class in truth.links:
                total += 1
                if classifiers[link_class].probability(persons[x], persons[y]) > 0.5:
                    correct += 1
            for x, y in negatives:
                for classifier in classifiers.values():
                    total += 1
                    if classifier.probability(persons[x], persons[y]) <= 0.5:
                        correct += 1
            return correct / total

        assert accuracy(trained) >= accuracy(untrained) - 0.02

    def test_trained_recall_reasonable_without_noise(self):
        graph, truth = small_world()
        persons = persons_of(graph)
        trained = {c.link_class: c for c in train_classifiers(persons, truth.links, seed=3)}
        hits = total = 0
        for x, y, link_class in truth.links:
            total += 1
            if trained[link_class].probability(persons[x], persons[y]) > 0.5:
                hits += 1
        assert hits / total > 0.6

    def test_default_classifiers_cover_all_classes(self):
        classes = {c.link_class for c in default_classifiers()}
        assert classes == {PARTNER_OF, SIBLING_OF, PARENT_OF}

    def test_parent_classifier_is_directional(self):
        classifiers = {c.link_class: c for c in default_classifiers()}
        assert classifiers[PARENT_OF].direction is not None
        assert classifiers[PARTNER_OF].direction is None
