"""Tests for the columnar relation cache (interner, blocks, column store)
and the index-backed planner statistics it leans on."""

import math

import pytest

from repro.datalog import Database, Engine, parse_program
from repro.datalog.columns import MAX_CODES, NUMPY_AVAILABLE, ValueInterner
from repro.datalog.planner import plan_rule

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="columnar cache requires numpy"
)


class TestValueInterner:
    def test_python_equality_semantics(self):
        interner = ValueInterner()
        assert interner.intern(1) == interner.intern(1.0) == interner.intern(True)
        assert interner.intern("a") != interner.intern("b")
        assert interner.intern("a") == interner.intern("a")

    def test_each_nan_object_gets_its_own_code(self):
        interner = ValueInterner()
        first, second = float("nan"), float("nan")
        assert interner.intern(first) != interner.intern(second)
        assert interner.intern(first) == interner.intern(first)

    def test_lookup_of_unseen_value_is_minus_one(self):
        interner = ValueInterner()
        interner.intern("seen")
        assert interner.lookup("seen") == 0
        assert interner.lookup("never") == -1

    def test_tables_mark_safety_and_nan(self):
        interner = ValueInterner()
        codes = [
            interner.intern(2),            # safe int
            interner.intern(2**53 + 1),    # unsafe int
            interner.intern(0.5),          # float
            interner.intern(float("nan")),  # nan float
            interner.intern("text"),       # non-numeric
        ]
        floats, is_float, is_safe, is_nan = interner.tables()
        assert floats[codes[0]] == 2.0
        assert list(is_safe[codes]) == [True, False, True, True, False]
        assert list(is_float[codes]) == [False, False, True, True, False]
        assert list(is_nan[codes]) == [False, False, False, True, False]
        assert math.isnan(floats[codes[4]])

    def test_tables_cached_until_growth(self):
        interner = ValueInterner()
        interner.intern("a")
        first = interner.tables()
        again = interner.tables()
        assert first[0] is again[0]  # same numpy object, no rebuild
        interner.intern("b")
        grown = interner.tables()
        assert len(grown[0]) == 2

    def test_code_space_fits_pair_packing(self):
        # the executor packs (a << 32) | b; codes must stay below 2**31
        assert MAX_CODES == 2**31


class TestColumnStore:
    def _store(self, facts):
        database = Database(list(facts))
        return database, database.column_store()

    def test_block_contents_match_rows(self):
        database, store = self._store(
            [("edge", (1, 2)), ("edge", (2, 3)), ("edge", (1, 2))]
        )
        block = store.block("edge", 2)
        assert block.size == 2  # set semantics upstream: duplicate dropped
        values = [store.interner.values[c] for c in block.column(0).tolist()]
        assert values == [1, 2]

    def test_sync_appends_without_rebuilding(self):
        database, store = self._store([("edge", (1, 2))])
        block = store.block("edge", 2)
        database.add("edge", (3, 4))
        grown = store.block("edge", 2)
        assert grown is block  # the same block object grew in place
        assert grown.size == 2
        assert store.rebuilds == 0

    def test_block_growth_beyond_initial_capacity(self):
        database = Database()
        store = database.column_store()
        for n in range(100):
            database.add("num", (n,))
        block = store.block("num", 1)
        assert block.size == 100
        decoded = [store.interner.values[c] for c in block.column(0).tolist()]
        assert decoded == list(range(100))

    def test_removal_forces_rebuild(self):
        database, store = self._store([("edge", (1, 2)), ("edge", (2, 3))])
        store.block("edge", 2)
        database.remove("edge", (1, 2))
        block = store.block("edge", 2)
        assert store.rebuilds == 1
        assert block.size == 1
        assert store.interner.values[block.column(0)[0]] == 2

    def test_mixed_arities_get_separate_blocks(self):
        database, store = self._store([("p", (1,)), ("p", (1, 2))])
        assert store.block("p", 1).size == 1
        assert store.block("p", 2).size == 1
        assert store.block("p", 3) is None

    def test_empty_relation_has_no_block(self):
        database, store = self._store([])
        assert store.block("missing", 2) is None

    def test_sorted_keys_cached_per_version(self):
        database, store = self._store([("edge", (2, 9)), ("edge", (1, 8))])
        first = store.sorted_keys("edge", 2, (0,))
        again = store.sorted_keys("edge", 2, (0,))
        assert first is again
        assert first[1].tolist() == sorted(first[1].tolist())
        database.add("edge", (0, 7))
        rebuilt = store.sorted_keys("edge", 2, (0,))
        assert rebuilt is not first
        assert len(rebuilt[1]) == 3

    def test_sorted_keys_stable_within_equal_keys(self):
        database, store = self._store(
            [("own", ("a", n)) for n in range(5)] + [("own", ("b", 9))]
        )
        order, _keys = store.sorted_keys("own", 2, (0,))
        # all five "a" rows share the key; stable sort keeps insertion order
        assert order.tolist()[:5] == [0, 1, 2, 3, 4]


class TestSnapshotSharing:
    def test_database_copy_carries_blocks(self):
        database = Database([("edge", (1, 2))])
        store = database.column_store()
        store.preload("edge")
        clone = database.copy()
        clone_store = clone.column_store()
        assert clone_store.interner is store.interner  # append-only, shared
        assert clone_store.block("edge", 2).size == 1

    def test_clone_blocks_are_isolated_from_the_original(self):
        database = Database([("edge", (1, 2))])
        database.column_store().preload("edge")
        clone = database.copy()
        database.add("edge", (3, 4))
        assert clone.column_store().block("edge", 2).size == 1
        assert database.column_store().block("edge", 2).size == 2


class TestPlannerStatistics:
    """``cardinality``/``distinct_count`` serve the planner from maintained
    indexes only — asking must never build or mutate one (the replanning
    path runs against live compiled evaluators holding index buckets)."""

    def _database(self):
        return Database(
            [("own", ("a", "b", 0.5)), ("own", ("a", "c", 0.5)),
             ("own", ("b", "c", 1.0))]
        )

    def test_cardinality(self):
        database = self._database()
        assert database.cardinality("own") == 3
        assert database.cardinality("missing") == 0

    def test_distinct_count_exact_from_matching_index(self):
        database = self._database()
        database.index_for("own", (0,))
        assert database.distinct_count("own", (0,)) == 2

    def test_distinct_count_subset_lower_bound(self):
        database = self._database()
        database.index_for("own", (0,))
        # (0, 1) has no index; the (0,) index is a valid lower bound
        assert database.distinct_count("own", (0, 1)) == 2

    def test_distinct_count_without_usable_index_is_none(self):
        database = self._database()
        assert database.distinct_count("own", (0,)) is None
        database.index_for("own", (0,))
        assert database.distinct_count("own", (1,)) is None

    def test_stats_queries_never_create_indexes(self):
        database = self._database()
        database.index_for("own", (0,))
        before = {
            predicate: set(indexes)
            for predicate, indexes in database._indexes.items()
        }
        database.distinct_count("own", (0, 1))
        database.distinct_count("own", (2,))
        database.cardinality("own")
        after = {
            predicate: set(indexes)
            for predicate, indexes in database._indexes.items()
        }
        assert after == before

    def test_replanning_does_not_mutate_live_indexes(self):
        # plan the same rule twice over a grown database: the second
        # (re)planning round may consult statistics at will but must not
        # touch the index structures the compiled evaluators captured
        program = parse_program("own(X, Z, W), own(Z, Y, V) -> hop(X, Y).")
        database = self._database()
        engine = Engine(program, database)
        engine.run()
        indexes_before = {
            predicate: {key: id(index) for key, index in indexes.items()}
            for predicate, indexes in database._indexes.items()
        }
        rule = program.rules[0]
        plan_rule(rule, None, database)
        plan_rule(rule, rule.positive_positions()[0], database)
        indexes_after = {
            predicate: {key: id(index) for key, index in indexes.items()}
            for predicate, indexes in database._indexes.items()
        }
        assert indexes_after == indexes_before

    def test_removal_count_versions_the_row_list(self):
        database = self._database()
        assert database.removal_count("own") == 0
        database.remove("own", ("a", "b", 0.5))
        assert database.removal_count("own") == 1
        database.remove("own", ("zz", "zz", 0.0))  # absent: no version bump
        assert database.removal_count("own") == 1
