"""Regression tests for semi-naive seed unification and aggregate pruning.

Both bugs were engine-internal: naive evaluation was always correct, so
each test pins the semi-naive result against the naive one (or against
counters proving the wasted work is gone).
"""

import pytest

from repro.datalog import Database, Engine, parse_program, solve


def _run(program_text, facts, seminaive=True, provenance=False):
    engine = Engine(
        parse_program(program_text),
        Database(list(facts)),
        seminaive=seminaive,
        provenance=provenance,
    )
    engine.run()
    return engine


class TestSeedComplexTerms:
    """A semi-naive seed fact must satisfy the atom's complex terms.

    ``_bind_atom`` skips complex-term positions because the index pattern
    normally pre-filters them — but the seed atom ranges over raw delta
    facts with no pattern, so before the fix a violating seed fact
    unified anyway and derived unsound facts.
    """

    #: p facts are tagged with #g; the third rule demands an #h tag that
    #: no sound derivation ever produces.  The rule is recursive through
    #: p, so delta facts seed the complex-term atom directly.
    PROGRAM = """
    seed(X) -> p(X, #g(X)).
    p(X, Y) -> p(Y, X).
    seed(X), p(X, #h(X)) -> marked(X), p(X, X).
    """

    def test_violating_seed_fact_is_rejected(self):
        semi = _run(self.PROGRAM, [("seed", ("a",))])
        assert semi.query("marked") == []

    def test_matches_naive_evaluation(self):
        facts = [("seed", ("a",)), ("seed", ("b",))]
        semi = _run(self.PROGRAM, facts)
        naive = _run(self.PROGRAM, facts, seminaive=False)
        assert set(semi.database.all_facts()) == set(naive.database.all_facts())

    def test_satisfying_seed_fact_still_unifies(self):
        # same shape but checking the tag that *is* produced: the
        # complex-term filter must reject only violating facts
        program = """
        seed(X) -> p(X, #g(X)).
        p(X, Y) -> p(Y, X).
        seed(X), p(X, #g(X)) -> marked(X), p(X, X).
        """
        semi = _run(program, [("seed", ("a",))])
        naive = _run(program, [("seed", ("a",))], seminaive=False)
        assert sorted(semi.query("marked")) == [("a",)]
        assert set(semi.database.all_facts()) == set(naive.database.all_facts())

    def test_deferred_check_when_variables_bind_after_seed(self):
        # the seed atom p2(#g(X)) holds only a complex term; X is bound
        # by a literal matched *after* the seed, so the check must be
        # deferred until the binding is complete.  Before the fix the
        # violating delta fact p2("b"-less tag) yielded win("b").
        program = """
        tagged(X) -> p2(#g(X)), p2(X).
        start(X), p2(#g(X)) -> win(X), p2("sink").
        """
        facts = [("start", ("a",)), ("start", ("b",)), ("tagged", ("a",))]
        semi = _run(program, facts)
        naive = _run(program, facts, seminaive=False)
        assert sorted(semi.query("win")) == [("a",)]
        assert set(semi.database.all_facts()) == set(naive.database.all_facts())

    def test_arithmetic_complex_term_in_recursive_body(self):
        # expression (not Skolem) complex term: count down through n(X+1)
        program = """
        top(X) -> n(X).
        n(X), X > 0, Y = X - 1 -> n(Y).
        top(T), n(T + 1) -> overflow(T).
        """
        semi = _run(program, [("top", (3,))])
        naive = _run(program, [("top", (3,))], seminaive=False)
        assert semi.query("overflow") == []
        assert set(semi.database.all_facts()) == set(naive.database.all_facts())

    def test_provenance_survives_seed_complex_filtering(self):
        semi = _run(self.PROGRAM, [("seed", ("a",))], provenance=True)
        # every derived fact still has a derivation record
        for fact in semi.database.all_facts():
            if fact[0] == "seed":
                continue
            assert fact in semi.provenance


class TestMcountPruning:
    """``mcount`` must report improvement only for new contributor keys.

    Before the fix a contributor re-appearing with a *larger* value
    reported ``improved=True`` although the count was unchanged, which
    defeated ``_aggregate_skippable`` pruning and re-fired the rule tail.
    """

    def test_rule_firings_do_not_grow_on_repeated_contributions(self):
        engine = solve(
            "obs(G, Z, W), T = mcount(W, <Z>) -> size(G, T).",
            [("obs", ("g", "z", 1)), ("obs", ("g", "z", 2)), ("obs", ("g", "z", 3))],
        )
        assert sorted(engine.query("size")) == [("g", 1)]
        # one firing for the first contribution; the two repeats (same
        # contributor, growing value) are pruned before the head
        assert engine.stats.rule_firings == 1

    def test_new_contributors_still_improve(self):
        engine = solve(
            "obs(G, Z, W), T = mcount(W, <Z>) -> size(G, T).",
            [("obs", ("g", "z1", 5)), ("obs", ("g", "z2", 1)), ("obs", ("g", "z3", 2))],
        )
        assert max(t for _, t in engine.query("size")) == 3

    def test_count_unchanged_by_growing_values(self):
        # distinct contributors first, then the same contributors again
        # at larger values: the count stays put and no extra facts appear
        facts = [("obs", ("g", "z1", 1)), ("obs", ("g", "z2", 1)),
                 ("obs", ("g", "z1", 9)), ("obs", ("g", "z2", 9))]
        engine = solve("obs(G, Z, W), T = mcount(W, <Z>) -> size(G, T).", facts)
        assert max(t for _, t in engine.query("size")) == 2
        assert engine.stats.rule_firings == 2

    def test_recursive_mcount_matches_naive(self):
        program = """
        edge(X, Y) -> reach(X, Y).
        reach(X, Z), edge(Z, Y) -> reach(X, Y).
        reach(X, Y), T = mcount(<Y>) -> fanout(X, T).
        """
        facts = [("edge", (1, 2)), ("edge", (2, 3)), ("edge", (3, 1)),
                 ("edge", (1, 3))]
        semi = Engine(parse_program(program), Database(list(facts)))
        semi.run()
        naive = Engine(parse_program(program), Database(list(facts)), seminaive=False)
        naive.run()
        assert set(semi.database.all_facts()) == set(naive.database.all_facts())

    def test_msum_still_improves_on_growing_contribution(self):
        # the monotone-replacement semantics of the other aggregates is
        # untouched: a growing msum contribution must still re-fire
        engine = solve(
            "obs(G, Z, W), T = msum(W, <Z>) -> total(G, T).",
            [("obs", ("g", "z", 1)), ("obs", ("g", "z", 5))],
        )
        assert max(t for _, t in engine.query("total")) == pytest.approx(5)
        assert engine.stats.rule_firings == 2


class TestAtomPlanCachePinning:
    """``_atom_plan`` keys on ``id(atom)`` but must pin the atom object:
    ``ask()`` builds an ephemeral atom per query, and once it is garbage
    collected the next query's atom can land on the same id — before the
    fix it silently inherited the dead atom's term plan (a ground query
    could reuse a variable query's plan and return ``[]`` for a held
    fact)."""

    def test_stale_entry_under_reused_id_is_recomputed(self):
        engine = _run("edge(X, Y) -> path(X, Y).", [("edge", (1, 2))])
        from repro.datalog.atoms import Atom
        from repro.datalog.terms import Constant, Variable

        ground = Atom("path", (Constant(1), Constant(2)))
        stale = Atom("path", (Variable("X"), Variable("Y")))
        # simulate id reuse: the cache slot for `ground` holds a dead
        # atom's entry — the pin must force recomputation
        engine._atom_plan_cache[id(ground)] = (
            stale,
            engine._atom_plan(stale),
        )
        plan = engine._atom_plan(ground)
        assert plan == ((0, "const", 1), (1, "const", 2))

    def test_repeated_ground_asks_stay_exact(self):
        engine = _run("edge(X, Y) -> path(X, Y).", [("edge", (1, 2))])
        for _ in range(300):
            assert engine.ask("path(X, Y)") == [{"X": 1, "Y": 2}]
            assert engine.ask("path(1, 2)") == [{}]
            assert engine.ask("path(2, 1)") == []
