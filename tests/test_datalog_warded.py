"""Tests for the wardedness analysis (Warded Datalog± membership)."""

import pytest

import repro.core as _core

from repro.core import full_ownership_program
from repro.datalog import parse_program
from repro.datalog.warded import (
    affected_positions,
    check_wardedness,
    dangerous_variables,
    harmful_variables,
)
from repro.datalog.terms import Variable


class TestAffectedPositions:
    def test_existential_head_positions_affected(self):
        program = parse_program("own(X, Y) -> link(E, X, Y).")
        affected = affected_positions(program)
        assert ("link", 0) in affected
        assert ("link", 1) not in affected

    def test_propagation_through_rules(self):
        program = parse_program(
            """
            own(X, Y) -> link(E, X, Y).
            link(E, X, Y) -> has_id(E).
            """
        )
        affected = affected_positions(program)
        assert ("has_id", 0) in affected

    def test_join_with_unaffected_position_blocks_propagation(self):
        # E also occurs at an unaffected position (base relation), so it
        # is not harmful and does not propagate
        program = parse_program(
            """
            own(X, Y) -> link(E, X, Y).
            link(E, X, Y), registry(E) -> has_id(E).
            """
        )
        affected = affected_positions(program)
        assert ("has_id", 0) not in affected

    def test_datalog_without_existentials_has_none(self):
        program = parse_program(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """
        )
        assert affected_positions(program) == set()


class TestHarmfulAndDangerous:
    def test_harmful_variable_identified(self):
        program = parse_program(
            """
            own(X, Y) -> link(E, X, Y).
            link(E, X, Y) -> seen(E, X).
            """
        )
        affected = affected_positions(program)
        rule = program.rules[1]
        assert Variable("E") in harmful_variables(rule, affected)
        assert Variable("X") not in harmful_variables(rule, affected)
        assert Variable("E") in dangerous_variables(rule, affected)

    def test_harmful_but_not_dangerous(self):
        program = parse_program(
            """
            own(X, Y) -> link(E, X, Y).
            link(E, X, Y) -> connected(X, Y).
            """
        )
        affected = affected_positions(program)
        rule = program.rules[1]
        assert Variable("E") in harmful_variables(rule, affected)
        assert dangerous_variables(rule, affected) == set()


class TestWardedness:
    def test_plain_datalog_is_warded(self):
        program = parse_program(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """
        )
        assert check_wardedness(program)

    def test_single_ward_accepted(self):
        program = parse_program(
            """
            person(X) -> owns_something(X, E).
            owns_something(X, E) -> thing(E).
            """
        )
        assert check_wardedness(program)

    def test_dangerous_join_rejected(self):
        # E (a possible null) is joined across two atoms and exported:
        # the dangerous variable is shared with a second atom through a
        # harmful variable -> not warded
        program = parse_program(
            """
            a(X) -> p(X, E).
            b(X) -> q(X, E).
            p(X, E), q(Y, E) -> r(E).
            """
        )
        report = check_wardedness(program)
        assert not report.warded
        assert report.violations

    def test_paper_programs_are_warded(self):
        """The reproduction's own reasoning stack must live in the warded
        fragment — that is the paper's scalability argument."""
        report = check_wardedness(full_ownership_program())
        assert report.warded, report.violations


class TestPaperProgramsIndividually:
    """Each Algorithm's rule set must be warded on its own vocabulary."""

    @pytest.mark.parametrize("build", [
        lambda: _core.input_mapping(True),
        lambda: _core.control_program(),
        lambda: _core.close_link_program(),
        lambda: _core.paper_close_link_program(),
        lambda: _core.family_control_program(),
        lambda: _core.family_close_link_program(),
        lambda: _core.link_creation(),
        lambda: _core.output_mapping(),
        lambda: _core.influence_program(),
    ])
    def test_program_is_warded(self, build):
        report = check_wardedness(parse_program(build()))
        assert report.warded, report.violations
