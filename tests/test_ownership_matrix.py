"""Tests for integrated ownership (matrix walk-sum) and UBO detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompanyGraph, figure1_graph
from repro.ownership import (
    BeneficialOwner,
    accumulated_ownership_from,
    all_beneficial_owners,
    beneficial_owners,
    integrated_ownership,
    integrated_ownership_from,
    integrated_ownership_matrix,
    opaque_companies,
    ownership_matrix,
)


def cross_holding() -> CompanyGraph:
    """p owns 60% of a; a and b hold 50%/40% of each other.

    Analytically: y_a = 0.6 / (1 - 0.2) = 0.75, y_b = 0.5 * y_a = 0.375.
    """
    graph = CompanyGraph()
    graph.add_person("p")
    graph.add_company("a")
    graph.add_company("b")
    graph.add_shareholding("p", "a", 0.6)
    graph.add_shareholding("a", "b", 0.5)
    graph.add_shareholding("b", "a", 0.4)
    return graph


class TestOwnershipMatrix:
    def test_entries(self):
        graph = cross_holding()
        nodes, matrix = ownership_matrix(graph)
        index = {node: i for i, node in enumerate(nodes)}
        assert matrix[index["p"], index["a"]] == pytest.approx(0.6)
        assert matrix[index["b"], index["a"]] == pytest.approx(0.4)
        assert matrix[index["p"], index["b"]] == 0.0

    def test_parallel_edges_sum(self):
        graph = CompanyGraph()
        graph.add_company("a")
        graph.add_company("b")
        graph.add_shareholding("a", "b", 0.2)
        graph.add_shareholding("a", "b", 0.3)
        nodes, matrix = ownership_matrix(graph)
        index = {node: i for i, node in enumerate(nodes)}
        assert matrix[index["a"], index["b"]] == pytest.approx(0.5)

    def test_empty_graph(self):
        nodes, matrix = integrated_ownership_matrix(CompanyGraph())
        assert nodes == [] and matrix.shape == (0, 0)


class TestMixedIdOrdering:
    """Node ids that stringify identically (1 vs "1") used to get an
    ambiguous matrix order from ``sorted(key=str)`` — timsort stability
    made it depend on dict insertion order.  The frame's intern order
    breaks the tie deterministically by type."""

    @staticmethod
    def build(first_int: bool) -> CompanyGraph:
        graph = CompanyGraph()
        order = [1, "1"] if first_int else ["1", 1]
        for owner in order:
            graph.add_company(owner)
        graph.add_company("t")
        graph.add_shareholding(1, "t", 0.4)
        graph.add_shareholding("1", "t", 0.2)
        return graph

    def test_order_is_insertion_independent(self):
        nodes_a, matrix_a = ownership_matrix(self.build(first_int=True))
        nodes_b, matrix_b = ownership_matrix(self.build(first_int=False))
        assert nodes_a == nodes_b
        assert (matrix_a != matrix_b).nnz == 0

    def test_colliding_ids_keep_distinct_rows(self):
        nodes, matrix = ownership_matrix(self.build(first_int=True))
        assert len(nodes) == 3
        index = {node: i for i, node in enumerate(nodes)}
        assert len(index) == 3  # bijective: 1 and "1" are separate rows
        assert matrix[index[1], index["t"]] == pytest.approx(0.4)
        assert matrix[index["1"], index["t"]] == pytest.approx(0.2)

    def test_integrated_ownership_distinguishes_colliding_sources(self):
        graph = self.build(first_int=True)
        assert integrated_ownership_from(graph, 1) == {"t": pytest.approx(0.4)}
        assert integrated_ownership_from(graph, "1") == {"t": pytest.approx(0.2)}


class TestIntegratedOwnership:
    def test_cyclic_analytic_solution(self):
        graph = cross_holding()
        assert integrated_ownership(graph, "p", "a") == pytest.approx(0.75)
        assert integrated_ownership(graph, "p", "b") == pytest.approx(0.375)

    def test_matches_accumulated_on_dag(self):
        graph = figure1_graph()
        for source in ("P1", "P2"):
            integrated = integrated_ownership_from(graph, source)
            accumulated = accumulated_ownership_from(graph, source)
            assert set(integrated) == {k for k, v in accumulated.items() if v > 1e-12}
            for target, value in integrated.items():
                assert value == pytest.approx(accumulated[target])

    def test_from_source_matches_full_matrix(self):
        graph = cross_holding()
        nodes, matrix = integrated_ownership_matrix(graph)
        index = {node: i for i, node in enumerate(nodes)}
        per_source = integrated_ownership_from(graph, "p")
        for target, value in per_source.items():
            assert value == pytest.approx(float(matrix[index["p"], index[target]]))

    def test_missing_source(self):
        graph = cross_holding()
        assert integrated_ownership_from(graph, "nobody") == {}
        assert integrated_ownership(graph, "nobody", "a") == 0.0

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_dag_property_integrated_equals_accumulated(self, n, seed):
        import random

        rng = random.Random(seed)
        graph = CompanyGraph()
        for i in range(n):
            graph.add_company(f"c{i}")
        for target in range(1, n):
            budget = 1.0
            for source in range(target):
                if rng.random() < 0.5:
                    share = min(round(rng.uniform(0.05, 0.5), 3), budget)
                    if share >= 0.05:
                        graph.add_shareholding(f"c{source}", f"c{target}", share)
                        budget -= share
        integrated = integrated_ownership_from(graph, "c0")
        accumulated = accumulated_ownership_from(graph, "c0")
        for target, value in integrated.items():
            assert value == pytest.approx(accumulated[target], abs=1e-9)


class TestUbo:
    def test_figure1_ubo_of_l(self):
        graph = figure1_graph()
        owners = beneficial_owners(graph, "L")
        assert [o.person for o in owners] == ["P2"]
        assert owners[0].integrated_share == pytest.approx(0.3104, abs=1e-4)
        assert not owners[0].controls
        assert owners[0].basis == "ownership"

    def test_controller_below_threshold_still_ubo(self):
        # a three-level 51% pyramid: integrated share 0.51^3 = 0.13 < 25%,
        # yet p controls t through the vote-majority chain
        graph = CompanyGraph()
        graph.add_person("p")
        graph.add_company("a")
        graph.add_company("b")
        graph.add_company("t")
        graph.add_shareholding("p", "a", 0.51)
        graph.add_shareholding("a", "b", 0.51)
        graph.add_shareholding("b", "t", 0.51)
        owners = beneficial_owners(graph, "t")
        assert len(owners) == 1
        assert owners[0].controls
        assert owners[0].integrated_share < 0.25
        assert owners[0].basis == "control"

    def test_dispersed_company_is_opaque(self):
        graph = CompanyGraph()
        for i in range(6):
            graph.add_person(f"p{i}")
        graph.add_company("c")
        for i in range(6):
            graph.add_shareholding(f"p{i}", "c", 0.16)
        assert opaque_companies(graph) == ["c"]

    def test_all_beneficial_owners_consistent(self):
        graph = figure1_graph()
        everything = all_beneficial_owners(graph)
        for company, owners in everything.items():
            assert owners == beneficial_owners(graph, company)

    def test_company_shareholder_is_not_ubo(self):
        """Only natural persons can be beneficial owners."""
        graph = CompanyGraph()
        graph.add_company("holding")
        graph.add_company("sub")
        graph.add_shareholding("holding", "sub", 0.9)
        assert beneficial_owners(graph, "sub") == []
        assert "sub" in opaque_companies(graph)


class TestLowRankUpdate:
    """Sherman-Morrison-Woodbury updates of the cached ownership solver."""

    @staticmethod
    def _chain(n=12, extra=()):
        import numpy as np  # noqa: F401 — scipy stack guaranteed with frames

        graph = CompanyGraph()
        graph.add_person("p")
        for i in range(n):
            graph.add_company(f"c{i}")
        graph.add_shareholding("p", "c0", 0.8)
        for i in range(n - 1):
            graph.add_shareholding(f"c{i}", f"c{i+1}", 0.6)
        for owner, company, share in extra:
            graph.add_shareholding(owner, company, share)
        return graph

    def test_single_edge_update_matches_fresh_factorisation(self):
        import numpy as np

        from repro.graph.columnar import GraphFrame
        from repro.ownership.matrix import try_low_rank_update

        old_graph = self._chain()
        old_frame = GraphFrame.of(old_graph)
        old_frame.ownership_system()  # factorise the base

        new_graph = self._chain(extra=[("c3", "c7", 0.25)])
        updated = GraphFrame.of(new_graph)
        fresh = GraphFrame.of(new_graph)

        assert try_low_rank_update(old_frame, updated)
        assert updated.has_ownership_system()
        _, _, corrected = updated.ownership_system()
        assert corrected.low_rank_depth == 1
        _, _, reference = fresh.ownership_system()
        rhs = np.eye(len(updated.nodes))[:, 0]
        assert np.allclose(corrected(rhs), reference(rhs), atol=1e-12)

    def test_weight_change_and_multi_edge_delta(self):
        import numpy as np

        from repro.graph.columnar import GraphFrame
        from repro.ownership.matrix import try_low_rank_update

        old_graph = self._chain()
        old_frame = GraphFrame.of(old_graph)
        old_frame.ownership_system()

        new_graph = CompanyGraph()
        new_graph.add_person("p")
        for i in range(12):
            new_graph.add_company(f"c{i}")
        new_graph.add_shareholding("p", "c0", 0.8)
        for i in range(11):
            # every chain weight shifts: rank-11 delta, still <= max_rank
            new_graph.add_shareholding(f"c{i}", f"c{i+1}", 0.55)
        updated = GraphFrame.of(new_graph)
        assert try_low_rank_update(old_frame, updated)
        _, _, corrected = updated.ownership_system()
        _, _, reference = GraphFrame.of(new_graph).ownership_system()
        rhs = np.ones(len(updated.nodes))
        assert np.allclose(corrected(rhs), reference(rhs), atol=1e-10)

    def test_node_set_change_refuses(self):
        from repro.graph.columnar import GraphFrame
        from repro.ownership.matrix import try_low_rank_update

        old_frame = GraphFrame.of(self._chain())
        old_frame.ownership_system()
        bigger = self._chain()
        bigger.add_company("extra")
        new_frame = GraphFrame.of(bigger)
        assert not try_low_rank_update(old_frame, new_frame)
        assert not new_frame.has_ownership_system()

    def test_rank_budget_refuses_large_deltas(self):
        from repro.graph.columnar import GraphFrame
        from repro.ownership.matrix import try_low_rank_update

        old_frame = GraphFrame.of(self._chain())
        old_frame.ownership_system()
        new_frame = GraphFrame.of(self._chain(extra=[("c0", "c5", 0.1)]))
        assert not try_low_rank_update(old_frame, new_frame, max_rank=0)

    def test_identical_weights_reuse_old_solver(self):
        from repro.graph.columnar import GraphFrame
        from repro.ownership.matrix import try_low_rank_update

        old_frame = GraphFrame.of(self._chain())
        _, _, old_solver = old_frame.ownership_system()
        new_frame = GraphFrame.of(self._chain())
        assert try_low_rank_update(old_frame, new_frame)
        _, _, adopted = new_frame.ownership_system()
        assert adopted is old_solver  # zero-rank delta: no correction layer

    def test_chain_depth_limit_forces_refactorisation(self):
        from repro.graph.columnar import GraphFrame
        from repro.ownership.matrix import try_low_rank_update

        frame = GraphFrame.of(self._chain())
        frame.ownership_system()
        for step in range(3):
            graph = self._chain(extra=[("c0", "c4", 0.02 * (step + 1))])
            nxt = GraphFrame.of(graph)
            assert try_low_rank_update(frame, nxt, max_chain=3)
            frame = nxt
        _, _, solver = frame.ownership_system()
        assert solver.low_rank_depth == 3
        final = GraphFrame.of(self._chain(extra=[("c0", "c4", 0.99)]))
        assert not try_low_rank_update(frame, final, max_chain=3)
