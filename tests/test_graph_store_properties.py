"""Property-based tests: GraphStore vs a naive un-indexed oracle.

Random interleavings of ``create_node`` / ``set_property`` /
``delete_node`` / edge create/remove / ``ensure_index`` /
``drop_index``-then-``ensure_index`` / ``find_nodes`` run against both
the indexed store and a plain-dict oracle that re-scans everything on
every query.  Whatever the order of index creation relative to writes
and removals, every query must return exactly the oracle's answer —
this pins down the ``_MISSING`` sentinel semantics (``None`` is a
value; a missing property matches nothing) on both the indexed and the
scanning path, and that ``delete_node``/``remove_edge`` leave the
label/property indexes, the adjacency, and the graph's generation
counter (which invalidates cached columnar frames) in sync.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphFrame, GraphStore

NODE_IDS = ("n0", "n1", "n2", "n3", "n4")
LABELS = (None, "P", "C")
PROPS = ("p", "q")
VALUES = (None, 0, 1, "v")

node_ids = st.sampled_from(NODE_IDS)
labels = st.sampled_from(LABELS)
props = st.sampled_from(PROPS)
values = st.sampled_from(VALUES)
criteria = st.dictionaries(props, values, max_size=2)

operations = st.one_of(
    st.tuples(st.just("create"), node_ids, labels, criteria),
    st.tuples(st.just("set"), node_ids, props, values),
    st.tuples(st.just("delete"), node_ids),
    st.tuples(st.just("edge"), node_ids, node_ids),
    st.tuples(st.just("unedge"), node_ids, node_ids),
    st.tuples(st.just("index"), props, labels),
    st.tuples(st.just("reindex"), props, labels),
    st.tuples(st.just("find"), labels, criteria),
)


class Oracle:
    """The obviously-correct model: dicts/lists, re-scanned on every query."""

    def __init__(self):
        self.nodes = {}  # id -> (label, properties)
        self.edges = []  # (source, target) pairs, insertion order

    def create(self, node_id, label, properties):
        self.nodes[node_id] = (label, dict(properties))

    def set(self, node_id, prop, value):
        self.nodes[node_id][1][prop] = value

    def delete(self, node_id):
        del self.nodes[node_id]
        self.edges = [
            (s, t) for s, t in self.edges if s != node_id and t != node_id
        ]

    def add_edge(self, source, target):
        self.edges.append((source, target))

    def remove_edge(self, source, target):
        self.edges.remove((source, target))

    def find(self, label, criteria):
        return {
            node_id
            for node_id, (node_label, properties) in self.nodes.items()
            if (label is None or node_label == label)
            and all(p in properties and properties[p] == v for p, v in criteria.items())
        }


def run_interleaving(ops):
    store = GraphStore()
    oracle = Oracle()
    for op in ops:
        kind = op[0]
        if kind == "create":
            _, node_id, label, properties = op
            if node_id in oracle.nodes:
                continue  # duplicate create raises in both worlds; skip
            store.create_node(node_id, label, **properties)
            oracle.create(node_id, label, properties)
        elif kind == "set":
            _, node_id, prop, value = op
            if node_id not in oracle.nodes:
                continue
            store.set_property(node_id, prop, value)
            oracle.set(node_id, prop, value)
        elif kind == "delete":
            _, node_id = op
            if node_id not in oracle.nodes:
                continue
            store.delete_node(node_id)
            oracle.delete(node_id)
        elif kind == "edge":
            _, source, target = op
            if source not in oracle.nodes or target not in oracle.nodes:
                continue
            store.create_edge(source, target, "E")
            oracle.add_edge(source, target)
        elif kind == "unedge":
            _, source, target = op
            edge = next(store.match_edges("E", source=source, target=target), None)
            if edge is None:
                continue
            store.remove_edge(edge.id)
            oracle.remove_edge(source, target)
        elif kind == "index":
            _, prop, label = op
            store.ensure_index(prop, label)
        elif kind == "reindex":
            # the stale-index recovery path: drop, then rebuild from the
            # live graph — must behave exactly like a fresh ensure_index
            _, prop, label = op
            store.drop_index(prop, label)
            store.ensure_index(prop, label)
        elif kind == "find":
            _, label, criteria = op
            got = {node.id for node in store.find_nodes(label, **criteria)}
            assert got == oracle.find(label, criteria), (op, sorted(oracle.nodes))
    return store, oracle


def check_final_state(store, oracle):
    """Graph-level invariants after any interleaving.

    The adjacency must match the oracle's edge multiset (deletes cascade),
    and a columnar frame built now must agree with the live graph — i.e.
    every mutation above went through the generation-bumping write
    surface, so frame caching can never serve a stale view.
    """
    got_edges = sorted((e.source, e.target) for e in store.graph.edges())
    assert got_edges == sorted(oracle.edges)
    frame = GraphFrame.of(store.graph)
    assert frame.is_current(store.graph)
    assert sorted(map(str, frame.nodes)) == sorted(map(str, oracle.nodes))
    assert frame.edge_count == len(oracle.edges)
    for node_id in oracle.nodes:
        successors = sorted(map(str, frame.node_ids_at(frame.successor_codes(node_id))))
        naive = sorted(str(t) for s, t in oracle.edges if s == node_id)
        assert successors == naive


@settings(max_examples=200, deadline=None)
@given(st.lists(operations, max_size=40))
def test_store_matches_oracle_under_random_interleavings(ops):
    store, oracle = run_interleaving(ops)
    # exhaustive final sweep: every (label, prop, value) query agrees
    for label in LABELS:
        for prop in PROPS:
            for value in VALUES:
                query = {prop: value}
                got = {node.id for node in store.find_nodes(label, **query)}
                assert got == oracle.find(label, query), (label, query)
        assert {n.id for n in store.find_nodes(label)} == oracle.find(label, {})
    check_final_state(store, oracle)


@settings(max_examples=100, deadline=None)
@given(st.lists(operations, max_size=30), criteria)
def test_two_criteria_queries_match_oracle(ops, query):
    store, oracle = run_interleaving(ops)
    for label in LABELS:
        got = {node.id for node in store.find_nodes(label, **query)}
        assert got == oracle.find(label, query), (label, query)


def test_delete_then_reindex_rebuilds_from_live_graph():
    store = GraphStore()
    store.create_node("a", "P", p=1)
    store.create_node("b", "P", p=1)
    store.ensure_index("p", "P")
    store.delete_node("a")
    assert {n.id for n in store.find_nodes("P", p=1)} == {"b"}
    # drop + rebuild must yield the same answers as the scan path
    assert store.drop_index("p", "P") is True
    assert store.drop_index("p", "P") is False  # idempotent on absence
    assert {n.id for n in store.find_nodes("P", p=1)} == {"b"}
    store.ensure_index("p", "P")
    assert {n.id for n in store.find_nodes("P", p=1)} == {"b"}


def test_store_set_property_bumps_graph_generation():
    store = GraphStore()
    store.create_node("a", "P")
    before = store.graph.generation
    store.set_property("a", "p", 1)
    assert store.graph.generation > before  # cached frames get invalidated
