"""Property-based tests: GraphStore vs a naive un-indexed oracle.

Random interleavings of ``create_node`` / ``set_property`` /
``delete_node`` / ``ensure_index`` / ``find_nodes`` run against both the
indexed store and a plain-dict oracle that re-scans everything on every
query.  Whatever the order of index creation relative to writes, every
query must return exactly the oracle's answer — this pins down the
``_MISSING`` sentinel semantics (``None`` is a value; a missing property
matches nothing) on both the indexed and the scanning path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphStore

NODE_IDS = ("n0", "n1", "n2", "n3", "n4")
LABELS = (None, "P", "C")
PROPS = ("p", "q")
VALUES = (None, 0, 1, "v")

node_ids = st.sampled_from(NODE_IDS)
labels = st.sampled_from(LABELS)
props = st.sampled_from(PROPS)
values = st.sampled_from(VALUES)
criteria = st.dictionaries(props, values, max_size=2)

operations = st.one_of(
    st.tuples(st.just("create"), node_ids, labels, criteria),
    st.tuples(st.just("set"), node_ids, props, values),
    st.tuples(st.just("delete"), node_ids),
    st.tuples(st.just("index"), props, labels),
    st.tuples(st.just("find"), labels, criteria),
)


class Oracle:
    """The obviously-correct model: a dict, re-scanned on every query."""

    def __init__(self):
        self.nodes = {}  # id -> (label, properties)

    def create(self, node_id, label, properties):
        self.nodes[node_id] = (label, dict(properties))

    def set(self, node_id, prop, value):
        self.nodes[node_id][1][prop] = value

    def delete(self, node_id):
        del self.nodes[node_id]

    def find(self, label, criteria):
        return {
            node_id
            for node_id, (node_label, properties) in self.nodes.items()
            if (label is None or node_label == label)
            and all(p in properties and properties[p] == v for p, v in criteria.items())
        }


def run_interleaving(ops):
    store = GraphStore()
    oracle = Oracle()
    for op in ops:
        kind = op[0]
        if kind == "create":
            _, node_id, label, properties = op
            if node_id in oracle.nodes:
                continue  # duplicate create raises in both worlds; skip
            store.create_node(node_id, label, **properties)
            oracle.create(node_id, label, properties)
        elif kind == "set":
            _, node_id, prop, value = op
            if node_id not in oracle.nodes:
                continue
            store.set_property(node_id, prop, value)
            oracle.set(node_id, prop, value)
        elif kind == "delete":
            _, node_id = op
            if node_id not in oracle.nodes:
                continue
            store.delete_node(node_id)
            oracle.delete(node_id)
        elif kind == "index":
            _, prop, label = op
            store.ensure_index(prop, label)
        elif kind == "find":
            _, label, criteria = op
            got = {node.id for node in store.find_nodes(label, **criteria)}
            assert got == oracle.find(label, criteria), (op, sorted(oracle.nodes))
    return store, oracle


@settings(max_examples=200, deadline=None)
@given(st.lists(operations, max_size=40))
def test_store_matches_oracle_under_random_interleavings(ops):
    store, oracle = run_interleaving(ops)
    # exhaustive final sweep: every (label, prop, value) query agrees
    for label in LABELS:
        for prop in PROPS:
            for value in VALUES:
                query = {prop: value}
                got = {node.id for node in store.find_nodes(label, **query)}
                assert got == oracle.find(label, query), (label, query)
        assert {n.id for n in store.find_nodes(label)} == oracle.find(label, {})


@settings(max_examples=100, deadline=None)
@given(st.lists(operations, max_size=30), criteria)
def test_two_criteria_queries_match_oracle(ops, query):
    store, oracle = run_interleaving(ops)
    for label in LABELS:
        got = {node.id for node in store.find_nodes(label, **query)}
        assert got == oracle.find(label, query), (label, query)
