"""Tests for CSV and JSON import/export."""

import pytest

from repro.graph import (
    CompanyGraph,
    figure1_graph,
    from_json,
    load_json,
    read_company_csv,
    save_json,
    to_json,
    write_company_csv,
)


@pytest.fixture
def graph():
    g = CompanyGraph()
    g.add_person("p1", name="Anna", surname="Rossi", birth_date="1980-02-03",
                 birth_place="Roma", sex="F", address="Via Roma 1, Roma")
    g.add_company("c1", name="Acme SRL", address="Via Milano 2, Milano",
                  incorporation_date="1999-01-01", legal_form="SRL")
    g.add_shareholding("p1", "c1", 0.75, right="ownership")
    return g


class TestCsv:
    def test_roundtrip(self, graph, tmp_path):
        write_company_csv(graph, tmp_path)
        back = read_company_csv(tmp_path)
        assert back.node_count == 2
        assert back.share("p1", "c1") == pytest.approx(0.75)
        assert back.node("p1").get("surname") == "Rossi"
        assert next(back.shareholdings()).get("right") == "ownership"

    def test_files_created(self, graph, tmp_path):
        write_company_csv(graph, tmp_path)
        for name in ("companies.csv", "persons.csv", "shareholdings.csv"):
            assert (tmp_path / name).exists()

    def test_empty_graph(self, tmp_path):
        write_company_csv(CompanyGraph(), tmp_path)
        back = read_company_csv(tmp_path)
        assert back.node_count == 0


class TestJson:
    def test_roundtrip_preserves_everything(self, graph):
        back = from_json(to_json(graph))
        assert back.node_count == graph.node_count
        assert back.edge_count == graph.edge_count
        assert back.share("p1", "c1") == pytest.approx(0.75)

    def test_roundtrip_preserves_edge_ids(self, graph):
        original_ids = {edge.id for edge in graph.edges()}
        back = from_json(to_json(graph))
        assert {edge.id for edge in back.edges()} == original_ids

    def test_share_validation_applies_on_load(self, graph):
        payload = to_json(graph)
        payload["edges"][0]["properties"]["w"] = 7.5
        with pytest.raises(Exception):
            from_json(payload)

    def test_plain_property_graph_mode(self, graph):
        back = from_json(to_json(graph), company_graph=False)
        assert back.node_count == graph.node_count

    def test_file_roundtrip(self, tmp_path):
        graph = figure1_graph()
        path = tmp_path / "fig1.json"
        save_json(graph, path)
        back = load_json(path)
        assert back.node_count == 10
        assert back.share("P1", "C") == pytest.approx(0.8)


class TestStreamingLoaders:
    def test_iter_graph_json_streams_elements(self, tmp_path):
        from repro.graph.io import iter_graph_json

        graph = figure1_graph()
        path = tmp_path / "fig1.json"
        save_json(graph, path)
        # a 7-byte chunk forces refills inside keys, strings, and numbers
        elems = list(iter_graph_json(path, chunk_size=7))
        assert [k for k, _ in elems].count("nodes") == graph.node_count
        assert [k for k, _ in elems].count("edges") == graph.edge_count

    def test_streamed_load_matches_in_memory(self, tmp_path):
        import json as jsonlib

        graph = figure1_graph()
        path = tmp_path / "fig1.json"
        save_json(graph, path)
        streamed = load_json(path)
        in_memory = from_json(jsonlib.loads(path.read_text()))

        def model(g):
            return (
                [(n.id, n.label, n.properties) for n in g.nodes()],
                [(e.id, e.source, e.target, e.label, e.properties) for e in g.edges()],
            )

        assert model(streamed) == model(in_memory)

    def test_extra_top_level_keys_skipped(self, tmp_path):
        import json as jsonlib

        path = tmp_path / "extra.json"
        path.write_text(jsonlib.dumps({
            "meta": {"exported": "today", "count": 1},
            "nodes": [{"id": "P1", "label": "P"}],
            "edges": [],
        }))
        back = load_json(path)
        assert back.node_count == 1
        assert back.edge_count == 0

    def test_truncated_json_raises(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"nodes": [{"id": "P1"')
        with pytest.raises(ValueError):
            load_json(path)

    def test_csv_sink_streams_rows(self, tmp_path, graph):
        from repro.graph.io import load_company_csv_into

        write_company_csv(graph, tmp_path)

        class Recorder:
            def __init__(self):
                self.calls = []

            def add_company(self, company_id, **props):
                self.calls.append(("company", company_id))

            def add_person(self, person_id, **props):
                self.calls.append(("person", person_id))

            def add_shareholding(self, owner, company, share, **props):
                self.calls.append(("share", owner, company, share))

        sink = load_company_csv_into(tmp_path, Recorder())
        kinds = [c[0] for c in sink.calls]
        assert kinds.count("company") == sum(1 for _ in graph.companies())
        assert kinds.count("person") == sum(1 for _ in graph.persons())
        assert kinds.count("share") == sum(1 for _ in graph.shareholdings())
