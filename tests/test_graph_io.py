"""Tests for CSV and JSON import/export."""

import pytest

from repro.graph import (
    CompanyGraph,
    figure1_graph,
    from_json,
    load_json,
    read_company_csv,
    save_json,
    to_json,
    write_company_csv,
)


@pytest.fixture
def graph():
    g = CompanyGraph()
    g.add_person("p1", name="Anna", surname="Rossi", birth_date="1980-02-03",
                 birth_place="Roma", sex="F", address="Via Roma 1, Roma")
    g.add_company("c1", name="Acme SRL", address="Via Milano 2, Milano",
                  incorporation_date="1999-01-01", legal_form="SRL")
    g.add_shareholding("p1", "c1", 0.75, right="ownership")
    return g


class TestCsv:
    def test_roundtrip(self, graph, tmp_path):
        write_company_csv(graph, tmp_path)
        back = read_company_csv(tmp_path)
        assert back.node_count == 2
        assert back.share("p1", "c1") == pytest.approx(0.75)
        assert back.node("p1").get("surname") == "Rossi"
        assert next(back.shareholdings()).get("right") == "ownership"

    def test_files_created(self, graph, tmp_path):
        write_company_csv(graph, tmp_path)
        for name in ("companies.csv", "persons.csv", "shareholdings.csv"):
            assert (tmp_path / name).exists()

    def test_empty_graph(self, tmp_path):
        write_company_csv(CompanyGraph(), tmp_path)
        back = read_company_csv(tmp_path)
        assert back.node_count == 0


class TestJson:
    def test_roundtrip_preserves_everything(self, graph):
        back = from_json(to_json(graph))
        assert back.node_count == graph.node_count
        assert back.edge_count == graph.edge_count
        assert back.share("p1", "c1") == pytest.approx(0.75)

    def test_roundtrip_preserves_edge_ids(self, graph):
        original_ids = {edge.id for edge in graph.edges()}
        back = from_json(to_json(graph))
        assert {edge.id for edge in back.edges()} == original_ids

    def test_share_validation_applies_on_load(self, graph):
        payload = to_json(graph)
        payload["edges"][0]["properties"]["w"] = 7.5
        with pytest.raises(Exception):
            from_json(payload)

    def test_plain_property_graph_mode(self, graph):
        back = from_json(to_json(graph), company_graph=False)
        assert back.node_count == graph.node_count

    def test_file_roundtrip(self, tmp_path):
        graph = figure1_graph()
        path = tmp_path / "fig1.json"
        save_json(graph, path)
        back = load_json(path)
        assert back.node_count == 10
        assert back.share("P1", "C") == pytest.approx(0.8)
