"""Shared-memory snapshot codec: encode/attach round trips.

The acceptance-critical property is **per-row identity**: a snapshot
attached from a segment must answer every endpoint payload byte-equal
to the in-process snapshot it was encoded from — including the
custom-threshold paths that recompute over the (attached, zero-copy)
columnar frame.
"""

import gc

import numpy as np
import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.graph.columnar import EXPORT_DTYPES, GraphFrame
from repro.service import shm as shm_codec
from repro.service.snapshot import SnapshotBuilder, SnapshotConfig


@pytest.fixture(scope="module")
def graph():
    g, _truth = generate_company_graph(CompanySpec(persons=30, companies=24, seed=11))
    return g


@pytest.fixture(scope="module")
def snapshot(graph):
    return SnapshotBuilder(SnapshotConfig()).build(graph)


@pytest.fixture()
def segment(snapshot):
    seg = shm_codec.encode_snapshot(snapshot)
    try:
        yield seg
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        try:
            seg.close()
        except BufferError:
            _PARKED_HANDLES.append(seg)


#: handles whose mapping outlived the test (views still referenced
#: somewhere in the frame); held so their __del__ never runs
_PARKED_HANDLES = []


def detach(attached):
    """Best-effort test cleanup of an attachment.

    The caller's own frame still references the snapshot, so the close
    may legitimately refuse (``BufferError``) — that contract is proven
    positively in ``test_close_succeeds_once_references_drop``, where
    the last reference is really gone.  The segment itself is unlinked
    by the fixture either way.
    """
    handle = attached.shm
    del attached
    gc.collect()
    try:
        handle.close()
    except BufferError:
        # park the handle: letting __del__ retry the close during a later
        # GC would surface as an unraisable-exception warning mid-suite
        _PARKED_HANDLES.append(handle)


class TestRoundTrip:
    def test_every_payload_is_identical(self, graph, snapshot, segment):
        attached = shm_codec.attach_snapshot(segment.name)
        companies = sorted((n.id for n in graph.companies()), key=str)
        persons = sorted((n.id for n in graph.persons()), key=str)
        try:
            assert attached.version == snapshot.version
            assert attached.created_at == snapshot.created_at
            assert attached.control_payload() == snapshot.control_payload()
            assert attached.close_links_payload() == snapshot.close_links_payload()
            assert attached.family_payload() == snapshot.family_payload()
            assert attached.ubo_payloads(companies) == snapshot.ubo_payloads(companies)
            assert attached.stats_payload() == snapshot.stats_payload()
            for node in persons[:5] + companies[:5]:
                assert attached.neighbors_payload(node, 2, None) == (
                    snapshot.neighbors_payload(node, 2, None)
                )
        finally:
            detach(attached)

    def test_custom_threshold_paths_recompute_identically(
        self, graph, snapshot, segment
    ):
        """Non-default thresholds bypass precomputed rows and reach the
        attached frame through ``GraphFrame.of`` — still identical."""
        attached = shm_codec.attach_snapshot(segment.name)
        companies = sorted((n.id for n in graph.companies()), key=str)[:10]
        try:
            assert GraphFrame.of(attached.graph) is attached.frame
            assert attached.control_payload(threshold=0.4) == (
                snapshot.control_payload(threshold=0.4)
            )
            assert attached.close_links_payload(0.35) == (
                snapshot.close_links_payload(0.35)
            )
            assert attached.ubo_payloads(companies, 0.15) == (
                snapshot.ubo_payloads(companies, 0.15)
            )
        finally:
            detach(attached)

    def test_buffers_are_zero_copy_readonly_views(self, segment):
        attached = shm_codec.attach_snapshot(segment.name)
        try:
            indptr, targets, positions = attached.frame.csr()
            for view in (indptr, targets, positions):
                assert not view.flags.owndata  # a view over the mapping
                assert not view.flags.writeable
            with pytest.raises(ValueError):
                targets[0] = 7
        finally:
            detach(attached)

    def test_two_attachments_share_physical_buffers(self, segment):
        a = shm_codec.attach_snapshot(segment.name)
        b = shm_codec.attach_snapshot(segment.name)
        try:
            src_a = a.frame.edge_src
            src_b = b.frame.edge_src
            assert np.shares_memory(src_a, src_a)  # sanity
            assert src_a.tolist() == src_b.tolist()
            # same segment offset: both are views at identical addresses
            # within their own mmaps of one shared object
            assert a.segment_name == b.segment_name
        finally:
            detach(a)
            detach(b)


class TestLifecycle:
    def test_close_refuses_while_views_are_alive(self, segment):
        attached = shm_codec.attach_snapshot(segment.name)
        view = attached.frame.edge_src
        with pytest.raises(BufferError):
            attached.close()
        del view
        detach(attached)

    def test_close_succeeds_once_references_drop(self, segment):
        """The refcount contract the worker sweep is built on: close
        refuses while the snapshot lives, lands once it is collected."""
        attached = shm_codec.attach_snapshot(segment.name)
        handle = attached.shm
        with pytest.raises(BufferError):
            handle.close()
        attached = None  # noqa: F841 - drop the one strong reference
        gc.collect()  # graph <-> frame cycle needs the collector
        handle.close()  # must not raise now

    def test_unlink_segment(self, snapshot):
        seg = shm_codec.encode_snapshot(snapshot)
        name = seg.name
        assert shm_codec.unlink_segment(name) is True
        seg.close()
        assert shm_codec.unlink_segment(name) is False
        with pytest.raises(shm_codec.SegmentError):
            shm_codec.attach_snapshot(name)

    def test_segment_info_without_rehydration(self, snapshot, segment):
        info = shm_codec.read_segment_info(segment.name)
        assert info.snapshot_version == snapshot.version
        assert info.meta["nodes"] == snapshot.frame.node_count
        assert set(EXPORT_DTYPES) <= set(info.buffers)
        for entry in info.buffers.values():
            assert entry["offset"] % shm_codec.ALIGNMENT == 0

    def test_foreign_segment_is_rejected(self):
        from multiprocessing import shared_memory

        foreign = shared_memory.SharedMemory(create=True, size=4096)
        try:
            with pytest.raises(shm_codec.SegmentError, match="magic"):
                shm_codec.attach_snapshot(foreign.name)
        finally:
            foreign.unlink()
            foreign.close()

    def test_format_version_skew_is_rejected(self, segment):
        import struct

        header = bytearray(segment.buf[: shm_codec._HEADER.size])
        struct.pack_into("<H", header, 4, shm_codec.FORMAT_VERSION + 1)
        segment.buf[: len(header)] = header
        with pytest.raises(shm_codec.SegmentError, match="format"):
            shm_codec.attach_snapshot(segment.name)
