"""Tests for the LRU cache, single-flight coalescing, and micro-batching."""

import asyncio

import pytest

from repro.service import LRUCache, MicroBatcher, ReasoningCache, SingleFlight


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_none_is_a_value(self):
        cache = LRUCache(4)
        cache.put("k", None)
        assert cache.get("k", "default") is None
        assert cache.hits == 1

    def test_capacity_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a
        cache.put("c", 3)       # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSingleFlight:
    def test_concurrent_identical_coalesce_to_one(self):
        async def main():
            flight = SingleFlight()
            calls = 0

            async def supplier():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.02)
                return "result"

            results = await asyncio.gather(
                *(flight.run("k", supplier) for _ in range(25))
            )
            return calls, results, flight

        calls, results, flight = asyncio.run(main())
        assert calls == 1
        assert results == ["result"] * 25
        assert flight.leaders == 1
        assert flight.coalesced == 24

    def test_distinct_keys_do_not_coalesce(self):
        async def main():
            flight = SingleFlight()
            calls = []

            def supplier(key):
                async def run():
                    calls.append(key)
                    await asyncio.sleep(0.01)
                    return key

                return run

            results = await asyncio.gather(
                flight.run("a", supplier("a")), flight.run("b", supplier("b"))
            )
            return calls, results

        calls, results = asyncio.run(main())
        assert sorted(calls) == ["a", "b"]
        assert results == ["a", "b"]

    def test_exception_propagates_to_all_and_clears(self):
        async def main():
            flight = SingleFlight()

            async def boom():
                await asyncio.sleep(0.01)
                raise RuntimeError("boom")

            results = await asyncio.gather(
                *(flight.run("k", boom) for _ in range(4)), return_exceptions=True
            )
            assert flight.inflight() == 0

            async def fine():
                return 42

            # the key is reusable after a failure
            assert await flight.run("k", fine) == 42
            return results

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_sequential_calls_recompute(self):
        async def main():
            flight = SingleFlight()
            calls = 0

            async def supplier():
                nonlocal calls
                calls += 1
                return calls

            first = await flight.run("k", supplier)
            second = await flight.run("k", supplier)
            return first, second

        assert asyncio.run(main()) == (1, 2)


class TestReasoningCache:
    def test_read_through(self):
        async def main():
            cache = ReasoningCache(8)
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                return "value"

            first = await cache.get_or_compute("k", compute)
            second = await cache.get_or_compute("k", compute)
            return calls, first, second, cache

        calls, first, second, cache = asyncio.run(main())
        assert calls == 1
        assert first == second == "value"
        assert cache.lru.hits == 1
        assert cache.computations == 1

    def test_concurrent_identical_single_computation(self):
        async def main():
            cache = ReasoningCache(8)
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.02)
                return calls

            results = await asyncio.gather(
                *(cache.get_or_compute("k", compute) for _ in range(20))
            )
            return calls, results

        calls, results = asyncio.run(main())
        assert calls == 1
        assert set(results) == {1}


class TestMicroBatcher:
    def test_window_coalesces_into_one_batch(self):
        async def main():
            batches = []

            async def batch_fn(keys):
                batches.append(sorted(keys))
                return {k: k * 10 for k in keys}

            batcher = MicroBatcher(batch_fn, max_batch=64, max_delay_s=0.02)
            results = await asyncio.gather(*(batcher.submit(k) for k in range(6)))
            return batches, results, batcher

        batches, results, batcher = asyncio.run(main())
        assert batches == [[0, 1, 2, 3, 4, 5]]
        assert results == [0, 10, 20, 30, 40, 50]
        assert batcher.batches == 1
        assert batcher.requests == 6

    def test_duplicate_keys_share_one_slot(self):
        async def main():
            seen = []

            async def batch_fn(keys):
                seen.append(list(keys))
                return {k: "v" for k in keys}

            batcher = MicroBatcher(batch_fn, max_batch=64, max_delay_s=0.02)
            results = await asyncio.gather(*(batcher.submit("same") for _ in range(5)))
            return seen, results

        seen, results = asyncio.run(main())
        assert seen == [["same"]]
        assert results == ["v"] * 5

    def test_max_batch_flushes_early(self):
        async def main():
            batches = []

            async def batch_fn(keys):
                batches.append(len(keys))
                return {k: k for k in keys}

            batcher = MicroBatcher(batch_fn, max_batch=3, max_delay_s=5.0)
            await asyncio.gather(*(batcher.submit(k) for k in range(3)))
            return batches

        # with a 5s window, only the size trigger can have flushed
        assert asyncio.run(main()) == [3]

    def test_batch_error_propagates_to_every_waiter(self):
        async def main():
            async def batch_fn(keys):
                raise RuntimeError("backend down")

            batcher = MicroBatcher(batch_fn, max_batch=8, max_delay_s=0.01)
            return await asyncio.gather(
                *(batcher.submit(k) for k in range(3)), return_exceptions=True
            )

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda keys: None, max_batch=0)


class TestSingleFlightLeaderCancellation:
    def test_cancelled_leader_does_not_starve_followers(self):
        """Regression: the supplier used to run inline in the leader
        coroutine, so cancelling the leader (deadline, disconnect)
        cancelled the shared future and every coalesced follower saw
        CancelledError.  The supplier now runs in a detached task."""

        async def main():
            flight = SingleFlight()
            calls = 0

            async def supplier():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.03)
                return "survived"

            leader = asyncio.ensure_future(flight.run("k", supplier))
            await asyncio.sleep(0.005)  # leader registered, supplier running
            followers = [
                asyncio.ensure_future(flight.run("k", supplier))
                for _ in range(3)
            ]
            await asyncio.sleep(0.005)
            leader.cancel()
            results = await asyncio.gather(*followers)
            with pytest.raises(asyncio.CancelledError):
                await leader
            return calls, results, flight

        calls, results, flight = asyncio.run(main())
        assert calls == 1
        assert results == ["survived"] * 3
        assert flight.inflight() == 0

    def test_cancelling_one_follower_spares_the_rest(self):
        async def main():
            flight = SingleFlight()

            async def supplier():
                await asyncio.sleep(0.03)
                return "ok"

            waiters = [
                asyncio.ensure_future(flight.run("k", supplier))
                for _ in range(4)
            ]
            await asyncio.sleep(0.005)
            waiters[1].cancel()
            survivors = await asyncio.gather(
                waiters[0], waiters[2], waiters[3]
            )
            return survivors

        assert asyncio.run(main()) == ["ok"] * 3

    def test_all_waiters_cancelled_still_settles_cleanly(self):
        async def main():
            flight = SingleFlight()
            finished = asyncio.Event()

            async def supplier():
                await asyncio.sleep(0.02)
                finished.set()
                return "done"

            waiter = asyncio.ensure_future(flight.run("k", supplier))
            await asyncio.sleep(0.005)
            waiter.cancel()
            # the detached computation still completes and the key clears
            await asyncio.wait_for(finished.wait(), 1.0)
            await asyncio.sleep(0)  # let the done-callback run
            return flight.inflight()

        assert asyncio.run(main()) == 0


class TestMicroBatcherContract:
    def test_missing_key_raises_instead_of_none(self):
        """Regression: a batch function that silently dropped a key used
        to resolve that waiter with ``None``, indistinguishable from a
        real null result.  It now fails loudly with KeyError."""

        async def main():
            async def batch_fn(keys):
                return {k: k for k in keys if k != "dropped"}

            batcher = MicroBatcher(batch_fn, max_batch=3, max_delay_s=0.01)
            return await asyncio.gather(
                batcher.submit("a"),
                batcher.submit("dropped"),
                batcher.submit("b"),
                return_exceptions=True,
            )

        a, dropped, b = asyncio.run(main())
        assert (a, b) == ("a", "b")
        assert isinstance(dropped, KeyError)
        assert "dropped" in str(dropped)

    def test_none_is_still_a_valid_batch_value(self):
        async def main():
            async def batch_fn(keys):
                return {k: None for k in keys}

            batcher = MicroBatcher(batch_fn, max_batch=2, max_delay_s=0.01)
            return await asyncio.gather(batcher.submit("x"), batcher.submit("y"))

        assert asyncio.run(main()) == [None, None]

    def test_flush_keeps_strong_reference_to_batch_task(self):
        """Regression: the flush path dropped the created task on the
        floor; the event loop only holds weak references, so a GC pass
        could collect the batch mid-flight and strand every waiter."""

        async def main():
            async def batch_fn(keys):
                await asyncio.sleep(0.02)
                return {k: k for k in keys}

            batcher = MicroBatcher(batch_fn, max_batch=1, max_delay_s=5.0)
            waiter = asyncio.ensure_future(batcher.submit("k"))
            await asyncio.sleep(0.005)  # size-1 batch flushed immediately
            assert len(batcher._tasks) == 1
            result = await waiter
            await asyncio.sleep(0)
            return result, len(batcher._tasks)

        result, remaining = asyncio.run(main())
        assert result == "k"
        assert remaining == 0
