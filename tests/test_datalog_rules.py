"""Tests for rule construction, safety analysis and Program helpers."""

import pytest

from repro.datalog import (
    Program,
    Rule,
    UnsafeRuleError,
    Variable,
    parse_program,
    parse_rule,
)


class TestVariableClassification:
    def test_frontier_and_existential(self):
        rule = parse_rule("own(X, Y, W) -> link(E, X, Y, W).")
        assert rule.frontier_variables() == {Variable("X"), Variable("Y"), Variable("W")}
        assert rule.existential_variables() == {Variable("E")}
        assert rule.is_existential()

    def test_plain_rule_not_existential(self):
        rule = parse_rule("p(X) -> q(X).")
        assert not rule.is_existential()

    def test_assignment_binds(self):
        rule = parse_rule("p(N), Z = #sk(N) -> q(Z).")
        assert Variable("Z") in rule.body_variables()
        assert not rule.is_existential()

    def test_head_and_body_predicates(self):
        rule = parse_rule("p(X), not q(X) -> r(X), s(X).")
        assert rule.body_predicates() == {"p", "q"}
        assert rule.head_predicates() == {"r", "s"}


class TestSafety:
    def test_unbound_comparison_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_rule("p(X), Y > 3 -> q(X).")

    def test_unbound_negation_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_rule("p(X), not q(Y) -> r(X).")

    def test_unbound_assignment_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_rule("p(X), Z = Y + 1 -> q(Z).")

    def test_unbound_aggregate_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_rule("p(X), T = msum(W, <X>) -> q(T).")

    def test_left_to_right_binding_order_matters(self):
        # comparison before the atom that binds its variable
        with pytest.raises(UnsafeRuleError):
            parse_rule("W > 1, p(W) -> q(W).")

    def test_empty_head_rejected(self):
        with pytest.raises(UnsafeRuleError):
            Rule(body=(), head=())

    def test_assignment_chains_are_safe(self):
        rule = parse_rule("p(X), Y = X + 1, Z = Y * 2 -> q(Z).")
        assert rule is not None


class TestProgram:
    def test_idb_edb_split(self):
        program = parse_program(
            """
            p(X) -> q(X).
            q(X), r(X) -> s(X).
            """
        )
        assert program.idb_predicates() == {"q", "s"}
        assert program.edb_predicates() == {"p", "r"}

    def test_fact_predicates_are_edb(self):
        program = parse_program('base("a"). base(X) -> derived(X).')
        assert "base" in program.edb_predicates()
        assert "derived" in program.idb_predicates()

    def test_extend(self):
        left = parse_program("p(X) -> q(X).")
        right = parse_program('r("a"). q(X) -> r(X).')
        left.extend(right)
        assert len(left) == 2
        assert left.facts == [("r", ("a",))]

    def test_iteration_and_str(self):
        program = parse_program("p(X) -> q(X).")
        assert len(list(program)) == 1
        assert "->" in str(program)
