"""Tests for the company-graph schema (Definition 2.2) and paper example graphs."""

import pytest

from repro.graph import COMPANY, PERSON, SHAREHOLDING, CompanyGraph, GraphError
from repro.graph import figure1_graph, figure2_graph


@pytest.fixture
def small():
    graph = CompanyGraph()
    graph.add_person("p1", name="Anna")
    graph.add_company("c1", name="Acme")
    graph.add_company("c2", name="Beta")
    graph.add_shareholding("p1", "c1", 0.6)
    graph.add_shareholding("c1", "c2", 0.3)
    return graph


class TestSchema:
    def test_labels(self, small):
        assert small.node("p1").label == PERSON
        assert small.node("c1").label == COMPANY
        assert next(small.shareholdings()).label == SHAREHOLDING

    def test_share_bounds(self, small):
        for bad in (0.0, -0.1, 1.2):
            with pytest.raises(GraphError):
                small.add_shareholding("p1", "c2", bad)
        small.add_shareholding("p1", "c2", 1.0)  # exactly 1 allowed

    def test_target_must_be_company(self, small):
        small.add_person("p2", name="Ben")
        with pytest.raises(GraphError):
            small.add_shareholding("p1", "p2", 0.5)

    def test_self_loop_allowed(self, small):
        # buy-backs: companies owning their own shares exist in the data
        small.add_shareholding("c1", "c1", 0.05)
        assert small.share("c1", "c1") == pytest.approx(0.05)

    def test_typed_accessors(self, small):
        assert {n.id for n in small.companies()} == {"c1", "c2"}
        assert {n.id for n in small.persons()} == {"p1"}
        assert small.is_company("c1") and not small.is_company("p1")
        assert small.is_person("p1") and not small.is_person("zzz")


class TestShares:
    def test_share_sums_parallel_edges(self, small):
        small.add_shareholding("p1", "c1", 0.2)
        assert small.share("p1", "c1") == pytest.approx(0.8)

    def test_share_zero_when_absent(self, small):
        assert small.share("p1", "c2") == 0.0

    def test_shareholders_and_holdings(self, small):
        assert dict(small.shareholders("c2")) == {"c1": 0.3}
        assert dict(small.holdings("p1")) == {"c1": 0.6}

    def test_total_issued(self, small):
        small.add_person("p2", name="Ben")
        small.add_shareholding("p2", "c1", 0.4)
        assert small.total_issued("c1") == pytest.approx(1.0)


class TestFigure1:
    """The statements the paper makes about Figure 1 must hold in our graph."""

    def test_structure(self):
        graph = figure1_graph()
        assert graph.node_count == 10
        assert graph.share("P1", "C") == pytest.approx(0.8)
        assert graph.share("D", "E") == pytest.approx(0.4)
        assert graph.share("P1", "E") == pytest.approx(0.2)

    def test_d_plus_p1_hold_majority_of_e(self):
        graph = figure1_graph()
        assert graph.share("D", "E") + graph.share("P1", "E") > 0.5

    def test_l_has_no_majority_holder_chain(self):
        graph = figure1_graph()
        assert graph.share("F", "L") + graph.share("I", "L") == pytest.approx(0.6)


class TestFigure2:
    def test_p1_direct_control_edge(self):
        graph = figure2_graph()
        assert graph.share("P1", "C4") == pytest.approx(0.8)

    def test_p3_common_ownership(self):
        graph = figure2_graph()
        assert graph.share("P3", "C4") >= 0.2
        assert graph.share("P3", "C6") >= 0.2
