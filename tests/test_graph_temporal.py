"""Tests for the yearly ownership history (temporal extension)."""

import pytest

from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import CompanyGraph, OwnershipHistory, evolve, figure1_graph
from repro.ownership import control_closure


def two_year_history():
    """Year 1: p controls a.  Year 2: p sold down, q took control."""
    year1 = CompanyGraph()
    year1.add_person("p")
    year1.add_person("q")
    year1.add_company("a")
    year1.add_shareholding("p", "a", 0.6)
    year1.add_shareholding("q", "a", 0.4)

    year2 = CompanyGraph()
    year2.add_person("p")
    year2.add_person("q")
    year2.add_company("a")
    year2.add_shareholding("p", "a", 0.4)
    year2.add_shareholding("q", "a", 0.6)
    return OwnershipHistory({2005: year1, 2006: year2})


class TestSnapshots:
    def test_years_sorted(self):
        history = OwnershipHistory({2010: CompanyGraph(), 2005: CompanyGraph()})
        assert history.years() == [2005, 2010]

    def test_missing_year_raises(self):
        with pytest.raises(KeyError):
            OwnershipHistory().snapshot(1999)

    def test_iteration_in_order(self):
        history = two_year_history()
        assert [year for year, _ in history] == [2005, 2006]
        assert len(history) == 2


class TestControlChanges:
    def test_gained_and_lost(self):
        history = two_year_history()
        changes = history.control_changes(2005, 2006)
        kinds = {(c.controller, c.company, c.kind) for c in changes}
        assert ("p", "a", "lost") in kinds
        assert ("q", "a", "gained") in kinds

    def test_no_changes_on_identical_snapshots(self):
        graph = figure1_graph()
        history = OwnershipHistory({2005: graph, 2006: graph.copy()})
        assert history.control_changes(2005, 2006) == []

    def test_stable_pairs(self):
        history = two_year_history()
        assert history.stable_control_pairs() == set()
        same = OwnershipHistory({2005: figure1_graph(), 2006: figure1_graph()})
        assert same.stable_control_pairs() == control_closure(figure1_graph())


class TestChurnAndTenure:
    def test_churn_counts(self):
        year1 = CompanyGraph()
        year1.add_company("a")
        year2 = CompanyGraph()
        year2.add_company("a")
        year2.add_company("b")
        year2.add_shareholding("a", "b", 0.5)
        history = OwnershipHistory({2005: year1, 2006: year2})
        churn = history.churn(2005, 2006)
        assert churn == {
            "nodes_added": 1, "nodes_removed": 0,
            "edges_added": 1, "edges_removed": 0,
        }

    def test_node_tenure(self):
        history = two_year_history()
        tenure = history.node_tenure()
        assert tenure["p"] == (2005, 2006)

    def test_churn_counts_parallel_edges_as_multiset(self):
        """Regression: two identical parallel shareholdings collapsed to
        one under the old set-based diff, so dropping one of them
        reported zero edge churn."""
        year1 = CompanyGraph()
        year1.add_company("a")
        year1.add_company("b")
        year1.add_shareholding("a", "b", 0.3)
        year1.add_shareholding("a", "b", 0.3)  # second, identical package
        year2 = CompanyGraph()
        year2.add_company("a")
        year2.add_company("b")
        year2.add_shareholding("a", "b", 0.3)
        history = OwnershipHistory({2005: year1, 2006: year2})
        churn = history.churn(2005, 2006)
        assert churn["edges_removed"] == 1
        assert churn["edges_added"] == 0
        # and the reverse direction: gaining a parallel copy is one add
        reverse = OwnershipHistory({2005: year2, 2006: year1}).churn(2005, 2006)
        assert reverse["edges_added"] == 1
        assert reverse["edges_removed"] == 0

    def test_churn_unchanged_parallel_edges_report_zero(self):
        def build():
            g = CompanyGraph()
            g.add_company("a")
            g.add_company("b")
            g.add_shareholding("a", "b", 0.25)
            g.add_shareholding("a", "b", 0.25)
            return g

        history = OwnershipHistory({2005: build(), 2006: build()})
        churn = history.churn(2005, 2006)
        assert churn == {
            "nodes_added": 0, "nodes_removed": 0,
            "edges_added": 0, "edges_removed": 0,
        }


class TestEvolve:
    @pytest.fixture(scope="class")
    def history(self):
        graph, _ = generate_company_graph(
            CompanySpec(persons=80, companies=60, seed=17)
        )
        return evolve(graph, list(range(2005, 2010)), seed=3)

    def test_first_year_unchanged(self, history):
        graph, _ = generate_company_graph(
            CompanySpec(persons=80, companies=60, seed=17)
        )
        first = history.snapshot(2005)
        assert first.node_count == graph.node_count
        assert first.edge_count == graph.edge_count

    def test_deterministic(self, history):
        graph, _ = generate_company_graph(
            CompanySpec(persons=80, companies=60, seed=17)
        )
        again = evolve(graph, list(range(2005, 2010)), seed=3)
        for year in history.years():
            assert history.snapshot(year).edge_count == again.snapshot(year).edge_count

    def test_churn_is_nonzero(self, history):
        churn = history.churn(2005, 2009)
        assert churn["edges_added"] > 0
        assert churn["nodes_added"] > 0

    def test_share_validity_preserved(self, history):
        for _, graph in history:
            for edge in graph.shareholdings():
                assert 0 < edge.get("w") <= 1

    def test_profile_series(self, history):
        series = history.profile_series()
        assert set(series) == set(history.years())
        assert all(p.nodes > 0 for p in series.values())


class TestEvolveEdgeCases:
    def test_single_year(self):
        from repro.graph import CompanyGraph

        graph = CompanyGraph()
        graph.add_company("a")
        history = evolve(graph, [2005], seed=0)
        assert history.years() == [2005]

    def test_empty_graph_evolves(self):
        from repro.graph import CompanyGraph

        history = evolve(CompanyGraph(), [2005, 2006], seed=0)
        assert len(history) == 2
        assert history.snapshot(2006).node_count == 0
