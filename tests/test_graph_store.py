"""Tests for the embedded graph store (Neo4j stand-in)."""

import pytest

from repro.graph import GraphStore, PropertyGraph, figure1_graph


@pytest.fixture
def store():
    s = GraphStore()
    s.create_node("a", "Person", surname="Rossi", city="Roma")
    s.create_node("b", "Person", surname="Rossi", city="Milano")
    s.create_node("c", "Company", city="Roma")
    s.create_edge("a", "c", "owns", w=0.5)
    s.create_edge("b", "c", "owns", w=0.3)
    return s


class TestFind:
    def test_by_label(self, store):
        assert {n.id for n in store.find_nodes("Person")} == {"a", "b"}

    def test_by_property_scan(self, store):
        assert {n.id for n in store.find_nodes(surname="Rossi")} == {"a", "b"}

    def test_by_label_and_property(self, store):
        assert {n.id for n in store.find_nodes("Person", city="Roma")} == {"a"}

    def test_with_index(self, store):
        store.ensure_index("surname", "Person")
        assert {n.id for n in store.find_nodes("Person", surname="Rossi")} == {"a", "b"}

    def test_index_updated_on_create(self, store):
        store.ensure_index("surname", "Person")
        store.create_node("d", "Person", surname="Rossi")
        assert {n.id for n in store.find_nodes("Person", surname="Rossi")} == {"a", "b", "d"}

    def test_index_updated_on_set_property(self, store):
        store.ensure_index("surname", "Person")
        store.set_property("a", "surname", "Bianchi")
        assert {n.id for n in store.find_nodes("Person", surname="Rossi")} == {"b"}
        assert {n.id for n in store.find_nodes("Person", surname="Bianchi")} == {"a"}

    def test_index_updated_on_delete(self, store):
        store.ensure_index("surname", "Person")
        store.delete_node("a")
        assert {n.id for n in store.find_nodes("Person", surname="Rossi")} == {"b"}

    def test_ensure_index_idempotent(self, store):
        store.ensure_index("surname")
        store.ensure_index("surname")
        assert {n.id for n in store.find_nodes(surname="Rossi")} == {"a", "b"}


class TestSetPropertySentinel:
    """The ``_MISSING`` sentinel: ``None`` is a value, not absence."""

    def test_first_set_of_indexed_property(self, store):
        store.ensure_index("nickname", "Person")
        store.set_property("a", "nickname", "Red")
        assert {n.id for n in store.find_nodes("Person", nickname="Red")} == {"a"}

    def test_none_value_is_indexed(self, store):
        store.ensure_index("nickname", "Person")
        store.set_property("a", "nickname", None)
        assert {n.id for n in store.find_nodes("Person", nickname=None)} == {"a"}

    def test_overwriting_indexed_none_moves_buckets(self, store):
        store.ensure_index("nickname", "Person")
        store.set_property("a", "nickname", None)
        store.set_property("a", "nickname", "Red")
        assert list(store.find_nodes("Person", nickname=None)) == []
        assert {n.id for n in store.find_nodes("Person", nickname="Red")} == {"a"}

    def test_none_criterion_never_matches_missing(self, store):
        # scanning path: b has no nickname at all
        assert list(store.find_nodes("Person", nickname=None)) == []
        # indexed path must agree
        store.ensure_index("nickname", "Person")
        assert list(store.find_nodes("Person", nickname=None)) == []

    def test_label_scoped_index_ignores_other_labels(self, store):
        store.ensure_index("city", "Person")
        store.set_property("c", "city", "Napoli")  # a Company
        assert {n.id for n in store.find_nodes(city="Napoli")} == {"c"}
        assert list(store.find_nodes("Person", city="Napoli")) == []


class TestRemoveEdge:
    def test_remove_returns_edge(self, store):
        edge = next(store.match_edges("owns", source="a"))
        removed = store.remove_edge(edge.id)
        assert removed.id == edge.id
        assert list(store.match_edges("owns", source="a")) == []
        assert sum(1 for _ in store.match_edges("owns")) == 1

    def test_remove_unknown_edge_raises(self, store):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            store.remove_edge("no-such-edge")

    def test_expand_reflects_removal(self, store):
        edge = next(store.match_edges("owns", source="a"))
        store.remove_edge(edge.id)
        assert store.expand("a") == set()


class TestMatchEdges:
    def test_by_label(self, store):
        assert sum(1 for _ in store.match_edges("owns")) == 2

    def test_by_source(self, store):
        edges = list(store.match_edges("owns", source="a"))
        assert len(edges) == 1 and edges[0].target == "c"

    def test_by_target(self, store):
        assert sum(1 for _ in store.match_edges("owns", target="c")) == 2

    def test_by_property(self, store):
        edges = list(store.match_edges("owns", w=0.3))
        assert len(edges) == 1 and edges[0].source == "b"


class TestExpand:
    def test_single_hop(self, store):
        assert store.expand("a") == {"c"}

    def test_multi_hop(self):
        s = GraphStore(figure1_graph())
        reachable = s.expand("P1", depth=3)
        assert {"C", "D", "E", "F"} <= reachable

    def test_depth_limit(self):
        s = GraphStore(figure1_graph())
        assert "F" not in s.expand("P1", depth=1)

    def test_counts(self, store):
        assert store.node_count() == 3
        assert store.node_count("Person") == 2

    def test_wraps_existing_graph(self):
        graph = PropertyGraph()
        graph.add_node("x", "T")
        store = GraphStore(graph)
        assert store.node_count("T") == 1
