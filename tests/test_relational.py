"""Tests for the PG <-> relational mapping (Section 3)."""

import pytest

from repro.datalog import Database
from repro.graph import (
    COMPANY_SCHEMA,
    CompanyGraph,
    EdgeRelation,
    NodeRelation,
    RelationalSchema,
    company_graph_from_facts,
    figure1_graph,
    roundtrip,
    to_facts,
)


@pytest.fixture
def graph():
    g = CompanyGraph()
    g.add_person("p1", name="Anna", surname="Rossi", birth_date="1980-01-01")
    g.add_company("c1", name="Acme", legal_form="SRL")
    g.add_company("c2", name="Beta")
    g.add_shareholding("p1", "c1", 0.6, right="ownership")
    g.add_shareholding("c1", "c2", 0.4)
    return g


class TestToFacts:
    def test_node_facts_have_id_first(self, graph):
        db = to_facts(graph)
        companies = {values[0]: values for values in db.facts("company")}
        assert set(companies) == {"c1", "c2"}
        assert companies["c1"][1] == "Acme"

    def test_missing_properties_become_none(self, graph):
        db = to_facts(graph)
        beta = next(v for v in db.facts("company") if v[0] == "c2")
        assert beta[4] is None  # legal_form missing

    def test_edge_facts_have_endpoints_first(self, graph):
        db = to_facts(graph)
        own = {(v[0], v[1]): v for v in db.facts("own")}
        assert own[("p1", "c1")][2] == 0.6
        assert own[("p1", "c1")][3] == "ownership"

    def test_unmapped_labels_skipped(self, graph):
        graph.add_node("fam1", "F")
        graph.add_edge("p1", "fam1", "family")
        db = to_facts(graph)
        assert db.count() == 5  # 3 nodes + 2 shareholdings only


class TestRoundtrip:
    def test_roundtrip_preserves_structure(self, graph):
        back = roundtrip(graph)
        assert back.node_count == graph.node_count
        assert back.edge_count == graph.edge_count
        assert back.share("p1", "c1") == pytest.approx(0.6)

    def test_roundtrip_preserves_schema_properties(self, graph):
        back = roundtrip(graph)
        assert back.node("p1").get("surname") == "Rossi"
        assert next(
            e for e in back.out_edges("p1") if e.target == "c1"
        ).get("right") == "ownership"

    def test_roundtrip_figure1(self):
        graph = figure1_graph()
        back = roundtrip(graph)
        assert back.node_count == graph.node_count
        assert back.share("P1", "C") == pytest.approx(0.8)

    def test_missing_share_rejected(self):
        db = Database([
            ("company", ("c1", None, None, None, None)),
            ("company", ("c2", None, None, None, None)),
            ("own", ("c1", "c2", None, None)),
        ])
        with pytest.raises(ValueError):
            company_graph_from_facts(db)


class TestCustomSchema:
    def test_custom_relation_names(self, graph):
        schema = RelationalSchema(
            node_relations=(
                NodeRelation("C", "firm", ("name",)),
                NodeRelation("P", "individual", ("name",)),
            ),
            edge_relations=(EdgeRelation("S", "holds", ("w",)),),
        )
        db = to_facts(graph, schema)
        assert db.count("firm") == 2
        assert db.count("individual") == 1
        assert db.count("holds") == 2

    def test_schema_lookup(self):
        assert COMPANY_SCHEMA.node_relation("C").predicate == "company"
        assert COMPANY_SCHEMA.edge_relation("S").predicate == "own"
        assert COMPANY_SCHEMA.node_relation("zzz") is None
        assert COMPANY_SCHEMA.edge_relation("zzz") is None
