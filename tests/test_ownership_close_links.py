"""Tests for accumulated ownership and close links (Definitions 2.5/2.6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompanyGraph, figure2_graph
from repro.ownership import (
    PathBudgetExceeded,
    accumulated_ownership,
    accumulated_ownership_dag,
    accumulated_ownership_from,
    all_accumulated_ownership,
    close_link_pairs,
    close_links,
    closely_linked,
    is_acyclic,
    path_weight,
    simple_paths,
)


def diamond() -> CompanyGraph:
    """a -> {b, c} -> d with known weights: Phi(a,d) = 0.5*0.4 + 0.3*0.5 = 0.35."""
    graph = CompanyGraph()
    for company in ("a", "b", "c", "d"):
        graph.add_company(company)
    graph.add_shareholding("a", "b", 0.5)
    graph.add_shareholding("a", "c", 0.3)
    graph.add_shareholding("b", "d", 0.4)
    graph.add_shareholding("c", "d", 0.5)
    return graph


class TestSimplePaths:
    def test_diamond_has_two_paths(self):
        graph = diamond()
        paths = sorted(simple_paths(graph, "a", "d"))
        assert paths == [["a", "b", "d"], ["a", "c", "d"]]

    def test_max_depth(self):
        graph = diamond()
        assert list(simple_paths(graph, "a", "d", max_depth=1)) == []

    def test_path_budget(self):
        graph = diamond()
        with pytest.raises(PathBudgetExceeded):
            list(simple_paths(graph, "a", "d", max_paths=1))

    def test_cycle_paths_are_simple(self):
        graph = CompanyGraph()
        for company in ("a", "b", "c"):
            graph.add_company(company)
        graph.add_shareholding("a", "b", 0.5)
        graph.add_shareholding("b", "a", 0.5)
        graph.add_shareholding("b", "c", 0.5)
        assert list(simple_paths(graph, "a", "c")) == [["a", "b", "c"]]

    def test_parallel_edges_yield_one_path(self):
        graph = CompanyGraph()
        graph.add_company("a")
        graph.add_company("b")
        graph.add_shareholding("a", "b", 0.2)
        graph.add_shareholding("a", "b", 0.3)
        paths = list(simple_paths(graph, "a", "b"))
        assert paths == [["a", "b"]]
        assert path_weight(graph, paths[0]) == pytest.approx(0.5)

    def test_missing_endpoints(self):
        graph = diamond()
        assert list(simple_paths(graph, "zzz", "d")) == []
        assert list(simple_paths(graph, "a", "zzz")) == []


class TestAccumulatedOwnership:
    def test_diamond_value(self):
        assert accumulated_ownership(diamond(), "a", "d") == pytest.approx(0.35)

    def test_paper_figure2_value(self):
        assert accumulated_ownership(figure2_graph(), "C4", "C7") == pytest.approx(0.2)

    def test_from_source_matches_per_pair(self):
        graph = diamond()
        from_a = accumulated_ownership_from(graph, "a")
        for target in ("b", "c", "d"):
            assert from_a[target] == pytest.approx(
                accumulated_ownership(graph, "a", target)
            )

    def test_dag_dp_matches_enumeration(self):
        graph = diamond()
        assert is_acyclic(graph)
        dp = accumulated_ownership_dag(graph, "a")
        assert dp["d"] == pytest.approx(0.35)

    def test_dag_dp_rejects_cycles(self):
        graph = CompanyGraph()
        graph.add_company("a")
        graph.add_company("b")
        graph.add_shareholding("a", "b", 0.5)
        graph.add_shareholding("b", "a", 0.5)
        with pytest.raises(ValueError):
            accumulated_ownership_dag(graph, "a")

    def test_is_acyclic_detects_self_loop(self):
        graph = CompanyGraph()
        graph.add_company("a")
        assert is_acyclic(graph)
        graph.add_shareholding("a", "a", 0.1)
        assert not is_acyclic(graph)


@st.composite
def random_dag(draw):
    """A random weighted DAG over ordered company nodes."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for target in range(1, n):
        sources = draw(
            st.lists(
                st.integers(min_value=0, max_value=target - 1),
                unique=True, max_size=3,
            )
        )
        for source in sources:
            weight = draw(st.floats(min_value=0.05, max_value=1.0))
            edges.append((source, target, weight))
    return n, edges


class TestDagProperty:
    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_dp_equals_path_enumeration(self, data):
        n, edges = data
        graph = CompanyGraph()
        for i in range(n):
            graph.add_company(f"c{i}")
        for source, target, weight in edges:
            graph.add_shareholding(f"c{source}", f"c{target}", weight)
        dp = accumulated_ownership_dag(graph, "c0")
        enumerated = accumulated_ownership_from(graph, "c0")
        assert set(dp) == set(enumerated)
        for company, value in dp.items():
            assert value == pytest.approx(enumerated[company])


class TestCloseLinks:
    def test_direct_threshold(self):
        graph = diamond()
        assert closely_linked(graph, "a", "d", threshold=0.3)   # Phi = 0.35
        assert not closely_linked(graph, "a", "d", threshold=0.4)

    def test_symmetry(self):
        graph = diamond()
        pairs = close_link_pairs(graph)
        assert ("a", "d") in pairs and ("d", "a") in pairs

    def test_common_owner_condition(self):
        """Definition 2.6-(iii): common third party owning >= t of both."""
        graph = CompanyGraph()
        graph.add_person("z")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("z", "x", 0.25)
        graph.add_shareholding("z", "y", 0.25)
        links = close_links(graph)
        common = [l for l in links if l.reason == "common-owner"]
        assert {(l.x, l.y) for l in common} == {("x", "y"), ("y", "x")}
        assert all(l.witness == "z" for l in common)

    def test_persons_not_close_linked_themselves(self):
        graph = CompanyGraph()
        graph.add_person("p")
        graph.add_company("x")
        graph.add_shareholding("p", "x", 0.9)
        assert all(
            graph.is_company(l.x) and graph.is_company(l.y) for l in close_links(graph)
        )

    def test_paper_figure2_examples(self):
        graph = figure2_graph()
        pairs = close_link_pairs(graph)
        assert ("C4", "C7") in pairs   # Phi(C4, C7) = 0.2, Def 2.6-(i)
        assert ("C4", "C6") in pairs   # P3 owns >= 20% of both, Def 2.6-(iii)

    def test_all_accumulated_ownership_modes_agree(self):
        graph = diamond()
        exact = all_accumulated_ownership(graph)
        bounded = all_accumulated_ownership(graph, max_depth=10)
        for source, targets in exact.items():
            for target, value in targets.items():
                assert value == pytest.approx(bounded[source][target])
