"""Tests for the synthetic generators and their planted ground truth."""

import pytest

from repro.datagen import (
    CompanySpec,
    DENSITY_PRESETS,
    barabasi_albert_edges,
    barabasi_company_graph,
    clipped_normal,
    generate_company_graph,
    power_law_int,
    random_shares,
    zipf_choice,
    zipf_sampler,
)
from repro.graph import profile
from repro.linkage import PARENT_OF, PARTNER_OF, SIBLING_OF, year_of
import random


class TestDistributions:
    def test_random_shares_sum_to_total(self):
        rng = random.Random(0)
        shares = random_shares(rng, 5, 0.8)
        assert sum(shares) == pytest.approx(0.8)
        assert all(s > 0 for s in shares)

    def test_random_shares_empty(self):
        assert random_shares(random.Random(0), 0) == []

    def test_power_law_int_bounds(self):
        rng = random.Random(1)
        values = [power_law_int(rng, 1, 100) for _ in range(500)]
        assert all(1 <= v <= 100 for v in values)
        # heavy head: most samples should be small
        assert sum(1 for v in values if v <= 5) > len(values) / 2

    def test_clipped_normal_bounds(self):
        rng = random.Random(2)
        values = [clipped_normal(rng, 0, 10, -1, 1) for _ in range(100)]
        assert all(-1 <= v <= 1 for v in values)

    def test_zipf_prefers_head(self):
        rng = random.Random(3)
        items = list(range(20))
        picks = [zipf_choice(rng, items) for _ in range(1000)]
        assert picks.count(0) > picks.count(19)

    def test_zipf_sampler_matches_choice_distribution(self):
        rng = random.Random(4)
        sample = zipf_sampler(rng, ["a", "b", "c"])
        picks = [sample() for _ in range(300)]
        assert picks.count("a") > picks.count("c")


class TestBarabasi:
    def test_edge_count(self):
        edges = barabasi_albert_edges(50, 2, random.Random(0))
        # seed clique (3 choose 2 = 3 edges with m=2) + 2 per remaining node
        assert len(edges) == 3 + 2 * 47

    def test_no_duplicate_attachments_per_node(self):
        edges = barabasi_albert_edges(30, 3, random.Random(1))
        from collections import defaultdict
        attachments = defaultdict(set)
        for new, old in edges:
            if new >= 4:  # past the seed
                assert old not in attachments[new]
                attachments[new].add(old)

    def test_scale_free_company_graph(self):
        graph = barabasi_company_graph(300, 2, seed=5)
        stats = profile(graph)
        assert stats.nodes == 300
        assert stats.power_law_alpha is not None
        assert stats.max_in_degree <= 1 + stats.max_out_degree + 300  # sanity

    def test_share_totals_bounded(self):
        graph = barabasi_company_graph(100, 3, seed=6)
        for company in graph.companies():
            assert graph.total_issued(company.id) <= 1.0 + 1e-6

    def test_tiny_graphs(self):
        assert barabasi_albert_edges(0, 2, random.Random(0)) == []
        assert barabasi_company_graph(1, 2, seed=0).node_count == 1


class TestCompanyGenerator:
    def test_deterministic_per_seed(self):
        spec = CompanySpec(persons=100, companies=60, seed=9)
        g1, t1 = generate_company_graph(spec)
        g2, t2 = generate_company_graph(spec)
        assert g1.node_count == g2.node_count
        assert g1.edge_count == g2.edge_count
        assert t1.links == t2.links

    def test_counts_match_spec(self):
        graph, _ = generate_company_graph(CompanySpec(persons=120, companies=80, seed=0))
        assert sum(1 for _ in graph.persons()) == 120
        assert sum(1 for _ in graph.companies()) == 80

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            CompanySpec(density="bogus")

    def test_density_ordering(self):
        sizes = {}
        for density in DENSITY_PRESETS:
            graph, _ = generate_company_graph(
                CompanySpec(persons=200, companies=150, density=density, seed=4)
            )
            sizes[density] = graph.edge_count
        assert sizes["sparse"] < sizes["normal"] < sizes["dense"] < sizes["superdense"]

    def test_share_totals_bounded(self):
        graph, _ = generate_company_graph(
            CompanySpec(persons=150, companies=100, density="superdense", seed=3)
        )
        for company in graph.companies():
            assert graph.total_issued(company.id) <= 1.0 + 1e-6


class TestGroundTruth:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_company_graph(
            CompanySpec(persons=200, companies=100, seed=7, feature_noise=0.0)
        )

    def test_links_reference_existing_persons(self, world):
        graph, truth = world
        for x, y, _ in truth.links:
            assert graph.is_person(x) and graph.is_person(y)

    def test_partner_links_symmetric(self, world):
        _, truth = world
        partners = truth.pairs(PARTNER_OF)
        assert all((y, x) in partners for x, y in partners)

    def test_partners_share_address_but_keep_surnames(self, world):
        graph, truth = world
        for x, y in truth.pairs(PARTNER_OF):
            assert graph.node(x).get("address") == graph.node(y).get("address")

    def test_children_carry_father_surname_and_name(self, world):
        graph, truth = world
        for parent, child in truth.pairs(PARENT_OF):
            if graph.node(parent).get("sex") == "M":
                assert graph.node(parent).get("surname") == graph.node(child).get("surname")
                assert graph.node(parent).get("name") == graph.node(child).get("father_name")

    def test_parents_older_than_children(self, world):
        graph, truth = world
        for parent, child in truth.pairs(PARENT_OF):
            parent_year = year_of(graph.node(parent).get("birth_date"))
            child_year = year_of(graph.node(child).get("birth_date"))
            assert parent_year + 15 <= child_year

    def test_siblings_share_surname(self, world):
        graph, truth = world
        for x, y in truth.pairs(SIBLING_OF):
            assert graph.node(x).get("surname") == graph.node(y).get("surname")

    def test_families_partition_members(self, world):
        _, truth = world
        seen = set()
        for members in truth.families.values():
            assert len(members) >= 2
            assert not (members & seen)
            seen |= members

    def test_family_businesses_exist(self, world):
        graph, truth = world
        for family, businesses in truth.family_businesses.items():
            assert family in truth.families
            for business in businesses:
                assert graph.is_company(business)

    def test_family_nodes_materialised_on_request(self):
        graph, truth = generate_company_graph(
            CompanySpec(persons=60, companies=30, seed=8, add_family_nodes=True)
        )
        family_edges = sum(1 for _ in graph.edges("family"))
        assert family_edges == sum(len(m) for m in truth.families.values())
