"""Oracle tests for the columnar graph core (:mod:`repro.graph.columnar`).

Two kinds of evidence that the shared :class:`GraphFrame` views are safe
to substitute for the historical per-consumer builds:

* **property-based oracles** — random company graphs (parallel edges,
  self-loops, varied insertion orders) checked against naive
  ``PropertyGraph`` iteration and against inline reimplementations of
  the *legacy* code (the dict-of-dicts ``build_adjacency``, the
  ``lil_matrix``-plus-``spsolve`` ownership path), demanding exact —
  bit-identical, not approximate — equality;
* **golden cross-refactor hashes** — sha256 digests of walk sets,
  ownership sweeps, UBO indexes and pipeline outputs captured from the
  pre-frame implementation on a fixed synthetic graph.  Any refactor
  that perturbs a float or an ordering anywhere in the stack trips
  these.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import realworld_like
from repro.embeddings.walks import RandomWalker, build_adjacency, generate_walks
from repro.graph import CompanyGraph, GraphFrame, figure2_graph
from repro.graph.columnar import intern_sort_key
from repro.ownership.matrix import integrated_ownership_from
from repro.ownership.ubo import all_beneficial_owners


def _hash(obj) -> str:
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# legacy reimplementations (the oracles)
# ---------------------------------------------------------------------------


def legacy_build_adjacency(graph, weight_property="w"):
    """The pre-frame ``build_adjacency``, verbatim."""
    adjacency = {n: {} for n in graph.node_ids()}
    for edge in graph.edges():
        weight = float(edge.get(weight_property, 1.0) or 1.0)
        if edge.source == edge.target:
            continue
        adjacency[edge.source][edge.target] = (
            adjacency[edge.source].get(edge.target, 0.0) + weight
        )
        adjacency[edge.target][edge.source] = (
            adjacency[edge.target].get(edge.source, 0.0) + weight
        )
    return {
        node: sorted(neighbors.items(), key=lambda item: str(item[0]))
        for node, neighbors in adjacency.items()
    }


def legacy_ownership_matrix(graph):
    """The pre-frame ``ownership_matrix``: str-sorted nodes, lil accumulation."""
    from scipy.sparse import lil_matrix

    nodes = sorted(graph.node_ids(), key=str)
    index = {node: i for i, node in enumerate(nodes)}
    matrix = lil_matrix((len(nodes), len(nodes)))
    for edge in graph.edges("S"):
        matrix[index[edge.source], index[edge.target]] += edge.get("w", 0.0)
    return nodes, matrix


def legacy_integrated_from(graph, source, damping=1.0):
    """The pre-frame ``integrated_ownership_from``: fresh spsolve per call."""
    from scipy.sparse import identity
    from scipy.sparse.linalg import spsolve

    nodes, w = legacy_ownership_matrix(graph)
    index = {node: i for i, node in enumerate(nodes)}
    if source not in index:
        return {}
    w = (w * damping).tocsc()
    transpose = w.T.tocsc()
    unit = np.zeros(len(nodes))
    unit[index[source]] = 1.0
    rhs = transpose @ unit
    system = identity(len(nodes), format="csc") - transpose
    solution = spsolve(system, rhs)
    return {
        node: float(solution[i])
        for node, i in index.items()
        if node != source and abs(solution[i]) > 1e-12
    }


# ---------------------------------------------------------------------------
# random company graphs
# ---------------------------------------------------------------------------

SHARES = (0.05, 0.1, 0.123, 0.2, 0.25, 1 / 3, 0.3)


@st.composite
def company_graphs(draw):
    """Small random ownership graphs with parallel edges and self-loops.

    Incoming shares per company are budgeted below 1, so ``I - W`` is
    strictly column-diagonally dominant and never singular — the legacy
    spsolve oracle and the frame's splu path both solve cleanly.
    """
    n_persons = draw(st.integers(min_value=0, max_value=4))
    n_companies = draw(st.integers(min_value=1, max_value=5))
    inserts = draw(
        st.permutations(
            [f"p{i}" for i in range(n_persons)] + [f"c{i}" for i in range(n_companies)]
        )
    )
    graph = CompanyGraph()
    for node in inserts:
        if node.startswith("p"):
            graph.add_person(node, surname=f"s{node[-1]}")
        else:
            graph.add_company(node, name=node.upper())
    owners = list(inserts)
    n_edges = draw(st.integers(min_value=0, max_value=10))
    budget = {f"c{i}": 0.95 for i in range(n_companies)}
    for _ in range(n_edges):
        owner = draw(st.sampled_from(owners))
        company = draw(st.sampled_from([f"c{i}" for i in range(n_companies)]))
        share = draw(st.sampled_from(SHARES))
        if owner == company:
            graph.add_shareholding(owner, company, share)  # self-loop: W diag
            continue
        if budget[company] - share < 0:
            continue
        budget[company] -= share
        graph.add_shareholding(owner, company, share)
    return graph


# ---------------------------------------------------------------------------
# property oracles
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(company_graphs())
def test_undirected_adjacency_matches_legacy_exactly(graph):
    frame = GraphFrame.of(graph)
    legacy = legacy_build_adjacency(graph)
    view = frame.undirected_adjacency()
    # same keys in the same (insertion) order, same neighbour lists, and
    # the accumulated floats are equal bit for bit (== on floats)
    assert list(view) == list(legacy)
    assert view == legacy
    # the public shim hands out an equal (copied) mapping
    assert build_adjacency(graph) == legacy


@settings(max_examples=120, deadline=None)
@given(company_graphs())
def test_directed_views_match_naive_iteration(graph):
    frame = GraphFrame.of(graph)
    out_naive = {n: [] for n in graph.node_ids()}
    in_naive = {n: [] for n in graph.node_ids()}
    for edge in graph.edges():
        out_naive[edge.source].append(edge.target)
        in_naive[edge.target].append(edge.source)
    out_deg, in_deg = frame.out_degrees(), frame.in_degrees()
    for node in graph.node_ids():
        code = frame.index[node]
        assert out_deg[code] == len(out_naive[node])
        assert in_deg[code] == len(in_naive[node])
        # within-row order is edge insertion order, like PropertyGraph._out
        assert frame.node_ids_at(frame.successor_codes(node)) == out_naive[node]
        assert frame.node_ids_at(frame.predecessor_codes(node)) == in_naive[node]


@settings(max_examples=120, deadline=None)
@given(company_graphs())
def test_ownership_w_matches_legacy_lil_bitwise(graph):
    frame = GraphFrame.of(graph)
    nodes, legacy = legacy_ownership_matrix(graph)
    assert list(frame.nodes) == nodes
    assert np.array_equal(frame.ownership_w().toarray(), legacy.toarray())


@settings(max_examples=60, deadline=None)
@given(company_graphs())
def test_integrated_ownership_matches_legacy_spsolve_bitwise(graph):
    for source in sorted(graph.node_ids(), key=str)[:4]:
        got = integrated_ownership_from(graph, source)
        expected = legacy_integrated_from(graph, source)
        assert set(got) == set(expected)
        for target, value in expected.items():
            assert got[target] == value  # exact: same SuperLU factorisation


@settings(max_examples=60, deadline=None)
@given(company_graphs())
def test_frame_cache_and_invalidation(graph):
    frame = GraphFrame.of(graph)
    # same generation: of() returns the same object and the same views
    assert GraphFrame.of(graph) is frame
    assert GraphFrame.of(graph).undirected_adjacency() is frame.undirected_adjacency()
    graph.add_company("zz_fresh")
    assert not frame.is_current(graph)
    rebuilt = GraphFrame.of(graph)
    assert rebuilt is not frame
    assert rebuilt.is_current(graph)
    # cached-after-mutation equals a cold frame built from scratch
    cold = GraphFrame(graph)
    assert list(rebuilt.nodes) == list(cold.nodes)
    assert rebuilt.undirected_adjacency() == cold.undirected_adjacency()
    assert np.array_equal(rebuilt.ownership_w().toarray(), cold.ownership_w().toarray())


def test_every_write_surface_bumps_generation():
    graph = CompanyGraph()
    seen = {graph.generation}

    def bumped():
        generation = graph.generation
        assert generation not in seen, "write did not bump the generation"
        seen.add(generation)

    graph.add_company("c0")
    bumped()
    graph.add_person("p0")
    bumped()
    edge = graph.add_shareholding("p0", "c0", 0.4)
    bumped()
    graph.set_property("c0", "name", "C0")
    bumped()
    graph.remove_edge(edge.id)
    bumped()
    graph.remove_node("p0")
    bumped()


def test_intern_order_is_collision_free_and_str_compatible():
    graph = CompanyGraph()
    graph.add_company(1)
    graph.add_company("1")
    graph.add_company("0")
    frame = GraphFrame.of(graph)
    assert len(frame.index) == 3  # 1 and "1" stay distinct codes
    assert frame.nodes[0] == "0"  # primary key is still str(id)
    assert sorted(map(str, frame.nodes)) == [str(n) for n in frame.nodes]
    # deterministic regardless of insertion order
    other = CompanyGraph()
    other.add_company("0")
    other.add_company("1")
    other.add_company(1)
    assert [intern_sort_key(n) for n in GraphFrame.of(other).nodes] == [
        intern_sort_key(n) for n in frame.nodes
    ]


# ---------------------------------------------------------------------------
# walker bit-identity: frame CSR vs legacy dict adjacency
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [None, 1, 2])
def test_walks_identical_through_frame_and_legacy_dict(workers):
    graph = figure2_graph()
    legacy_walker = RandomWalker(legacy_build_adjacency(graph), seed=7)
    frame_walker = RandomWalker(GraphFrame.of(graph), seed=7)
    starts = list(legacy_walker.adjacency)
    assert starts == list(frame_walker.adjacency)
    assert legacy_walker.walks(starts, 4, 10, workers=workers) == frame_walker.walks(
        starts, 4, 10, workers=workers
    )


# ---------------------------------------------------------------------------
# golden cross-refactor hashes (captured from the pre-frame implementation)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_graph():
    graph, _ = realworld_like(60, seed=11)
    return graph


def test_golden_walks(golden_graph):
    seq = generate_walks(golden_graph, num_walks=3, walk_length=8, seed=4)
    assert _hash(seq) == "896b6b4b71e299f2"
    par = generate_walks(golden_graph, num_walks=3, walk_length=8, seed=4, workers=2)
    assert _hash(par) == "92557588aeccbd0b"


def test_golden_ownership_sweep(golden_graph):
    persons = sorted((p.id for p in golden_graph.persons()), key=str)[:5]
    own = {
        p: sorted(integrated_ownership_from(golden_graph, p).items(),
                  key=lambda kv: str(kv[0]))
        for p in persons
    }
    assert _hash(own) == "cf41bc7ed2fc6dc6"


def test_golden_ubo_index(golden_graph):
    ubo = all_beneficial_owners(golden_graph)
    digest = _hash({
        c: [(o.person, o.integrated_share, o.controls) for o in owners]
        for c, owners in sorted(ubo.items(), key=lambda kv: str(kv[0]))
    })
    assert digest == "74421cb2d552168d"


def test_golden_pipeline_and_clustering(golden_graph):
    from repro.core.pipeline import PipelineConfig, ReasoningPipeline
    from repro.embeddings.node2vec import Node2VecConfig, embed_and_cluster

    config = Node2VecConfig(
        dimensions=12, walk_length=8, num_walks=3, epochs=1, window=3, seed=0
    )
    links = ReasoningPipeline(
        golden_graph,
        PipelineConfig(first_level_clusters=4, node2vec=config),
    ).family_links()
    assert len(links) == 43
    assert _hash(sorted(links)) == "298fd3c6dfa031b3"
    assign = embed_and_cluster(
        golden_graph, 4, config, feature_properties={"surname": 1.0, "address": 3.0}
    )
    assert _hash(sorted(assign.items(), key=lambda kv: str(kv[0]))) == "dbcc7d6260bcebe2"


# ----------------------------------------------------------------------
# buffer export / attach (the shared-memory codec's preconditions)
# ----------------------------------------------------------------------


def test_buffers_are_contiguous_and_dtype_stable():
    """Every exported buffer must be C-contiguous with the dtype pinned
    by EXPORT_DTYPES — scipy's csc index arrays in particular downcast to
    int32 on small graphs, which the export must normalise away."""
    from repro.graph.columnar import EXPORT_DTYPES

    for persons in (6, 40):
        graph, _ = realworld_like(persons, seed=3)
        frame = GraphFrame.of(graph)
        buffers = frame.buffers()
        assert set(buffers) == set(EXPORT_DTYPES)
        for name, array in buffers.items():
            assert array.flags.c_contiguous, name
            assert array.dtype == EXPORT_DTYPES[name], (
                f"{name}: {array.dtype} != {EXPORT_DTYPES[name]}"
            )
        assert frame.nbytes == sum(a.nbytes for a in buffers.values())
        assert frame.nbytes > 0


def test_buffers_round_trip_through_attach():
    """attach() over exported buffers reproduces every cached view
    bit-identically, and adopt_as_cache_of makes GraphFrame.of find it."""
    graph, _ = realworld_like(25, seed=5)
    frame = GraphFrame.of(graph)
    buffers = {name: array.copy() for name, array in frame.buffers().items()}

    clone = graph.copy()
    attached = GraphFrame.attach(clone, buffers)
    attached.adopt_as_cache_of(clone)
    assert GraphFrame.of(clone) is attached

    for (a_indptr, a_minor, a_pos), (b_indptr, b_minor, b_pos) in (
        (frame.csr(), attached.csr()),
        (frame.csc(), attached.csc()),
    ):
        np.testing.assert_array_equal(a_indptr, b_indptr)
        np.testing.assert_array_equal(a_minor, b_minor)
        np.testing.assert_array_equal(a_pos, b_pos)
    np.testing.assert_array_equal(frame.edge_src, attached.edge_src)
    np.testing.assert_array_equal(frame.walk_weights, attached.walk_weights)
    assert (frame.ownership_w() != attached.ownership_w()).nnz == 0
    for original, rebuilt in zip(frame.walker_csr(), attached.walker_csr()):
        if isinstance(original, np.ndarray) and original.dtype != object:
            np.testing.assert_array_equal(original, rebuilt)
        else:
            assert list(original) == list(rebuilt)
    # integrated-ownership solves over the attached frame stay identical
    source = next(iter(graph.persons())).id
    np.testing.assert_array_equal(
        integrated_ownership_from(graph, source),
        integrated_ownership_from(clone, source),
    )


def test_attach_rejects_mismatched_buffers():
    graph, _ = realworld_like(10, seed=1)
    buffers = GraphFrame.of(graph).buffers()
    other, _ = realworld_like(20, seed=2)
    with pytest.raises(ValueError):
        GraphFrame.attach(other, buffers)
