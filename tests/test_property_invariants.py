"""Cross-module property-based tests on domain invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import CompanySpec, generate_company_graph
from repro.embeddings import kmeans
from repro.graph import CompanyGraph, profile, to_facts
from repro.ownership import (
    accumulated_ownership_from,
    control_closure,
    controlled_by,
    group_controlled,
)


@st.composite
def random_company_graph(draw):
    """A random (possibly cyclic) company graph with valid equity."""
    companies = draw(st.integers(min_value=1, max_value=8))
    persons = draw(st.integers(min_value=0, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = CompanyGraph()
    for i in range(companies):
        graph.add_company(f"c{i}")
    for i in range(persons):
        graph.add_person(f"p{i}")
    owners = [f"c{i}" for i in range(companies)] + [f"p{i}" for i in range(persons)]
    for target in range(companies):
        budget = 1.0
        for _ in range(rng.randint(0, 3)):
            owner = rng.choice(owners)
            if owner == f"c{target}":
                continue
            share = min(round(rng.uniform(0.05, 0.6), 3), budget)
            if share >= 0.05:
                graph.add_shareholding(owner, f"c{target}", share)
                budget -= share
    return graph


class TestControlInvariants:
    @given(random_company_graph())
    @settings(max_examples=50, deadline=None)
    def test_control_targets_are_companies(self, graph):
        for _, controlled in control_closure(graph):
            assert graph.is_company(controlled)

    @given(random_company_graph())
    @settings(max_examples=50, deadline=None)
    def test_control_is_transitively_closed(self, graph):
        pairs = control_closure(graph)
        # if x controls z, everything z controls is also controlled by x
        controlled_of = {}
        for x, y in pairs:
            controlled_of.setdefault(x, set()).add(y)
        for x, targets in controlled_of.items():
            for z in list(targets):
                for y in controlled_of.get(z, set()):
                    if y != x:
                        assert y in targets, (x, z, y)

    @given(random_company_graph())
    @settings(max_examples=50, deadline=None)
    def test_group_control_superset_of_individual(self, graph):
        members = [n.id for n in graph.persons()][:2]
        if len(members) < 2:
            return
        joint = group_controlled(graph, members)
        individual = set()
        for member in members:
            individual |= controlled_by(graph, member)
        assert individual - set(members) <= joint

    @given(random_company_graph(), st.floats(min_value=0.3, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_control_antitone_in_threshold(self, graph, threshold):
        strict = control_closure(graph, threshold=threshold)
        loose = control_closure(graph, threshold=0.2)
        assert strict <= loose


class TestOwnershipInvariants:
    @given(random_company_graph())
    @settings(max_examples=40, deadline=None)
    def test_accumulated_ownership_positive_and_bounded_hops(self, graph):
        for source in list(graph.node_ids())[:4]:
            phi = accumulated_ownership_from(graph, source, max_depth=6)
            for value in phi.values():
                assert value > 0

    @given(random_company_graph())
    @settings(max_examples=40, deadline=None)
    def test_direct_share_lower_bounds_phi(self, graph):
        for edge in graph.shareholdings():
            if edge.source == edge.target:
                continue
            phi = accumulated_ownership_from(graph, edge.source)
            assert phi.get(edge.target, 0.0) >= graph.share(
                edge.source, edge.target
            ) - 1e-9


class TestRelationalInvariants:
    @given(random_company_graph())
    @settings(max_examples=40, deadline=None)
    def test_fact_counts_match_graph(self, graph):
        database = to_facts(graph)
        assert database.count("company") == sum(1 for _ in graph.companies())
        assert database.count("person") == sum(1 for _ in graph.persons())
        # parallel edges merge, so facts <= edges
        assert database.count("own") <= graph.edge_count

    @given(random_company_graph())
    @settings(max_examples=40, deadline=None)
    def test_merged_own_weights_equal_share(self, graph):
        database = to_facts(graph)
        for values in database.facts("own"):
            source, target, weight = values[0], values[1], values[2]
            assert weight == pytest.approx(graph.share(source, target))


class TestGeneratorInvariants:
    @given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_profile_consistency(self, persons, seed):
        graph, _ = generate_company_graph(
            CompanySpec(persons=persons, companies=persons // 2 + 1, seed=seed)
        )
        stats = profile(graph)
        assert stats.nodes == graph.node_count
        assert stats.edges == graph.edge_count
        assert stats.scc_count <= stats.nodes
        assert stats.wcc_count <= stats.scc_count  # WCCs merge SCCs


class TestKMeansInvariants:
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_in_range_and_total(self, n, k, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        points = rng.normal(0, 1, (n, 3))
        labels, centroids = kmeans(points, k, seed=seed)
        assert len(labels) == n
        assert all(0 <= label < len(centroids) for label in labels)
        assert len(centroids) <= min(k, n)
