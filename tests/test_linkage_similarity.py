"""Tests for string/value similarity measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linkage import (
    absolute_difference,
    equality_distance,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    year_of,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("rossi", "rosso", 1),
            ("a", "b", 1),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_identity_of_indiscernibles(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_longer_string(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    def test_similarity_normalised(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert 0.0 < levenshtein_similarity("rossi", "rosso") < 1.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_no_overlap(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_winkler_boosts_common_prefix(self):
        plain = jaro("dixon", "dicksonx")
        boosted = jaro_winkler("dixon", "dicksonx")
        assert boosted > plain
        assert jaro_winkler("dixon", "dicksonx") == pytest.approx(0.8133, abs=1e-3)

    @given(st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_jaro_winkler_in_unit_interval(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-9

    @given(st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_jaro_symmetry(self, a, b):
        assert jaro(a, b) == pytest.approx(jaro(b, a))


class TestHelpers:
    def test_absolute_difference(self):
        assert absolute_difference(1980, 1985) == 5.0
        assert absolute_difference(3.5, 1.0) == 2.5

    def test_equality_distance(self):
        assert equality_distance("a", "a") == 0.0
        assert equality_distance("a", "b") == 1.0
        assert equality_distance(None, None) == 0.0

    def test_year_of(self):
        assert year_of("1980-05-12") == 1980
        assert year_of(1975) == 1975
