"""Durable frame store: persist/attach round-trips, version rollback,
atomic-publish crash safety, checksum rejection, and the updater's
persist hook."""

import asyncio

import numpy as np
import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.graph.columnar import EXPORT_DTYPES, GraphFrame
from repro.service import (
    GraphUpdater,
    SnapshotBuilder,
    SnapshotConfig,
    SnapshotManager,
)
from repro.storage import FrameStore, InjectedCrash, StoreError


def graph_model(graph):
    return (
        [(n.id, n.label, dict(n.properties)) for n in graph.nodes()],
        [(e.id, e.source, e.target, e.label, dict(e.properties)) for e in graph.edges()],
        graph._next_edge_id,
    )


@pytest.fixture(scope="module")
def built():
    """Two consecutive snapshot versions over an evolving graph."""
    graph, _ = generate_company_graph(CompanySpec(persons=50, companies=35, seed=9))
    config = SnapshotConfig(augment=True, first_level_clusters=1, use_embeddings=False)
    builder = SnapshotBuilder(config)
    snap1 = builder.build(graph)
    graph2 = graph.copy()
    graph2.add_company("C_ROLL")
    graph2.add_person("P_ROLL")
    graph2.add_shareholding("P_ROLL", "C_ROLL", 0.9)
    snap2 = builder.build(graph2)
    return graph, snap1, graph2, snap2


class TestPersistAttach:
    def test_round_trip_identity(self, tmp_path, built):
        graph, snap1, _, _ = built
        store = FrameStore.create(tmp_path / "store")
        assert store.persist(snap1) == 1
        att = store.attach(1)

        assert att.version == snap1.version
        assert att.control == snap1.control
        assert att.close_links == snap1.close_links
        assert att.family_links == snap1.family_links
        assert att.ubo == snap1.ubo
        assert graph_model(att.graph) == graph_model(snap1.graph)
        assert graph_model(att.augmented) == graph_model(snap1.augmented)
        assert att.created_at == snap1.created_at
        assert att.store_version == 1

    def test_attached_frame_is_adopted_and_mmapped(self, tmp_path, built):
        _, snap1, _, _ = built
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)
        att = store.attach(1)

        assert GraphFrame.of(att.graph) is att.frame
        buffers = dict(att.frame.buffers())
        oracle = dict(snap1.frame.buffers())
        assert set(buffers) == set(dict(EXPORT_DTYPES))
        for name, view in buffers.items():
            assert np.array_equal(view, oracle[name]), name
        # the raw edge/adjacency columns are served straight off the
        # mmapped files (scipy-wrapped buffers get re-materialized)
        for name in ("edge_src", "edge_dst", "walk_weights", "insertion_codes",
                     "csr_indptr", "csr_targets", "csr_positions",
                     "csc_indptr", "csc_sources", "csc_positions"):
            view = buffers[name]
            assert isinstance(view, np.memmap), name
            assert not view.flags.writeable, name

    def test_version_rollback(self, tmp_path, built):
        _, snap1, _, snap2 = built
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)
        store.persist(snap2)

        assert store.latest_version() == 2
        assert store.attach_latest().version == 2
        old = store.attach(1)  # rollback: serve the superseded version
        assert old.version == 1
        assert not old.graph.has_node("C_ROLL")
        assert store.attach(2).graph.has_node("C_ROLL")

    def test_duplicate_version_rejected(self, tmp_path, built):
        _, snap1, _, _ = built
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)
        with pytest.raises(StoreError, match="already persisted"):
            store.persist(snap1)

    def test_missing_and_unpublished_versions(self, tmp_path, built):
        _, snap1, _, _ = built
        store = FrameStore.create(tmp_path / "store")
        with pytest.raises(StoreError, match="no published snapshot versions"):
            store.attach_latest()
        store.persist(snap1)
        with pytest.raises(StoreError, match="not found in store"):
            store.attach(7)

    def test_open_missing_and_corrupt_catalog(self, tmp_path):
        with pytest.raises(StoreError, match="store not found"):
            FrameStore.open(tmp_path / "nowhere")
        root = tmp_path / "bad"
        root.mkdir()
        (root / "catalog.db").write_bytes(b"this is not sqlite at all\x00" * 4)
        with pytest.raises(StoreError, match="corrupt store catalog"):
            FrameStore.open(root)


class TestCrashSafety:
    """Kill the persist at every stage; the store must self-heal to the
    last complete version on reattach."""

    @pytest.mark.parametrize(
        "stage", ["before_files", "mid_files", "after_files", "before_publish"]
    )
    def test_crash_then_self_heal(self, tmp_path, built, stage):
        _, snap1, _, snap2 = built
        root = tmp_path / "store"
        store = FrameStore.create(root)
        store.persist(snap1)
        store.crash_point = stage
        with pytest.raises(InjectedCrash):
            store.persist(snap2)

        # reopen as a fresh process would: recovery purges the staging
        # row and any orphaned version directory, then v1 still serves
        reopened = FrameStore.open(root)
        assert [v["version"] for v in reopened.versions()] == [1]
        assert not reopened.version_dir(2).exists()
        att = reopened.attach_latest()
        assert att.version == 1
        assert att.control == snap1.control

        # the interrupted version number is free again
        assert reopened.persist(snap2) == 2
        assert reopened.attach_latest().version == 2

    def test_checksum_mismatch_rejected(self, tmp_path, built):
        _, snap1, _, snap2 = built
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)
        store.persist(snap2)
        victim = store.version_dir(2) / "edge_src.npy"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte; length stays right
        victim.write_bytes(bytes(blob))

        with pytest.raises(StoreError, match="checksum mismatch"):
            store.attach(2)
        # attach_latest self-heals: demotes v2, falls back to v1
        att = store.attach_latest()
        assert att.version == 1
        states = {v["version"]: v["state"] for v in store.versions()}
        assert states[2] == "corrupt"

    def test_truncated_column_rejected(self, tmp_path, built):
        _, snap1, _, snap2 = built
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)
        store.persist(snap2)
        victim = store.version_dir(2) / "edge_dst.npy"
        blob = victim.read_bytes()
        victim.write_bytes(blob[:-8])

        with pytest.raises(StoreError):
            store.attach(2)
        assert store.attach_latest().version == 1

    def test_deleted_column_rejected(self, tmp_path, built):
        _, snap1, _, snap2 = built
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)
        store.persist(snap2)
        (store.version_dir(2) / "walk_weights.npy").unlink()

        with pytest.raises(StoreError, match="missing"):
            store.attach(2)
        assert store.attach_latest().version == 1


class TestUpdaterPersistHook:
    def test_mutation_persists_next_version(self, tmp_path):
        graph, _ = generate_company_graph(CompanySpec(persons=40, companies=30, seed=4))
        config = SnapshotConfig(augment=True, first_level_clusters=1, use_embeddings=False)
        builder = SnapshotBuilder(config)
        manager = SnapshotManager()
        snap1 = builder.build(graph)
        manager.publish(snap1)
        store = FrameStore.create(tmp_path / "store")
        store.persist(snap1)

        updater = GraphUpdater(manager, builder, graph)
        updater.persist_hook = store.persist

        async def mutate():
            return await updater.apply(
                [
                    {"op": "add_company", "id": "C_HOOK"},
                    {"op": "add_person", "id": "P_HOOK"},
                    {"op": "add_shareholding", "owner": "P_HOOK",
                     "company": "C_HOOK", "share": 0.75},
                ],
                wait=True,
            )

        reply = asyncio.run(mutate())
        assert reply["status"] == "published"
        assert updater.persists == 1
        assert updater.persist_failures == 0
        assert store.latest_version() == 2
        att = store.attach(2)
        assert att.graph.has_node("C_HOOK")
        assert att.control == manager.current.control

    def test_persist_failure_is_non_fatal(self, tmp_path):
        graph, _ = generate_company_graph(CompanySpec(persons=30, companies=20, seed=2))
        config = SnapshotConfig(augment=False)
        builder = SnapshotBuilder(config)
        manager = SnapshotManager()
        manager.publish(builder.build(graph))

        updater = GraphUpdater(manager, builder, graph)

        def explode(snapshot):
            raise RuntimeError("disk on fire")

        updater.persist_hook = explode

        async def mutate():
            return await updater.apply(
                [{"op": "add_company", "id": "C_X"}], wait=True
            )

        reply = asyncio.run(mutate())
        assert reply["status"] == "published"  # serving survived the disk
        assert updater.persist_failures == 1
        assert "disk on fire" in updater.last_persist_error["error"]
        assert updater.last_persist_error["version"] == 2
        assert manager.current.graph.has_node("C_X")
