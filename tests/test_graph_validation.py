"""Tests for data-quality validation."""

import pytest

from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import CompanyGraph
from repro.graph.validation import (
    Finding,
    check_duplicate_persons,
    check_missing_identity_features,
    check_orphan_shareholders,
    check_over_issued_equity,
    check_self_ownership,
    quality_report,
    validate,
)


class TestOverIssuedEquity:
    def test_detected(self):
        graph = CompanyGraph()
        graph.add_person("p")
        graph.add_person("q")
        graph.add_company("c")
        graph.add_shareholding("p", "c", 0.8)
        graph.add_shareholding("q", "c", 0.4)
        findings = list(check_over_issued_equity(graph))
        assert len(findings) == 1
        assert findings[0].subject == "c"
        assert findings[0].severity == "error"

    def test_rounding_tolerated(self):
        graph = CompanyGraph()
        graph.add_person("p")
        graph.add_company("c")
        graph.add_shareholding("p", "c", 1.0)
        assert list(check_over_issued_equity(graph)) == []


class TestSelfOwnership:
    def test_buy_back_is_warning(self):
        graph = CompanyGraph()
        graph.add_company("c")
        graph.add_shareholding("c", "c", 0.05)
        findings = list(check_self_ownership(graph))
        assert findings[0].severity == "warning"

    def test_majority_self_ownership_is_error(self):
        graph = CompanyGraph()
        graph.add_company("c")
        graph.add_shareholding("c", "c", 0.6)
        findings = list(check_self_ownership(graph))
        assert findings[0].severity == "error"

    def test_clean_company_passes(self):
        graph = CompanyGraph()
        graph.add_company("c")
        assert list(check_self_ownership(graph)) == []


class TestDuplicatePersons:
    def test_same_identity_flagged_once(self):
        graph = CompanyGraph()
        graph.add_person("p1", name="Anna", surname="Rossi", birth_date="1980-01-01")
        graph.add_person("p2", name="Anna", surname="Rossi", birth_date="1980-01-01")
        graph.add_person("p3", name="Anna", surname="Rossi", birth_date="1985-05-05")
        findings = list(check_duplicate_persons(graph))
        assert len(findings) == 1
        assert findings[0].subject == "p2"

    def test_incomplete_records_skipped(self):
        graph = CompanyGraph()
        graph.add_person("p1", name="Anna")
        graph.add_person("p2", name="Anna")
        assert list(check_duplicate_persons(graph)) == []


class TestMissingFeaturesAndOrphans:
    def test_missing_features(self):
        graph = CompanyGraph()
        graph.add_person("p", name="Anna")
        findings = list(check_missing_identity_features(graph))
        assert findings and "surname" in findings[0].detail

    def test_orphan_shareholder(self):
        graph = CompanyGraph()
        graph.add_person("p", surname="Rossi", birth_date="1980-01-01")
        assert list(check_orphan_shareholders(graph))
        graph.add_company("c")
        graph.add_shareholding("p", "c", 0.5)
        assert list(check_orphan_shareholders(graph)) == []


class TestValidate:
    def test_errors_sorted_first(self):
        graph = CompanyGraph()
        graph.add_person("p", surname="Rossi", birth_date="1980-01-01")
        graph.add_person("q", surname="Bianchi", birth_date="1981-01-01")
        graph.add_company("c")
        graph.add_shareholding("p", "c", 0.9)
        graph.add_shareholding("q", "c", 0.9)  # over-issue (error)
        findings = validate(graph)
        assert findings[0].severity == "error"

    def test_generator_output_is_mostly_clean(self):
        graph, _ = generate_company_graph(
            CompanySpec(persons=100, companies=60, seed=3, feature_noise=0.0)
        )
        errors = [f for f in validate(graph) if f.severity == "error"]
        assert errors == []

    def test_quality_report_renders(self):
        graph = CompanyGraph()
        graph.add_company("c")
        graph.add_shareholding("c", "c", 0.9)
        report = quality_report(graph)
        assert "excessive_self_ownership" in report
        clean = CompanyGraph()
        assert "no data-quality findings" in quality_report(clean)
