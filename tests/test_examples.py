"""Smoke tests: the runnable examples must stay runnable.

The fast examples run end to end; the two heavier ones (embedding
training over hundreds of nodes) are executed with shrunken populations
by monkeypatching their module-level specs.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def load(name):
    module = importlib.import_module(name)
    importlib.reload(module)
    return module


class TestFastExamples:
    def test_quickstart(self, capsys):
        load("quickstart").main()
        out = capsys.readouterr().out
        assert "holding" in out and "partner_of" in out
        assert "family {anna, bruno} controls bakery" in out

    def test_company_control(self, capsys):
        load("company_control").main()
        out = capsys.readouterr().out
        assert "P1 controls: C, D, E, F" in out
        assert "P2 controls: G, H, I" in out
        assert "absorption chain" in out

    def test_asset_eligibility(self, capsys):
        load("asset_eligibility").main()
        out = capsys.readouterr().out
        assert "REJECTED" in out and "ELIGIBLE" in out
        assert "common owner inv" in out

    def test_beneficial_owners(self, capsys):
        load("beneficial_owners").main()
        out = capsys.readouterr().out
        assert "basis=control" in out
        assert "AML red flag" in out
        assert "37.5%" in out

    def test_ownership_history(self, capsys, monkeypatch):
        module = load("ownership_history")
        monkeypatch.setattr(module, "YEARS", list(range(2005, 2009)))
        module.main()
        out = capsys.readouterr().out
        assert "Structural churn" in out
        assert "Control changes" in out


class TestHeavyExamples:
    def test_family_detection_small(self, capsys, monkeypatch):
        module = load("family_detection")
        from repro.datagen import CompanySpec

        monkeypatch.setattr(
            module, "SPEC", CompanySpec(persons=80, companies=40, seed=42)
        )
        module.main()
        out = capsys.readouterr().out
        assert "predicted" in out and "recall" in out

    def test_kg_augmentation_pipeline_small(self, capsys, monkeypatch):
        module = load("kg_augmentation_pipeline")
        from repro.datagen import CompanySpec

        monkeypatch.setattr(
            module, "SPEC", CompanySpec(persons=60, companies=40, seed=7)
        )
        module.main()
        out = capsys.readouterr().out
        assert "augmented PG" in out
        assert "improves connectivity" in out


class TestSupervisionReport:
    def test_runs_end_to_end(self, capsys, monkeypatch):
        module = load("supervision_report")
        from repro.datagen import CompanySpec

        monkeypatch.setattr(
            module, "SPEC", CompanySpec(persons=60, companies=45, seed=77)
        )
        module.main()
        out = capsys.readouterr().out
        assert "Control groups" in out
        assert "Beneficial owners" in out
        assert "group.dot" in out
