"""Tests for the fixpoint engine: recursion, existentials, aggregates, negation."""

import pytest

from repro.datalog import (
    Database,
    Engine,
    EvaluationError,
    FunctionRegistry,
    Null,
    UnknownFunctionError,
    is_null,
    parse_program,
    solve,
)


class TestBasicEvaluation:
    def test_transitive_closure(self):
        engine = solve(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """,
            [("edge", (1, 2)), ("edge", (2, 3)), ("edge", (3, 4))],
        )
        assert set(engine.query("path")) == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
        }

    def test_cyclic_closure_terminates(self):
        engine = solve(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """,
            [("edge", (1, 2)), ("edge", (2, 1))],
        )
        assert set(engine.query("path")) == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_facts_in_program_text(self):
        engine = solve('p("a"). p("b"). p(X) -> q(X).')
        assert set(engine.query("q")) == {("a",), ("b",)}

    def test_join_on_shared_variable(self):
        engine = solve(
            "r(X, Y), s(Y, Z) -> t(X, Z).",
            [("r", (1, 2)), ("r", (1, 3)), ("s", (2, 9)), ("s", (4, 8))],
        )
        assert engine.query("t") == [(1, 9)]

    def test_repeated_variable_in_atom(self):
        engine = solve(
            "p(X, X) -> same(X).",
            [("p", (1, 1)), ("p", (1, 2)), ("p", (3, 3))],
        )
        assert set(engine.query("same")) == {(1,), (3,)}

    def test_constants_in_body_filter(self):
        engine = solve(
            'p(X, "keep") -> q(X).',
            [("p", (1, "keep")), ("p", (2, "drop"))],
        )
        assert engine.query("q") == [(1,)]

    def test_query_with_pattern(self):
        engine = solve("p(X, Y) -> q(X, Y).", [("p", (1, 2)), ("p", (3, 4))])
        assert engine.query("q", {0: 3}) == [(3, 4)]
        assert engine.holds("q", (1, 2))


class TestComparisonsAndArithmetic:
    def test_threshold_filter(self):
        engine = solve(
            "own(X, Y, W), W > 0.5 -> control(X, Y).",
            [("own", ("a", "b", 0.6)), ("own", ("a", "c", 0.4))],
        )
        assert engine.query("control") == [("a", "b")]

    def test_arithmetic_assignment(self):
        engine = solve("p(X, Y), Z = X * Y + 1 -> q(Z).", [("p", (2, 3))])
        assert engine.query("q") == [(7,)]

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            solve("p(X), Z = 1 / X -> q(Z).", [("p", (0,))])

    def test_string_inequality(self):
        engine = solve(
            'p(X), X != "b" -> q(X).',
            [("p", ("a",)), ("p", ("b",))],
        )
        assert engine.query("q") == [("a",)]

    def test_mixed_type_equality_is_false(self):
        engine = solve(
            "p(X), q(Y), X == Y -> r(X).",
            [("p", (1,)), ("q", ("1",))],
        )
        assert engine.query("r") == []


class TestExistentials:
    def test_existential_creates_null(self):
        engine = solve("own(X, Y) -> link(E, X, Y).", [("own", ("a", "b"))])
        facts = engine.query("link")
        assert len(facts) == 1
        assert is_null(facts[0][0])

    def test_null_deterministic_per_frontier(self):
        # deriving the same head twice must not duplicate the fact
        engine = solve(
            """
            own1(X, Y) -> link(E, X, Y).
            own2(X, Y) -> link(E, X, Y).
            """,
            [("own1", ("a", "b"))],
        )
        assert len(engine.query("link")) == 1

    def test_distinct_frontiers_get_distinct_nulls(self):
        engine = solve(
            "own(X, Y) -> link(E, X, Y).",
            [("own", ("a", "b")), ("own", ("a", "c"))],
        )
        nulls = {values[0] for values in engine.query("link")}
        assert len(nulls) == 2

    def test_shared_existential_across_head_atoms(self):
        engine = solve(
            'own(X, Y) -> link(E, X, Y), edge_type(E, "s").',
            [("own", ("a", "b"))],
        )
        link_null = engine.query("link")[0][0]
        type_null = engine.query("edge_type")[0][0]
        assert link_null == type_null

    def test_skolem_in_head(self):
        engine = solve(
            "c(N) -> node(#sk_c(N)).",
            [("c", ("acme",)), ("c", ("acme",))],
        )
        assert len(engine.query("node")) == 1


class TestNegation:
    def test_stratified_negation(self):
        engine = solve(
            """
            p(X) -> q(X).
            u(X), not q(X) -> only_u(X).
            """,
            [("p", (1,)), ("u", (1,)), ("u", (2,))],
        )
        assert engine.query("only_u") == [(2,)]

    def test_negation_sees_derived_facts(self):
        engine = solve(
            """
            a(X) -> b(X).
            c(X), not b(X) -> d(X).
            """,
            [("a", (1,)), ("c", (1,)), ("c", (2,))],
        )
        assert engine.query("d") == [(2,)]


class TestAggregates:
    def test_msum_groups_by_head_vars(self):
        engine = solve(
            "own(X, Y, W), T = msum(W, <X>) -> total(Y, T).",
            [("own", ("a", "c", 0.3)), ("own", ("b", "c", 0.4)), ("own", ("a", "d", 0.5))],
        )
        totals = {}
        for y, t in engine.query("total"):
            totals[y] = max(totals.get(y, 0.0), t)
        assert totals["c"] == pytest.approx(0.7)
        assert totals["d"] == pytest.approx(0.5)

    def test_msum_contributor_counted_once(self):
        # the same contributor arriving twice must not double-count
        engine = solve(
            """
            own_a(Z, W) -> own(Z, W).
            own_b(Z, W) -> own(Z, W).
            own(Z, W), T = msum(W, <Z>) -> total(T).
            """,
            [("own_a", ("z1", 0.4)), ("own_b", ("z1", 0.4))],
        )
        best = max(t for (t,) in engine.query("total"))
        assert best == pytest.approx(0.4)

    def test_msum_takes_max_per_contributor(self):
        # growing contributions replace, not add (monotonic semantics)
        engine = solve(
            "c(Z, W), T = msum(W, <Z>) -> total(T).",
            [("c", ("z", 0.2)), ("c", ("z", 0.5)), ("c", ("y", 0.1))],
        )
        best = max(t for (t,) in engine.query("total"))
        assert best == pytest.approx(0.6)

    def test_mcount(self):
        engine = solve(
            "member(G, Z), T = mcount(<Z>) -> size(G, T).",
            [("member", ("g", 1)), ("member", ("g", 2)), ("member", ("h", 3))],
        )
        sizes = {}
        for g, t in engine.query("size"):
            sizes[g] = max(sizes.get(g, 0), t)
        assert sizes == {"g": 2, "h": 1}

    def test_mmax_mmin(self):
        engine = solve(
            """
            v(G, Z, W), T = mmax(W, <Z>) -> top(G, T).
            v(G, Z, W), T = mmin(W, <Z>) -> bottom(G, T).
            """,
            [("v", ("g", 1, 5)), ("v", ("g", 2, 3)), ("v", ("g", 3, 9))],
        )
        assert max(t for _, t in engine.query("top")) == 9
        assert min(t for _, t in engine.query("bottom")) == 3

    def test_mprod(self):
        engine = solve(
            "f(Z, W), T = mprod(W, <Z>) -> product(T).",
            [("f", (1, 2.0)), ("f", (2, 3.0))],
        )
        assert max(t for (t,) in engine.query("product")) == pytest.approx(6.0)

    def test_recursive_control_aggregate(self):
        # the paper's Algorithm 5 pattern: joint control through msum
        engine = solve(
            """
            node(X) -> ctrl(X, X).
            ctrl(X, Z), own(Z, Y, W), T = msum(W, <Z>), T > 0.5 -> ctrl(X, Y).
            """,
            [
                ("node", ("p",)), ("node", ("a",)), ("node", ("b",)), ("node", ("c",)),
                ("own", ("p", "a", 0.6)),
                ("own", ("p", "b", 0.3)), ("own", ("a", "b", 0.3)),
                ("own", ("b", "c", 0.51)),
            ],
        )
        controlled_by_p = {y for x, y in engine.query("ctrl") if x == "p" and y != "p"}
        assert controlled_by_p == {"a", "b", "c"}


class TestExternalFunctions:
    def test_registered_function_called(self):
        functions = FunctionRegistry()
        functions.register("double", lambda v: v * 2)
        engine = solve(
            "p(X), Y = $double(X) -> q(Y).",
            [("p", (21,))],
            functions=functions,
        )
        assert engine.query("q") == [(42,)]

    def test_unregistered_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            solve("p(X), Y = $nope(X) -> q(Y).", [("p", (1,))])


class TestProvenance:
    def test_explain_extensional(self):
        engine = solve("p(X) -> q(X).", [("p", (1,))], provenance=True)
        lines = engine.explain("p", (1,))
        assert "extensional" in lines[0]

    def test_explain_derived(self):
        engine = solve(
            """
            @promote p(X) -> q(X).
            @combine q(X), r(X) -> s(X).
            """,
            [("p", (1,)), ("r", (1,))],
            provenance=True,
        )
        lines = engine.explain("s", (1,))
        assert any("combine" in line for line in lines)
        assert any("promote" in line for line in lines)

    def test_stats_populated(self):
        engine = solve("p(X) -> q(X).", [("p", (1,))])
        assert engine.stats.facts_derived == 1
        assert engine.stats.rule_firings >= 1
        assert engine.stats.strata >= 1


class TestNaiveMode:
    def test_naive_equals_seminaive(self):
        program = """
        edge(X, Y) -> path(X, Y).
        path(X, Z), edge(Z, Y) -> path(X, Y).
        """
        facts = [("edge", (i, i + 1)) for i in range(6)] + [("edge", (5, 0))]
        fast = solve(program, list(facts))
        slow_engine = Engine(
            parse_program(program), Database(list(facts)), seminaive=False
        )
        slow_engine.run()
        assert set(fast.query("path")) == set(slow_engine.query("path"))

    def test_iteration_budget_enforced(self):
        program = parse_program(
            """
            p(X), Y = X + 1 -> p(Y).
            """
        )
        engine = Engine(program, Database([("p", (0,))]), max_iterations=5)
        with pytest.raises(EvaluationError):
            engine.run()
