"""Tests for the telemetry subsystem and its engine/pipeline wiring."""

import json

from repro.datalog import Database, Engine, parse_program
from repro.telemetry import NULL_TRACER, NullTracer, Span, Tracer

TC_PROGRAM = """
edge(X, Y) -> path(X, Y).
path(X, Z), edge(Z, Y) -> path(X, Y).
"""

CHAIN = [("edge", (i, i + 1)) for i in range(6)]


class TestSpan:
    def test_duration_is_monotonic(self):
        span = Span("work")
        first = span.duration
        second = span.duration
        assert second >= first >= 0.0
        span.finish()
        frozen = span.duration
        assert span.duration == frozen

    def test_explicit_duration_override(self):
        span = Span("synthetic")
        span.finish(duration=1.5)
        assert span.duration == 1.5

    def test_counters(self):
        span = Span("s")
        span.set("k", 1)
        span.add("hits")
        span.add("hits", 2)
        span.append("deltas", 10)
        span.append("deltas", 0)
        assert span.attributes == {"k": 1, "hits": 3, "deltas": [10, 0]}

    def test_walk_and_find(self):
        root = Span("root")
        a = root.child("a")
        b = a.child("b")
        root.child("a")  # second span with a reused name
        assert [s.name for s in root.walk()] == ["root", "a", "b", "a"]
        assert root.find("b") is b
        assert root.find("missing") is None
        assert len(root.find_all("a")) == 2


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer("run")
        with tracer.span("outer"):
            with tracer.span("inner", depth=2) as inner:
                inner.add("count")
            with tracer.span("sibling"):
                pass
        tracer.finish()
        outer = tracer.find("outer")
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert tracer.find("inner").attributes == {"depth": 2, "count": 1}

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.current is tracer.root
        assert tracer.find("failing").ended is not None

    def test_to_json_round_trips(self):
        tracer = Tracer("t")
        with tracer.span("child", facts=3):
            tracer.append("deltas", 5)
        tracer.finish()
        payload = json.loads(tracer.to_json())
        assert payload["name"] == "t"
        child = payload["children"][0]
        assert child["name"] == "child"
        assert child["attributes"] == {"facts": 3, "deltas": [5]}
        assert child["duration_s"] >= 0.0

    def test_render_shows_tree_and_counters(self):
        tracer = Tracer("root")
        with tracer.span("engine.run", rules=4):
            pass
        tracer.finish()
        rendered = tracer.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  engine.run")
        assert "rules=4" in rendered


class TestNullTracer:
    def test_span_is_reusable_noop(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.add("c")
            span.set("k", 2)
            span.append("list", 1)
            with NULL_TRACER.span("nested") as nested:
                assert nested is span  # the shared singleton
        assert span.attributes == {}
        assert NULL_TRACER.to_dict() == {}
        assert json.loads(NULL_TRACER.to_json() or "{}") == {}

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False
        assert Tracer().enabled is True


class TestEngineInstrumentation:
    def _traced_run(self, seminaive=True):
        tracer = Tracer("test")
        engine = Engine(
            parse_program(TC_PROGRAM),
            Database(list(CHAIN)),
            seminaive=seminaive,
            tracer=tracer,
        )
        engine.run()
        tracer.finish()
        return engine, tracer

    def test_engine_run_span_carries_totals(self):
        engine, tracer = self._traced_run()
        run = tracer.find("engine.run")
        assert run is not None
        assert run.attributes["rules"] == 2
        assert run.attributes["facts_derived"] == engine.stats.facts_derived
        assert run.attributes["rule_firings"] == engine.stats.rule_firings
        assert run.attributes["iterations"] == engine.stats.iterations

    def test_stratum_spans_record_delta_sizes(self):
        _, tracer = self._traced_run()
        strata = [s for s in tracer.root.walk() if s.name.startswith("stratum[")]
        assert strata
        deltas = strata[-1].attributes["delta_sizes"]
        assert deltas[-1] == 0  # the fixpoint round derives nothing
        assert all(isinstance(d, int) for d in deltas)

    def test_per_rule_spans_account_for_all_derivations(self):
        engine, tracer = self._traced_run()
        rule_spans = [s for s in tracer.root.walk() if s.name.startswith("rule:")]
        assert len(rule_spans) == 2
        assert (
            sum(s.attributes["derived"] for s in rule_spans)
            == engine.stats.facts_derived
        )
        assert (
            sum(s.attributes["firings"] for s in rule_spans)
            == engine.stats.rule_firings
        )
        assert all(s.duration >= 0.0 for s in rule_spans)

    def test_naive_mode_is_also_instrumented(self):
        engine, tracer = self._traced_run(seminaive=False)
        rule_spans = [s for s in tracer.root.walk() if s.name.startswith("rule:")]
        assert (
            sum(s.attributes["derived"] for s in rule_spans)
            == engine.stats.facts_derived
        )

    def test_aggregate_state_sizes_reported(self):
        tracer = Tracer()
        engine = Engine(
            parse_program("obs(G, Z, W), T = msum(W, <Z>) -> total(G, T)."),
            Database([("obs", ("g", "z1", 1.0)), ("obs", ("g", "z2", 2.0))]),
            tracer=tracer,
        )
        engine.run()
        strata = [s for s in tracer.root.walk() if s.name.startswith("stratum[")]
        sized = [s for s in strata if "aggregate_groups" in s.attributes]
        assert sized
        assert sized[-1].attributes["aggregate_groups"] == 1
        assert sized[-1].attributes["aggregate_contributions"] == 2

    def test_untraced_engine_uses_null_tracer(self):
        engine = Engine(parse_program(TC_PROGRAM), Database(list(CHAIN)))
        assert engine.tracer is NULL_TRACER
        engine.run()  # no spans, no errors

    def test_traced_and_untraced_runs_agree(self):
        plain = Engine(parse_program(TC_PROGRAM), Database(list(CHAIN)))
        plain.run()
        traced, _ = self._traced_run()
        assert set(plain.query("path")) == set(traced.query("path"))


class TestPipelineInstrumentation:
    def test_pipeline_spans_nest_engine_spans(self):
        from repro.core.pipeline import PipelineConfig, ReasoningPipeline
        from repro.datagen.company_generator import CompanySpec, generate_company_graph

        graph, _ = generate_company_graph(
            CompanySpec(persons=12, companies=10, seed=7)
        )
        tracer = Tracer("pipeline")
        config = PipelineConfig(first_level_clusters=1, use_embeddings=False)
        pipeline = ReasoningPipeline(graph, config, tracer=tracer)
        pairs = pipeline.control_pairs()
        tracer.finish()

        problem = tracer.find("problem.control")
        assert problem is not None
        assert problem.attributes["pairs"] == len(pairs)
        # the engine spans hang below the reasoning span
        assert problem.find("engine.run") is not None
        assert any(
            s.name.startswith("rule:") for s in problem.walk()
        ), "per-rule engine spans must nest under the problem span"

    def test_blocking_span_counts_triples(self):
        from repro.core.pipeline import PipelineConfig, ReasoningPipeline
        from repro.datagen.company_generator import CompanySpec, generate_company_graph

        graph, _ = generate_company_graph(
            CompanySpec(persons=10, companies=8, seed=11)
        )
        tracer = Tracer()
        config = PipelineConfig(first_level_clusters=1, use_embeddings=False)
        pipeline = ReasoningPipeline(graph, config, tracer=tracer)
        triples = pipeline.compute_blocks()
        blocking = tracer.find("pipeline.blocking")
        assert blocking is not None
        assert blocking.attributes["block_triples"] == len(triples)


class TestBenchIntegration:
    def test_timed_traced_returns_span_tree(self):
        from repro.bench import Experiment, timed_traced

        def workload(tracer):
            engine = Engine(
                parse_program(TC_PROGRAM), Database(list(CHAIN)), tracer=tracer
            )
            engine.run()
            return engine.stats.facts_derived

        derived, elapsed, spans = timed_traced(workload)
        assert derived > 0
        assert elapsed > 0
        assert spans["children"][0]["name"] == "engine.run"

        experiment = Experiment("trace-demo", "n")
        experiment.record(6, spans=spans, seconds=elapsed)
        assert experiment.span_trees() == [(6, spans)]
        # plain records remain span-free and the table still renders
        experiment.record(7, seconds=elapsed)
        assert len(experiment.span_trees()) == 1
        assert "trace-demo" in experiment.render()
