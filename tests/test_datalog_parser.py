"""Tests for the Vadalog-like parser."""

import pytest

from repro.datalog import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    Expr,
    FunctionTerm,
    Negation,
    ParseError,
    SkolemTerm,
    Variable,
    parse_program,
    parse_rule,
)


class TestBasicRules:
    def test_single_rule(self):
        rule = parse_rule("p(X), q(X, Y) -> r(Y).")
        assert len(rule.body) == 2
        assert rule.head[0].predicate == "r"
        assert rule.head[0].terms == (Variable("Y"),)

    def test_multiple_heads(self):
        rule = parse_rule("p(X) -> q(X), r(X).")
        assert [atom.predicate for atom in rule.head] == ["q", "r"]

    def test_label(self):
        rule = parse_rule("@myrule p(X) -> q(X).")
        assert rule.label == "myrule"

    def test_constants_in_atoms(self):
        rule = parse_rule('p(X, "hello", 3, 2.5, true) -> q(X).')
        values = [t.value for t in rule.body[0].terms[1:]]
        assert values == ["hello", 3, 2.5, True]

    def test_comments_ignored(self):
        program = parse_program("% comment\np(X) -> q(X). // another\n")
        assert len(program.rules) == 1

    def test_multiple_rules_and_whitespace(self):
        program = parse_program(
            """
            p(X) -> q(X).

            q(X), r(X) -> s(X).
            """
        )
        assert len(program.rules) == 2


class TestFacts:
    def test_simple_fact(self):
        program = parse_program('person("anna", 1980).')
        assert program.facts == [("person", ("anna", 1980))]

    def test_negative_number_fact(self):
        program = parse_program("temp(-5).")
        assert program.facts == [("temp", (-5,))]

    def test_bare_identifier_becomes_string(self):
        program = parse_program("color(red).")
        assert program.facts == [("color", ("red",))]

    def test_fact_and_rule_mixed(self):
        program = parse_program('p("a"). p(X) -> q(X).')
        assert len(program.facts) == 1
        assert len(program.rules) == 1


class TestLiterals:
    def test_negation(self):
        rule = parse_rule("p(X), not q(X) -> r(X).")
        assert isinstance(rule.body[1], Negation)
        assert rule.body[1].atom.predicate == "q"

    def test_comparison(self):
        rule = parse_rule("p(X, W), W >= 0.5 -> q(X).")
        comparison = rule.body[1]
        assert isinstance(comparison, Comparison)
        assert comparison.op == ">="

    def test_all_comparison_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            rule = parse_rule(f"p(X), X {op} 3 -> q(X).")
            assert rule.body[1].op == op

    def test_assignment_with_arithmetic(self):
        rule = parse_rule("p(X, Y), Z = X * Y + 1 -> q(Z).")
        assignment = rule.body[1]
        assert isinstance(assignment, Assignment)
        assert assignment.variable == Variable("Z")
        assert isinstance(assignment.expression, Expr)

    def test_skolem_assignment(self):
        rule = parse_rule("p(N), Z = #sk_c(N) -> q(Z).")
        assignment = rule.body[1]
        assert isinstance(assignment.expression, SkolemTerm)
        assert assignment.expression.name == "sk_c"

    def test_external_function(self):
        rule = parse_rule("p(X, Y), P = $prob(X, Y), P > 0.5 -> q(X, Y).")
        assignment = rule.body[1]
        assert isinstance(assignment.expression, FunctionTerm)
        assert assignment.expression.name == "prob"

    def test_skolem_in_head(self):
        rule = parse_rule("own(X, Y) -> link(#sk_p(X), #sk_c(Y)).")
        head_terms = rule.head[0].terms
        assert isinstance(head_terms[0], SkolemTerm)
        assert isinstance(head_terms[1], SkolemTerm)


class TestAggregates:
    def test_msum_with_contributors(self):
        rule = parse_rule("p(X, Z, W), T = msum(W, <Z>), T > 0.5 -> q(X).")
        aggregate = rule.body[1]
        assert isinstance(aggregate, Aggregate)
        assert aggregate.func == "msum"
        assert aggregate.contributors == (Variable("Z"),)

    def test_msum_expression(self):
        rule = parse_rule("p(Z, W1, W2), T = msum(W1 * W2, <Z>) -> q(T).")
        aggregate = rule.body[1]
        assert isinstance(aggregate.expression, Expr)

    def test_multiple_contributors(self):
        rule = parse_rule("p(Z, E, W), T = msum(W, <Z, E>) -> q(T).")
        assert aggregate_of(rule).contributors == (Variable("Z"), Variable("E"))

    def test_no_contributors(self):
        rule = parse_rule("p(X, W), T = msum(W) -> q(X, T).")
        assert aggregate_of(rule).contributors == ()

    def test_mcount(self):
        rule = parse_rule("p(X, Z), T = mcount(<Z>) -> q(X, T).")
        aggregate = aggregate_of(rule)
        assert aggregate.func == "mcount"
        assert aggregate.expression == Constant(1)

    def test_mmax_mmin_mprod(self):
        for func in ("mmax", "mmin", "mprod"):
            rule = parse_rule(f"p(X, Z, W), T = {func}(W, <Z>) -> q(X, T).")
            assert aggregate_of(rule).func == func


def aggregate_of(rule):
    for literal in rule.body:
        if isinstance(literal, Aggregate):
            return literal
    raise AssertionError("no aggregate in rule")


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("p(X) -> q(X)")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            parse_program('p("abc) -> q(X).')

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) -> q(X) & r(X).")

    def test_parse_rule_rejects_two_rules(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) -> q(X). q(X) -> r(X).")

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_program("p(X) -> q(X).\np(X) -> .")
        assert "line 2" in str(info.value)


class TestRoundTrip:
    def test_str_of_parsed_rule_reparses(self):
        source = 'p(X, W), W >= 0.5, not r(X), T = msum(W, <X>) -> q(X, T).'
        rule = parse_rule(source)
        reparsed = parse_rule(str(rule))
        assert str(reparsed) == str(rule)


class TestNumericLiterals:
    def test_scientific_notation(self):
        rule = parse_rule("p(X), X > 1e-3 -> q(X).")
        assert rule.body[1].rhs.value == pytest.approx(0.001)

    def test_leading_dot_float(self):
        program = parse_program("w(.5).")
        assert program.facts == [("w", (0.5,))]

    def test_unary_minus_in_expression(self):
        rule = parse_rule("p(X), Y = -X + 1 -> q(Y).")
        assert rule is not None

    def test_negative_constant_in_comparison(self):
        rule = parse_rule("p(X), X > -5 -> q(X).")
        assert rule is not None


class TestNestedExpressions:
    def test_parentheses_override_precedence(self):
        from repro.datalog import solve

        engine = solve("p(X), Y = (X + 1) * 2 -> q(Y).", [("p", (3,))])
        assert engine.query("q") == [(8,)]

    def test_precedence_without_parentheses(self):
        from repro.datalog import solve

        engine = solve("p(X), Y = X + 1 * 2 -> q(Y).", [("p", (3,))])
        assert engine.query("q") == [(5,)]

    def test_percent_is_always_a_comment(self):
        # '%' starts a comment (modulo is not in the surface syntax; the
        # programmatic Expr("%", ...) form still evaluates)
        rule = parse_rule("p(X), Y = X + 1 -> q(Y). % trailing words")
        assert rule is not None

    def test_skolem_with_expression_argument(self):
        rule = parse_rule("p(X), Z = #sk(X + 1) -> q(Z).")
        assert isinstance(rule.body[1].expression, SkolemTerm)

    def test_nested_function_calls(self):
        rule = parse_rule("p(X), Z = $outer($inner(X)) -> q(Z).")
        outer = rule.body[1].expression
        assert isinstance(outer, FunctionTerm)
        assert isinstance(outer.args[0], FunctionTerm)


class TestWhitespaceAndComments:
    def test_rule_spanning_lines(self):
        rule = parse_rule(
            """
            p(X),
              q(X, Y)
            -> r(Y).
            """
        )
        assert rule.head[0].predicate == "r"

    def test_comment_between_rules(self):
        program = parse_program(
            "p(X) -> q(X).\n% interlude\nq(X) -> r(X).\n// coda\n"
        )
        assert len(program.rules) == 2

    def test_empty_program(self):
        program = parse_program("   % nothing here\n")
        assert len(program.rules) == 0 and program.facts == []

    def test_zero_arity_atom(self):
        from repro.datalog import solve

        engine = solve("flag() -> fired().", [("flag", ())])
        assert engine.query("fired") == [()]
