"""Tests for the fully declarative blocking path (Algorithm 3 rule 1)."""

import pytest

from repro.core import PipelineConfig, ReasoningPipeline
from repro.datagen import CompanySpec, generate_company_graph
from repro.linkage import persons_of, train_classifiers


@pytest.fixture(scope="module")
def world():
    return generate_company_graph(
        CompanySpec(persons=60, companies=30, seed=13, feature_noise=0.0)
    )


def fast_config():
    return PipelineConfig(first_level_clusters=1, use_embeddings=False)


class TestDeclarativeBlocking:
    def test_block_facts_derived_by_engine(self, world):
        graph, _ = world
        pipeline = ReasoningPipeline(graph, fast_config())
        pipeline.register_declarative_blocking()
        engine = pipeline.reason(["input_mapping", "blocking"])
        persons = sum(1 for _ in graph.persons())
        companies = sum(1 for _ in graph.companies())
        assert engine.database.count("block") == persons + companies

    def test_family_links_via_declarative_blocks(self, world):
        graph, truth = world
        classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)

        pipeline = ReasoningPipeline(graph, fast_config(), classifiers=classifiers)
        pipeline.register_declarative_blocking()
        engine = pipeline.reason(
            ["input_mapping", "blocking", "family_links",
             "link_creation", "output_mapping"]
        )
        declarative = {
            (x, y, c)
            for c in ("partner_of", "sibling_of", "parent_of")
            for x, y in engine.query(c)
        }
        assert declarative
        # single-key blocking is a subset of the injected multi-pass path
        injected_pipeline = ReasoningPipeline(graph, fast_config(), classifiers=classifiers)
        injected = injected_pipeline.family_links()
        assert declarative <= injected

    def test_blocks_respect_first_level_assignment(self, world):
        graph, _ = world
        pipeline = ReasoningPipeline(graph, fast_config())
        pipeline.register_declarative_blocking()
        engine = pipeline.reason(["input_mapping", "blocking"])
        first_levels = {values[0] for values in engine.query("block")}
        assert first_levels == {0}  # embeddings off -> single first-level cluster
