"""Tests for the KnowledgeGraph container (extensional + intensional)."""

import pytest

from repro.core import KnowledgeGraph
from repro.datalog import Database, UnknownFunctionError
from repro.graph import figure1_graph


class TestConstruction:
    def test_from_property_graph(self):
        kg = KnowledgeGraph(figure1_graph())
        assert kg.extensional.count("company") == 8
        assert kg.extensional.count("person") == 2
        assert kg.extensional.count("own") == 13

    def test_from_fact_list(self):
        kg = KnowledgeGraph([("p", (1,)), ("q", (2, 3))])
        assert kg.extensional.count("p") == 1

    def test_from_database(self):
        db = Database([("p", (1,))])
        kg = KnowledgeGraph(db)
        assert kg.extensional is db

    def test_empty(self):
        kg = KnowledgeGraph()
        assert kg.extensional.count() == 0


class TestRuleSets:
    def test_add_and_list(self):
        kg = KnowledgeGraph()
        kg.add_rules("tc", "edge(X, Y) -> path(X, Y).")
        kg.add_rules("step", "path(X, Z), edge(Z, Y) -> path(X, Y).")
        assert kg.rule_sets() == ["tc", "step"]
        assert len(kg.program()) == 2
        assert len(kg.program(["tc"])) == 1

    def test_replace_rule_set(self):
        kg = KnowledgeGraph()
        kg.add_rules("r", "a(X) -> b(X).")
        kg.add_rules("r", "a(X) -> c(X).")
        assert len(kg.program()) == 1
        assert kg.program().rules[0].head[0].predicate == "c"

    def test_remove_rule_set(self):
        kg = KnowledgeGraph()
        kg.add_rules("r", "a(X) -> b(X).")
        kg.remove_rules("r")
        assert kg.rule_sets() == []
        kg.remove_rules("never-existed")  # no error


class TestReasoning:
    def test_reason_selected_sets(self):
        kg = KnowledgeGraph([("edge", (1, 2)), ("edge", (2, 3))])
        kg.add_rules("base", "edge(X, Y) -> path(X, Y).")
        kg.add_rules("step", "path(X, Z), edge(Z, Y) -> path(X, Y).")
        base_only = kg.reason(["base"])
        assert set(base_only.query("path")) == {(1, 2), (2, 3)}
        full = kg.reason()
        assert (1, 3) in set(full.query("path"))

    def test_extensional_component_never_mutated(self):
        kg = KnowledgeGraph([("edge", (1, 2))])
        kg.add_rules("base", "edge(X, Y) -> path(X, Y).")
        kg.reason()
        assert kg.extensional.count("path") == 0  # derived facts stay out

    def test_registered_functions_available(self):
        kg = KnowledgeGraph([("p", (3,))])
        kg.register_function("square", lambda v: v * v)
        kg.add_rules("r", "p(X), Y = $square(X) -> q(Y).")
        engine = kg.reason()
        assert engine.query("q") == [(9,)]

    def test_missing_function_raises(self):
        kg = KnowledgeGraph([("p", (3,))])
        kg.add_rules("r", "p(X), Y = $nope(X) -> q(Y).")
        with pytest.raises(UnknownFunctionError):
            kg.reason()

    def test_add_facts_after_construction(self):
        kg = KnowledgeGraph()
        kg.add_fact("edge", (1, 2))
        kg.add_facts([("edge", (2, 3))])
        kg.add_rules("base", "edge(X, Y) -> path(X, Y).")
        assert len(kg.reason().query("path")) == 2
