"""Tests for the Graphviz DOT export."""

import pytest

from repro.graph import CompanyGraph, figure1_graph
from repro.graph.dot import save_dot, to_dot


@pytest.fixture
def augmented():
    graph = figure1_graph()
    graph.add_edge("P1", "C", "control")
    graph.add_edge("C", "D", "close_link")
    graph.add_edge("D", "C", "close_link")
    graph.add_edge("P1", "P2", "partner_of")
    return graph


class TestToDot:
    def test_valid_digraph_structure(self, augmented):
        dot = to_dot(augmented)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_all_nodes_present(self, augmented):
        dot = to_dot(augmented)
        for node in augmented.node_ids():
            assert f'"{node}"' in dot

    def test_paper_styling(self, augmented):
        dot = to_dot(augmented)
        assert "shape=box" in dot                     # companies
        assert "color=blue" in dot                    # persons
        assert "color=forestgreen" in dot             # control edges
        assert "color=magenta" in dot                 # close links
        assert "color=red" in dot                     # personal links

    def test_share_labels(self, augmented):
        dot = to_dot(augmented)
        assert '"80%"' in dot
        assert '"40%"' in dot

    def test_share_labels_can_be_disabled(self, augmented):
        dot = to_dot(augmented, show_share_labels=False)
        assert '"80%"' not in dot

    def test_symmetric_relations_drawn_once(self, augmented):
        dot = to_dot(augmented, symmetric_once=True)
        assert dot.count("[color=magenta") == 1
        assert "dir=both" in dot
        both_ways = to_dot(augmented, symmetric_once=False)
        assert both_ways.count("[color=magenta") == 2

    def test_quoting_of_special_characters(self):
        graph = CompanyGraph()
        graph.add_company('we"ird', name='Acme "The" SRL')
        dot = to_dot(graph)
        assert '\\"' in dot

    def test_node_name_property_used_as_label(self):
        graph = CompanyGraph()
        graph.add_company("c1", name="Acme SRL")
        assert 'label="Acme SRL"' in to_dot(graph)

    def test_save_dot(self, augmented, tmp_path):
        path = tmp_path / "graph.dot"
        save_dot(augmented, path)
        content = path.read_text()
        assert content.startswith("digraph")
        assert content.endswith("}\n")
