"""Additional engine edge cases: pruning soundness, nulls, explain limits."""

import pytest

from repro.datalog import Database, Engine, Null, parse_program, solve


class TestAggregatePruningSoundness:
    """The unimproved-aggregate skip must never lose derivable facts."""

    def test_tail_comparison_on_foreign_variable_not_pruned(self):
        # The second arrival of contributor "z" carries a smaller W (not
        # improved) but NOW satisfies the tail comparison W < 0.2: the
        # head p(T) must still be derived.  The static analysis must mark
        # this rule non-skippable because W is not determined by (group, T).
        engine = solve(
            """
            stage1(Z, W) -> c(Z, W).
            stage2(Z, W) -> c(Z, W).
            c(Z, W), T = msum(W, <Z>), W < 0.2 -> p(T).
            """,
            [("stage1", ("z", 0.3)), ("stage2", ("z", 0.1))],
        )
        assert engine.query("p")  # p(0.3) via the W=0.1 re-arrival

    def test_determined_tail_is_pruned_but_complete(self):
        # heads depending only on (group, total) stay complete under pruning
        engine = solve(
            """
            a(Z, W) -> c(Z, W).
            b(Z, W) -> c(Z, W).
            c(Z, W), T = msum(W, <Z>), T > 0.1 -> total_seen(T).
            """,
            [("a", ("z1", 0.3)), ("b", ("z1", 0.3)), ("a", ("z2", 0.2))],
        )
        totals = {t for (t,) in engine.query("total_seen")}
        assert totals == {0.3, 0.5}

    def test_atom_after_aggregate_not_pruned(self):
        engine = solve(
            """
            c(Z, W), T = msum(W, <Z>), lookup(T, L) -> p(L).
            """,
            [("c", ("z", 0.5)), ("lookup", (0.5, "hit"))],
        )
        assert engine.query("p") == [("hit",)]


class TestNullsAsValues:
    def test_null_values_join(self):
        engine = solve(
            """
            own(X, Y) -> link(E, X, Y).
            link(E, X, Y), link(E, X2, Y2) -> same_edge(X, X2).
            """,
            [("own", ("a", "b"))],
        )
        assert engine.query("same_edge") == [("a", "a")]

    def test_null_inequality_comparison(self):
        engine = solve(
            """
            own(X, Y) -> link(E, X, Y).
            link(E1, X, Y), link(E2, X2, Y2), E1 != E2 -> distinct(X, X2).
            """,
            [("own", ("a", "b")), ("own", ("c", "d"))],
        )
        pairs = set(engine.query("distinct"))
        assert ("a", "c") in pairs and ("c", "a") in pairs

    def test_facts_with_none_values(self):
        engine = solve(
            "p(X, Y) -> q(Y).",
            [("p", (1, None))],
        )
        assert engine.query("q") == [(None,)]


class TestExplain:
    def test_explain_unknown_fact_reports_extensional(self):
        engine = solve("p(X) -> q(X).", [("p", (1,))], provenance=True)
        lines = engine.explain("never_derived", (9,))
        assert "extensional" in lines[0]

    def test_explain_depth_limited_on_deep_chains(self):
        rules = "base(X) -> level0(X).\n"
        for i in range(30):
            rules += f"level{i}(X) -> level{i + 1}(X).\n"
        engine = solve(rules, [("base", (1,))], provenance=True)
        lines = engine.explain("level30", (1,))
        assert any("depth limit" in line for line in lines)

    def test_provenance_disabled_gives_extensional_answers(self):
        engine = solve("p(X) -> q(X).", [("p", (1,))], provenance=False)
        assert "extensional" in engine.explain("q", (1,))[0]


class TestEngineReuse:
    def test_run_twice_is_stable(self):
        program = parse_program(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """
        )
        engine = Engine(program, Database([("edge", (1, 2)), ("edge", (2, 3))]))
        first = set(engine.run().facts("path"))
        second = set(engine.run().facts("path"))
        assert first == second

    def test_query_before_run_sees_edb_only(self):
        program = parse_program("p(X) -> q(X).")
        engine = Engine(program, Database([("p", (1,))]))
        assert engine.query("q") == []
        engine.run()
        assert engine.query("q") == [(1,)]


class TestMixedArity:
    def test_link3_and_link4_coexist(self):
        engine = solve(
            """
            typed(E, X, Y) -> link(E, X, Y).
            weighted(E, X, Y, W) -> link(E, X, Y, W).
            link(E, X, Y) -> three(X, Y).
            link(E, X, Y, W) -> four(X, Y, W).
            """,
            [("typed", ("e1", "a", "b")), ("weighted", ("e2", "c", "d", 0.5))],
        )
        assert engine.query("three") == [("a", "b")]
        assert engine.query("four") == [("c", "d", 0.5)]


class TestAsk:
    def setup_method(self):
        self.engine = solve(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Z), edge(Z, Y) -> path(X, Y).
            """,
            [("edge", ("a", "b")), ("edge", ("b", "c"))],
        )

    def test_free_variables(self):
        answers = self.engine.ask('path("a", X)')
        assert {b["X"] for b in answers} == {"b", "c"}

    def test_ground_query(self):
        assert self.engine.ask('path("a", "c")') == [{}]
        assert self.engine.ask('path("c", "a")') == []

    def test_all_free(self):
        answers = self.engine.ask("path(X, Y)")
        assert len(answers) == 3

    def test_repeated_variable_unifies(self):
        engine = solve("p(X, Y) -> q(X, Y).", [("p", (1, 1)), ("p", (1, 2))])
        answers = engine.ask("q(X, X)")
        assert answers == [{"X": 1}]

    def test_malformed_query_rejected(self):
        import pytest as _pytest
        from repro.datalog import ParseError
        with _pytest.raises((ParseError, Exception)):
            self.engine.ask("not_an_atom(")
