"""Tenant dimension of the durable frame store.

Per-tenant version streams (two tenants both holding a version 1 without
colliding in the catalog or on disk), tenant-scoped attach, the v1 -> v2
in-place catalog migration, and ``gc`` history pruning that never
touches staging rows or a stream's latest published version.
"""

import sqlite3

import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.service import SnapshotBuilder, SnapshotConfig, TenantError
from repro.storage import FrameStore, StoreError
from repro.storage import catalog as cat
from repro.storage.stream import OutOfCoreGraph, StreamingGraphWriter


def graph_model(graph):
    return (
        [(n.id, n.label, dict(n.properties)) for n in graph.nodes()],
        [(e.id, e.source, e.target, e.label, dict(e.properties))
         for e in graph.edges()],
    )


def build_snapshots(seed, versions=1):
    """``versions`` consecutive snapshots over an evolving graph."""
    graph, _ = generate_company_graph(
        CompanySpec(persons=30, companies=24, seed=seed)
    )
    config = SnapshotConfig(augment=True, first_level_clusters=1,
                            use_embeddings=False)
    builder = SnapshotBuilder(config)
    out = [builder.build(graph)]
    for i in range(versions - 1):
        graph = graph.copy()
        graph.add_company(f"C_EXTRA{i}")
        out.append(builder.build(graph))
    return out


class TestTenantStreams:
    def test_two_tenants_share_version_numbers_without_colliding(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        (snap_a,) = build_snapshots(seed=3)
        (snap_b,) = build_snapshots(seed=7)
        assert store.persist(snap_a, tenant="alpha") == 1
        assert store.persist(snap_b, tenant="beta") == 1  # same number, own stream

        assert store.tenants() == ["alpha", "beta"]
        assert store.published_versions(tenant="alpha") == [1]
        assert store.published_versions(tenant="beta") == [1]
        assert store.version_dir(1, "alpha") != store.version_dir(1, "beta")
        assert store.version_dir(1, "alpha").is_dir()
        assert store.version_dir(1, "beta").is_dir()

        att_a = store.attach_latest(tenant="alpha")
        att_b = store.attach_latest(tenant="beta")
        assert att_a.store_tenant == "alpha"
        assert att_b.store_tenant == "beta"
        assert graph_model(att_a.graph) == graph_model(snap_a.graph)
        assert graph_model(att_b.graph) == graph_model(snap_b.graph)
        assert graph_model(att_a.graph) != graph_model(att_b.graph)

    def test_duplicate_version_within_a_tenant_still_fails(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        (snap,) = build_snapshots(seed=1)
        store.persist(snap, tenant="alpha")
        with pytest.raises(StoreError, match="already persisted"):
            store.persist(snap, tenant="alpha")

    def test_bad_tenant_name_rejected_before_any_io(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        (snap,) = build_snapshots(seed=1)
        with pytest.raises(TenantError):
            store.persist(snap, tenant="../escape")
        assert store.tenants() == []

    def test_reopen_recovers_per_tenant(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        (snap_a,) = build_snapshots(seed=3)
        (snap_b,) = build_snapshots(seed=7)
        store.persist(snap_a, tenant="alpha")
        store.persist(snap_b, tenant="beta")
        # fake a crash mid-persist of beta's v2: staging row + orphan dir
        with store._connect() as conn:
            conn.execute(
                "INSERT INTO versions (tenant, version, state, kind,"
                " created_at) VALUES ('beta', 2, 'staging', 'snapshot', 0)"
            )
            conn.commit()
        store.version_dir(2, "beta").mkdir(parents=True)
        reopened = FrameStore.open(tmp_path / "store")
        assert not reopened.version_dir(2, "beta").exists()
        assert reopened.versions(tenant="beta")[0]["state"] == "published"
        # alpha is untouched by beta's recovery
        assert reopened.attach_latest(tenant="alpha").version == snap_a.version

    def test_streaming_writer_per_tenant(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        for tenant, share in (("alpha", 0.5), ("beta", 0.9)):
            writer = StreamingGraphWriter(store, tenant=tenant)
            writer.add_person("P1")
            writer.add_company("C1")
            writer.add_shareholding("P1", "C1", share)
            assert writer.finalize() == 1
        ooc_a = OutOfCoreGraph(store, tenant="alpha")
        ooc_b = OutOfCoreGraph(store, tenant="beta")
        try:
            assert ooc_a.share("P1", "C1") == 0.5
            assert ooc_b.share("P1", "C1") == 0.9
        finally:
            ooc_a.close()
            ooc_b.close()


class TestMigration:
    def _downgrade_to_v1(self, root):
        """Rewrite a fresh v2 store as the exact v1 layout: tenantless
        tables, top-level ``versions/v*`` directories, format marker 1."""
        store = FrameStore(root)
        conn = sqlite3.connect(str(store.catalog_path))
        conn.execute("PRAGMA foreign_keys=OFF")
        for table in cat.VERSIONED_TABLES:
            cols = cat._V1_COLUMNS[table]
            conn.execute(f"ALTER TABLE {table} RENAME TO {table}_new")
            conn.execute(
                f"CREATE TABLE {table} AS SELECT {cols} FROM {table}_new"
            )
            conn.execute(f"DROP TABLE {table}_new")
        conn.execute("DROP INDEX IF EXISTS nodes_by_id")
        conn.execute("DROP INDEX IF EXISTS nodes_by_intern")
        conn.execute("UPDATE store_meta SET value = '1' WHERE key = 'format'")
        conn.commit()
        conn.close()
        default_dir = store.versions_root / "default"
        if default_dir.is_dir():
            for entry in list(default_dir.iterdir()):
                entry.rename(store.versions_root / entry.name)
            default_dir.rmdir()

    def test_v1_store_migrates_in_place_and_serves(self, tmp_path):
        root = tmp_path / "store"
        store = FrameStore.create(root)
        snap1, snap2 = build_snapshots(seed=5, versions=2)
        store.persist(snap1)
        store.persist(snap2)
        before = graph_model(store.attach(2).graph)
        self._downgrade_to_v1(root)
        assert (root / "versions" / "v00000001").is_dir()

        migrated = FrameStore.open(root)  # migration runs inside open
        with migrated._connect() as conn:
            assert cat.catalog_format(conn) == cat.CATALOG_FORMAT
        assert migrated.tenants() == ["default"]
        assert migrated.published_versions() == [1, 2]
        assert not (root / "versions" / "v00000001").exists()
        assert migrated.version_dir(1).is_dir()
        att = migrated.attach(2)
        assert graph_model(att.graph) == before
        assert att.store_tenant == "default"
        # the migrated stream keeps growing
        snap3 = build_snapshots(seed=5, versions=3)[2]
        assert migrated.persist(snap3) == 3


class TestGc:
    def test_gc_keeps_newest_per_stream_and_refuses_keep_zero(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        for snap in build_snapshots(seed=3, versions=3):
            store.persist(snap, tenant="alpha")
        for snap in build_snapshots(seed=7, versions=2):
            store.persist(snap, tenant="beta")

        with pytest.raises(StoreError, match="keep"):
            store.gc(0)

        pruned = store.gc(keep=2)
        assert [(p["tenant"], p["version"]) for p in pruned] == [("alpha", 1)]
        assert store.published_versions(tenant="alpha") == [2, 3]
        assert store.published_versions(tenant="beta") == [1, 2]
        assert not store.version_dir(1, "alpha").exists()
        # catalog rows are gone too, not just the files
        assert store.versions(tenant="alpha")[0]["version"] == 2

        # keep=1 leaves exactly the latest of every stream
        store.gc(keep=1)
        assert store.published_versions(tenant="alpha") == [3]
        assert store.published_versions(tenant="beta") == [2]
        store.gc(keep=1)  # idempotent: nothing below the floor
        assert store.attach_latest(tenant="alpha").version == 3
        assert store.attach_latest(tenant="beta").version == 2

    def test_gc_never_touches_staging_and_scopes_by_tenant(self, tmp_path):
        store = FrameStore.create(tmp_path / "store")
        for snap in build_snapshots(seed=3, versions=2):
            store.persist(snap, tenant="alpha")
        for snap in build_snapshots(seed=7, versions=2):
            store.persist(snap, tenant="beta")
        with store._connect() as conn:
            conn.execute(
                "INSERT INTO versions (tenant, version, state, kind,"
                " created_at) VALUES ('alpha', 9, 'staging', 'snapshot', 0)"
            )
            conn.commit()

        pruned = store.gc(keep=1, tenant="alpha")
        assert [(p["tenant"], p["version"]) for p in pruned] == [("alpha", 1)]
        # beta untouched (tenant scope), staging row untouched (state)
        assert store.published_versions(tenant="beta") == [1, 2]
        rows = {
            (r["version"], r["state"]) for r in store.versions(tenant="alpha")
        }
        assert rows == {(2, "published"), (9, "staging")}
