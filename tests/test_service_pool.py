"""SO_REUSEPORT worker-pool end-to-end tests.

The acceptance-critical properties:

* both workers serve all endpoints on one port, each tagged with its
  ``worker_id`` and the snapshot version;
* a ``POST /mutations`` against any worker is forwarded to the parent
  builder and, once it returns, **every** worker serves the new version
  with payloads identical to the in-process oracle snapshot;
* publish-during-read races: readers hammering the pool while the
  builder publishes K versions only ever see responses that are
  internally consistent with exactly one version (a response claiming
  version v carries exactly version v's rows — no torn reads), and the
  retired segments end up unlinked;
* a crashed worker is restarted against the current segment and serving
  capacity recovers.
"""

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.datagen.company_generator import CompanySpec, generate_company_graph
from repro.service import ServiceConfig
from repro.service.workers import PoolConfig, ServicePool


@pytest.fixture(scope="module")
def graph():
    g, _truth = generate_company_graph(CompanySpec(persons=30, companies=24, seed=11))
    return g


@pytest.fixture(scope="module")
def pool(graph):
    pool = ServicePool(
        graph,
        workers=2,
        config=ServiceConfig(port=0),
        pool_config=PoolConfig(sweep_interval_s=0.05),
    )
    pool.start()
    yield pool
    pool.stop(drain=False)


async def http_request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        if payload:
            head += f"Content-Length: {len(payload)}\r\n"
        writer.write((head + "\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(body_bytes)


def request(port, method, path, body=None):
    return asyncio.run(http_request(port, method, path, body))


def wait_until(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def healthz_by_worker(port, attempts=40):
    """Hit /healthz until the kernel has load-balanced us to every
    worker at least once; returns {worker_id: version}."""
    seen = {}
    for _ in range(attempts):
        status, payload = request(port, "GET", "/healthz")
        assert status == 200
        seen[payload["worker_id"]] = payload["version"]
        if len(seen) >= 2:
            break
    return seen


class TestServing:
    def test_both_workers_answer_every_endpoint(self, graph, pool):
        company = next(graph.companies()).id
        seen = healthz_by_worker(pool.port)
        assert len(seen) == 2, f"kernel never balanced to both workers: {seen}"
        for path in (
            "/control",
            "/close-links",
            "/family",
            f"/ubo/{company}",
            f"/neighbors/{company}?depth=2",
            "/stats",
            "/metrics",
        ):
            status, payload = request(pool.port, "GET", path)
            assert status == 200, f"{path}: {payload}"
        status, stats = request(pool.port, "GET", "/stats")
        assert stats["snapshot_version"] == pool.version
        assert stats["worker_id"] in (0, 1)

    def test_responses_identical_to_oracle(self, graph, pool):
        oracle = pool.oracle
        companies = sorted((n.id for n in graph.companies()), key=str)[:5]
        _, control = request(pool.port, "GET", "/control")
        expected = json.loads(json.dumps(oracle.control_payload(), default=str))
        assert control == expected
        for company in companies:
            _, served = request(pool.port, "GET", f"/ubo/{company}")
            expected = json.loads(
                json.dumps(oracle.ubo_payloads([company])[company], default=str)
            )
            assert served == expected

    def test_cluster_metrics_merge_over_http(self, pool):
        # a few requests so both workers have counters to contribute
        healthz_by_worker(pool.port)
        request(pool.port, "GET", "/control")
        status, payload = request(pool.port, "GET", "/metrics?scope=cluster")
        assert status == 200
        assert payload["scope"] == "cluster"
        assert sorted(payload["workers"]) == pool.live_workers()
        merged = payload["merged"]
        per_worker = payload["per_worker"]
        total = sum(p["requests"].get("healthz", 0) for p in per_worker.values())
        assert merged["requests"]["healthz"] == total
        assert payload["snapshot_version"] == pool.version


class TestMutations:
    def test_forwarded_mutation_publishes_to_all_workers(self, graph, pool):
        owner = sorted((n.id for n in graph.persons()), key=str)[0]
        before = pool.version
        status, reply = request(
            pool.port,
            "POST",
            "/mutations?wait=1",
            {
                "deltas": [
                    {"op": "add_company", "id": "POOLCO", "properties": {"name": "P"}},
                    {
                        "op": "add_shareholding",
                        "owner": owner,
                        "company": "POOLCO",
                        "share": 0.9,
                    },
                ]
            },
        )
        assert status == 200, reply
        assert reply["version"] == before + 1
        assert reply["workers_attached"] == pool.live_workers()
        assert wait_until(
            lambda: set(healthz_by_worker(pool.port).values()) == {before + 1}
        )
        status, served = request(pool.port, "GET", "/ubo/POOLCO")
        assert status == 200
        expected = json.loads(
            json.dumps(pool.oracle.ubo_payloads(["POOLCO"])["POOLCO"], default=str)
        )
        assert served == expected

    def test_invalid_batch_rejected_through_forwarder(self, pool):
        status, reply = request(
            pool.port, "POST", "/mutations?wait=1", {"deltas": [{"op": "nope"}]}
        )
        assert status == 400
        assert "unknown op" in reply["error"]


class TestPublishDuringReadRace:
    VERSIONS = 4

    def test_no_torn_reads_and_segments_unlink(self, graph, pool):
        """Readers hammer while the builder publishes K versions: every
        response must match the oracle of the version it claims."""
        owner = sorted((n.id for n in graph.persons()), key=str)[1]
        initial_segments = pool.segment_names()
        expected = {
            pool.version: json.loads(
                json.dumps(pool.oracle.control_payload(), default=str)
            )
        }
        publish_done = threading.Event()
        publish_errors = []

        def publisher():
            try:
                for k in range(self.VERSIONS):
                    pool.mutate(
                        [
                            {
                                "op": "add_company",
                                "id": f"RACECO{k}",
                                "properties": {"name": f"R{k}"},
                            },
                            {
                                "op": "add_shareholding",
                                "owner": owner,
                                "company": f"RACECO{k}",
                                "share": 0.8,
                            },
                        ]
                    )
                    expected[pool.version] = json.loads(
                        json.dumps(pool.oracle.control_payload(), default=str)
                    )
            except Exception as exc:  # surfaces in the main thread
                publish_errors.append(exc)
            finally:
                publish_done.set()

        responses = []

        async def hammer():
            while not publish_done.is_set():
                batch = await asyncio.gather(
                    *(http_request(pool.port, "GET", "/control") for _ in range(8))
                )
                responses.extend(batch)

        thread = threading.Thread(target=publisher)
        thread.start()
        asyncio.run(hammer())
        thread.join()
        assert not publish_errors, publish_errors

        assert len(expected) == self.VERSIONS + 1
        versions_seen = set()
        for status, payload in responses:
            assert status == 200, payload
            version = payload["version"]
            # exactly one version per response: the claimed version's rows
            assert payload == expected[version], f"torn read at version {version}"
            versions_seen.add(version)
        assert versions_seen <= set(expected)

        # old versions retire: every segment but the current one unlinks
        assert wait_until(lambda: len(pool.segment_names()) == 1, timeout_s=10.0)
        for name in initial_segments:
            assert name not in pool.segment_names()
            assert not os.path.exists(f"/dev/shm/{name}")
        # all workers on the final version
        assert set(healthz_by_worker(pool.port).values()) == {pool.version}


class TestSupervision:
    def test_crashed_worker_restarts_on_current_version(self, pool):
        victim = pool.live_workers()[0]
        pid = pool._procs[victim].pid
        restarts_before = pool.restarts
        os.kill(pid, signal.SIGKILL)
        assert wait_until(lambda: pool.restarts == restarts_before + 1)
        assert wait_until(
            lambda: pool.worker_versions.get(victim) == pool.version
        ), pool.worker_versions
        seen = healthz_by_worker(pool.port)
        assert set(seen.values()) == {pool.version}

    def test_stop_drains_and_unlinks_everything(self, graph):
        pool = ServicePool(
            graph,
            workers=2,
            config=ServiceConfig(port=0),
            pool_config=PoolConfig(sweep_interval_s=0.05),
        )
        pool.start()
        names = pool.segment_names()
        assert names
        status, _ = request(pool.port, "GET", "/healthz")
        assert status == 200
        pool.stop(drain=True)
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")
        assert pool.live_workers() == []


class TestMultiTenantPool:
    """One SO_REUSEPORT fleet, many tenants, per-tenant atomic swaps."""

    @pytest.fixture()
    def mt_pool(self, graph):
        pool = ServicePool(
            graph,
            workers=2,
            config=ServiceConfig(port=0),
            pool_config=PoolConfig(sweep_interval_s=0.05),
        )
        pool.start()
        yield pool
        pool.stop(drain=False)

    def test_tenant_lifecycle_across_the_fleet(self, mt_pool):
        pool = mt_pool
        base_version = pool.version

        status, payload = request(pool.port, "PUT", "/t/acme")
        assert status == 201
        assert payload["status"] == "created"
        assert payload["version"] == 1
        assert "acme" in pool.tenants()
        # segment names carry the tenant
        assert any("acme" in name for name in pool.segment_names())

        # both workers serve the new tenant
        seen = set()
        for _ in range(40):
            st, stats = request(pool.port, "GET", "/t/acme/stats")
            assert st == 200
            assert stats["tenant"] == "acme"
            assert stats["snapshot_version"] == 1
            seen.add(stats["worker_id"])
            if len(seen) >= 2:
                break
        assert len(seen) == 2

        # idempotent create
        status, payload = request(pool.port, "PUT", "/t/acme")
        assert status == 200
        assert payload["status"] == "exists"

        # mutating acme publishes acme v2 and leaves the primary alone
        status, payload = request(
            pool.port,
            "POST",
            "/t/acme/mutations?wait=1",
            body={"deltas": [{"op": "add_company", "id": "MCO"}]},
        )
        assert status == 200, payload
        assert payload["tenant"] == "acme"
        assert payload["version"] == 2
        assert pool.version_for("acme") == 2
        assert pool.version == base_version
        st, stats = request(pool.port, "GET", "/stats")
        assert stats["snapshot_version"] == base_version

        # delete propagates: 404s fleet-wide, segments unlinked
        status, payload = request(pool.port, "DELETE", "/t/acme")
        assert status == 200
        assert payload == {"status": "deleted", "tenant": "acme", "version": 2}
        assert wait_until(
            lambda: request(pool.port, "GET", "/t/acme/stats")[0] == 404
        )
        assert wait_until(
            lambda: not any("acme" in n for n in os.listdir("/dev/shm"))
        ), [n for n in os.listdir("/dev/shm") if "acme" in n]
        assert not any("acme" in n for n in pool.segment_names())

    def test_primary_tenant_is_protected_and_unknown_404s(self, mt_pool):
        pool = mt_pool
        status, payload = request(pool.port, "DELETE", f"/t/{pool.primary}")
        assert status == 400
        assert "alias" in payload["error"]
        for path in ("/t/ghost/control", "/t/ghost/stats", "/t/ghost/family"):
            status, payload = request(pool.port, "GET", path)
            assert status == 404
            assert payload == {"error": "unknown tenant: ghost"}
