"""Tests for the Algorithm 1 augmentation loop."""

import pytest

from repro.bench import naive_comparison_count
from repro.core import (
    BlockingScheme,
    ControlCandidate,
    FamilyLinkCandidate,
    VadaLink,
    VadaLinkConfig,
    default_family_candidates,
    household_blocker,
)
from repro.datagen import CompanySpec, generate_company_graph
from repro.graph import figure1_graph
from repro.linkage import persons_of, train_classifiers


@pytest.fixture(scope="module")
def world():
    return generate_company_graph(
        CompanySpec(persons=120, companies=60, seed=21, feature_noise=0.0)
    )


@pytest.fixture(scope="module")
def trained_rules(world):
    graph, truth = world
    classifiers = train_classifiers(persons_of(graph), truth.links, seed=1)
    return [FamilyLinkCandidate(c) for c in classifiers]


def light_config(**overrides):
    defaults = dict(first_level_clusters=1, use_embeddings=False, max_rounds=2)
    defaults.update(overrides)
    return VadaLinkConfig(**defaults)


class TestLoop:
    def test_requires_rules(self):
        with pytest.raises(ValueError):
            VadaLink([])

    def test_augment_does_not_mutate_input(self, world, trained_rules):
        graph, _ = world
        before = graph.edge_count
        VadaLink(trained_rules, light_config()).augment(graph)
        assert graph.edge_count == before

    def test_new_edges_typed_and_counted(self, world, trained_rules):
        graph, _ = world
        result = VadaLink(trained_rules, light_config()).augment(graph)
        assert result.total_new_edges == len(result.new_edges)
        assert sum(result.edges_by_class.values()) == result.total_new_edges
        for edge in result.new_edges:
            assert edge.label in {"partner_of", "sibling_of", "parent_of"}

    def test_finds_planted_links(self, world, trained_rules):
        graph, truth = world
        result = VadaLink(trained_rules, light_config()).augment(graph)
        predicted = {(e.source, e.target, e.label) for e in result.new_edges}
        recall = len(predicted & truth.links) / len(truth.links)
        assert recall > 0.5

    def test_idempotent_on_augmented_graph(self, world, trained_rules):
        graph, _ = world
        first = VadaLink(trained_rules, light_config()).augment(graph)
        second = VadaLink(trained_rules, light_config()).augment(first.graph)
        assert second.total_new_edges == 0

    def test_comparisons_below_naive(self, world, trained_rules):
        graph, _ = world
        blocked = VadaLink(trained_rules, light_config()).augment(graph)
        persons = sum(1 for _ in graph.persons())
        assert blocked.comparisons < naive_comparison_count(persons)

    def test_exhaustive_blocking_is_quadratic(self, world, trained_rules):
        graph, _ = world
        config = light_config(blocking=BlockingScheme.exhaustive(), max_rounds=1)
        result = VadaLink(trained_rules, config).augment(graph)
        persons = sum(1 for _ in graph.persons())
        # every ordered person pair once per class (some cut by accepts())
        assert result.comparisons + result.total_new_edges >= persons * (persons - 1)

    def test_per_rule_blocking_scheme(self, world, trained_rules):
        graph, _ = world
        household = BlockingScheme({"P": household_blocker()})
        rules = [
            FamilyLinkCandidate(r.classifier, blocking=household)
            for r in trained_rules
        ]
        result = VadaLink(rules, light_config(max_rounds=1)).augment(graph)
        assert result.total_new_edges > 0

    def test_rounds_bounded(self, world, trained_rules):
        graph, _ = world
        result = VadaLink(trained_rules, light_config(max_rounds=1)).augment(graph)
        assert result.rounds == 1

    def test_non_recursive_single_round(self, world, trained_rules):
        graph, _ = world
        config = light_config(max_rounds=5, recursive=False)
        result = VadaLink(trained_rules, config).augment(graph)
        assert result.rounds == 1


class TestWithControlRule:
    def test_control_edges_added(self):
        graph = figure1_graph()
        config = VadaLinkConfig(
            first_level_clusters=1,
            use_embeddings=False,
            blocking=BlockingScheme.exhaustive(),
            max_rounds=1,
        )
        result = VadaLink([ControlCandidate()], config).augment(graph)
        control_pairs = {
            (e.source, e.target) for e in result.new_edges if e.label == "control"
        }
        assert ("P1", "F") in control_pairs
        assert ("P2", "I") in control_pairs
        assert not any(target == "L" for _, target in control_pairs)
