"""Tests for the topological link-prediction baselines."""

import pytest

from repro.graph import PropertyGraph
from repro.linkage.topological import (
    SCORERS,
    adamic_adar,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
    recall_against,
    score_pairs,
    top_predictions,
)


@pytest.fixture
def wedge():
    """a and b share two neighbours (c, d); e is isolated."""
    graph = PropertyGraph()
    for node in "abcde":
        graph.add_node(node)
    graph.add_edge("a", "c")
    graph.add_edge("a", "d")
    graph.add_edge("b", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    return graph


class TestScores:
    def test_common_neighbors(self, wedge):
        assert common_neighbors(wedge, "a", "b") == 2
        assert common_neighbors(wedge, "a", "e") == 0

    def test_jaccard(self, wedge):
        assert jaccard_coefficient(wedge, "a", "b") == pytest.approx(1.0)
        assert jaccard_coefficient(wedge, "e", "e") == 0.0

    def test_adamic_adar_weights_rare_neighbors(self, wedge):
        # c and d both have degree 3: score = 2 / log(3)
        import math

        assert adamic_adar(wedge, "a", "b") == pytest.approx(2 / math.log(3))

    def test_adamic_adar_skips_degree_one(self):
        graph = PropertyGraph()
        for node in "abc":
            graph.add_node(node)
        graph.add_edge("a", "c")
        graph.add_edge("b", "c")
        # c has degree 2 -> contributes; make its degree 1 impossible here,
        # but a degree-1 common neighbour must contribute nothing:
        graph2 = PropertyGraph()
        for node in "ab":
            graph2.add_node(node)
        assert adamic_adar(graph2, "a", "b") == 0.0

    def test_preferential_attachment(self, wedge):
        assert preferential_attachment(wedge, "c", "d") == 9
        assert preferential_attachment(wedge, "e", "c") == 0


class TestRanking:
    def test_score_pairs_sorted_descending(self, wedge):
        pairs = [("a", "b"), ("a", "e"), ("c", "d")]
        ranked = score_pairs(wedge, pairs, "common_neighbors")
        scores = [score for _, _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_predictions_exclude_zero_scores(self, wedge):
        pairs = [("a", "b"), ("a", "e")]
        top = top_predictions(wedge, pairs, k=5, method="common_neighbors")
        assert top == {("a", "b")}

    def test_recall_against(self, wedge):
        pairs = [("a", "b"), ("a", "e")]
        assert recall_against(wedge, {("a", "b")}, pairs, "jaccard") == 1.0
        assert recall_against(wedge, {("a", "e")}, pairs, "jaccard") == 0.0
        assert recall_against(wedge, set(), pairs) == 1.0

    def test_all_scorers_registered(self):
        assert set(SCORERS) == {
            "common_neighbors", "jaccard", "adamic_adar", "preferential_attachment",
        }


class TestDisconnectedFamilies:
    def test_no_signal_across_components(self):
        """The paper's point: structurally disconnected relatives score 0."""
        graph = PropertyGraph()
        for node in ("wife", "husband", "firm_a", "firm_b"):
            graph.add_node(node)
        graph.add_edge("wife", "firm_a")
        graph.add_edge("husband", "firm_b")
        for method in ("common_neighbors", "jaccard", "adamic_adar"):
            assert SCORERS[method](graph, "wife", "husband") == 0, method
        # preferential attachment scores ANY pair of non-isolated nodes —
        # positive but uninformative (1*1), which is exactly its failure mode
        assert preferential_attachment(graph, "wife", "husband") == 1
