"""Cross-validation: the declarative Vadalog programs (Algorithms 2-9)
must agree with the procedural reference implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KnowledgeGraph,
    close_link_program,
    control_program,
    family_control_program,
    input_mapping,
    link_creation,
    output_mapping,
    paper_close_link_program,
)
from repro.datagen import barabasi_company_graph
from repro.graph import FAMILY, CompanyGraph, figure1_graph, figure2_graph
from repro.ownership import close_link_pairs, control_closure, family_controlled


def declarative_control(graph):
    kg = KnowledgeGraph(graph)
    kg.add_rules("m", input_mapping(False))
    kg.add_rules("c", control_program())
    kg.add_rules("l", link_creation(("control",)))
    kg.add_rules("o", output_mapping(("control",)))
    engine = kg.reason()
    return set(engine.query("control"))


def declarative_close_links(graph, threshold=0.2, paper_version=False):
    kg = KnowledgeGraph(graph)
    kg.add_rules("m", input_mapping(False))
    program = paper_close_link_program if paper_version else close_link_program
    kg.add_rules("c", program(threshold))
    kg.add_rules("l", link_creation(("close_link",)))
    kg.add_rules("o", output_mapping(("close_link",)))
    engine = kg.reason()
    return set(engine.query("close_link"))


class TestControlProgram:
    def test_figure1(self):
        graph = figure1_graph()
        assert declarative_control(graph) == control_closure(graph)

    def test_figure2(self):
        graph = figure2_graph()
        assert declarative_control(graph) == control_closure(graph)

    def test_cyclic_ownership(self):
        graph = CompanyGraph()
        for company in ("a", "b"):
            graph.add_company(company)
        graph.add_shareholding("a", "b", 0.6)
        graph.add_shareholding("b", "a", 0.6)
        assert declarative_control(graph) == control_closure(graph)

    def test_parallel_edges_sum(self):
        graph = CompanyGraph()
        graph.add_person("p")
        graph.add_company("c")
        graph.add_shareholding("p", "c", 0.3)
        graph.add_shareholding("p", "c", 0.3)
        assert declarative_control(graph) == {("p", "c")}

    def test_scale_free_graph(self):
        graph = barabasi_company_graph(60, 2, seed=1)
        assert declarative_control(graph) == control_closure(graph)


class TestCloseLinkProgram:
    def test_figure1(self):
        graph = figure1_graph()
        assert declarative_close_links(graph) == close_link_pairs(graph)

    def test_figure2(self):
        graph = figure2_graph()
        assert declarative_close_links(graph) == close_link_pairs(graph)

    def test_scale_free_graph(self):
        graph = barabasi_company_graph(40, 2, seed=2)
        assert declarative_close_links(graph) == close_link_pairs(graph)

    def test_paper_verbatim_misses_split_threshold(self):
        """Algorithm 6 verbatim keeps the direct edge and the recursive sums
        in separate acc_own facts; a pair crossing the threshold only when
        both are added is missed — our corrected program finds it."""
        graph = CompanyGraph()
        for company in ("x", "m", "y"):
            graph.add_company(company)
        graph.add_shareholding("x", "y", 0.15)        # direct: below 0.2
        graph.add_shareholding("x", "m", 0.5)
        graph.add_shareholding("m", "y", 0.2)         # via m: 0.1, below 0.2
        # total Phi(x, y) = 0.25 >= 0.2
        assert ("x", "y") in declarative_close_links(graph)
        assert ("x", "y") not in declarative_close_links(graph, paper_version=True)
        assert ("x", "y") in close_link_pairs(graph)


@st.composite
def random_dag_graph(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    graph = CompanyGraph()
    for i in range(n):
        graph.add_company(f"c{i}")
    for target in range(1, n):
        sources = draw(
            st.lists(st.integers(min_value=0, max_value=target - 1), unique=True, max_size=2)
        )
        budget = 1.0
        for source in sources:
            share = draw(st.floats(min_value=0.1, max_value=0.6))
            share = min(share, budget)
            if share >= 0.05:
                graph.add_shareholding(f"c{source}", f"c{target}", share)
                budget -= share
    return graph


class TestPropertyCrossValidation:
    @given(random_dag_graph())
    @settings(max_examples=25, deadline=None)
    def test_control_matches_reference(self, graph):
        assert declarative_control(graph) == control_closure(graph)

    @given(random_dag_graph())
    @settings(max_examples=15, deadline=None)
    def test_close_links_match_reference(self, graph):
        assert declarative_close_links(graph) == close_link_pairs(graph)


class TestFamilyControlProgram:
    def test_family_pooling(self):
        graph = CompanyGraph()
        graph.add_person("mom")
        graph.add_person("dad")
        graph.add_company("firm")
        graph.add_company("sub")
        graph.add_shareholding("mom", "firm", 0.3)
        graph.add_shareholding("dad", "firm", 0.3)
        graph.add_shareholding("firm", "sub", 0.6)

        kg = KnowledgeGraph(graph)
        kg.add_fact("family_member", ("mom", "fam1"))
        kg.add_fact("family_member", ("dad", "fam1"))
        kg.add_rules("m", input_mapping(True))
        kg.add_rules("c", control_program())
        kg.add_rules("f", family_control_program())
        kg.add_rules("l", link_creation(("control",)))
        kg.add_rules("o", output_mapping(("control",)))
        engine = kg.reason()
        controls = set(engine.query("control"))
        assert ("fam1", "firm") in controls
        assert ("fam1", "sub") in controls
        # reference agrees
        assert family_controlled(graph, ["mom", "dad"]) == {"firm", "sub"}

    def test_member_control_counts_for_family(self):
        graph = CompanyGraph()
        graph.add_person("solo")
        graph.add_company("firm")
        graph.add_shareholding("solo", "firm", 0.8)
        kg = KnowledgeGraph(graph)
        kg.add_fact("family_member", ("solo", "fam1"))
        kg.add_rules("m", input_mapping(True))
        kg.add_rules("c", control_program())
        kg.add_rules("f", family_control_program())
        kg.add_rules("l", link_creation(("control",)))
        kg.add_rules("o", output_mapping(("control",)))
        engine = kg.reason()
        assert ("fam1", "firm") in set(engine.query("control"))


class TestFamilyCloseLinkProgram:
    def test_distinct_members_induce_close_link(self):
        """Algorithm 9: members i != j with Phi >= 0.2 over x and y."""
        graph = CompanyGraph()
        graph.add_person("i")
        graph.add_person("j")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("i", "x", 0.3)
        graph.add_shareholding("j", "y", 0.3)

        from repro.core import family_close_link_program

        kg = KnowledgeGraph(graph)
        kg.add_fact("family_member", ("i", "fam"))
        kg.add_fact("family_member", ("j", "fam"))
        kg.add_rules("m", input_mapping(True))
        kg.add_rules("cl", close_link_program(0.2))
        kg.add_rules("fcl", family_close_link_program(0.2))
        kg.add_rules("l", link_creation(("close_link",)))
        kg.add_rules("o", output_mapping(("close_link",)))
        engine = kg.reason()
        links = set(engine.query("close_link"))
        assert ("x", "y") in links

        # cross-check the reference algorithm
        from repro.ownership import family_close_links

        assert ("x", "y") in family_close_links(graph, ["i", "j"])

    def test_single_member_does_not_trigger(self):
        graph = CompanyGraph()
        graph.add_person("i")
        graph.add_company("x")
        graph.add_company("y")
        graph.add_shareholding("i", "x", 0.3)
        graph.add_shareholding("i", "y", 0.3)

        from repro.core import family_close_link_program

        kg = KnowledgeGraph(graph)
        kg.add_fact("family_member", ("i", "fam"))
        kg.add_rules("m", input_mapping(True))
        # note: only the family rule, not the base close-link program —
        # i's common ownership alone must not produce a *family* link
        kg.add_rules("acc", close_link_program(0.99))  # acc relation only
        kg.add_rules("fcl", family_close_link_program(0.2))
        kg.add_rules("l", link_creation(("close_link",)))
        kg.add_rules("o", output_mapping(("close_link",)))
        engine = kg.reason()
        assert set(engine.query("close_link")) == set()
