"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def extract(tmp_path_factory):
    directory = tmp_path_factory.mktemp("extract")
    code = main([
        "generate", str(directory),
        "--persons", "60", "--companies", "40", "--seed", "5",
    ])
    assert code == 0
    return directory


class TestGenerate:
    def test_files_written(self, extract):
        for name in ("companies.csv", "persons.csv", "shareholdings.csv",
                     "ground_truth.json"):
            assert (extract / name).exists()

    def test_ground_truth_shape(self, extract):
        payload = json.loads((extract / "ground_truth.json").read_text())
        assert payload["links"]
        assert payload["families"]

    def test_bad_density_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", str(tmp_path), "--density", "bogus"])


class TestProfile:
    def test_prints_indicators(self, extract, capsys):
        assert main(["profile", str(extract)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "WCCs" in out


class TestControl:
    def test_all_pairs(self, extract, capsys):
        assert main(["control", str(extract)]) == 0
        captured = capsys.readouterr()
        assert "control pairs" in captured.err

    def test_single_source(self, extract, capsys):
        assert main(["control", str(extract), "--source", "P000000"]) == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            assert line.startswith("P000000,")


class TestCloseLinks:
    def test_runs(self, extract, capsys):
        assert main(["close-links", str(extract)]) == 0
        assert "close-link" in capsys.readouterr().err


class TestFamily:
    def test_with_training(self, extract, capsys):
        truth = extract / "ground_truth.json"
        assert main(["family", str(extract), "--truth", str(truth)]) == 0
        captured = capsys.readouterr()
        assert "personal links" in captured.err
        for line in captured.out.strip().splitlines():
            assert line.count(",") == 2


class TestUbo:
    def test_runs(self, extract, capsys):
        assert main(["ubo", str(extract)]) == 0
        captured = capsys.readouterr()
        assert "beneficial owners" in captured.err


class TestAugment:
    def test_writes_json(self, extract, tmp_path, capsys):
        output = tmp_path / "augmented.json"
        assert main(["augment", str(extract), str(output)]) == 0
        payload = json.loads(output.read_text())
        assert payload["nodes"] and payload["edges"]


class TestReason:
    def test_custom_program(self, extract, tmp_path, capsys):
        program = tmp_path / "big_owners.vada"
        program.write_text(
            'own(X, Y, W, R), W >= 0.5 -> big_owner(X, Y, W).\n'
        )
        assert main([
            "reason", str(extract), str(program), "--query", "big_owner",
        ]) == 0
        captured = capsys.readouterr()
        assert "facts of big_owner" in captured.err
        for line in captured.out.strip().splitlines():
            assert float(line.split(",")[2]) >= 0.5


class TestExportDot:
    def test_writes_dot_file(self, extract, tmp_path, capsys):
        output = tmp_path / "graph.dot"
        assert main(["export-dot", str(extract), str(output)]) == 0
        content = output.read_text()
        assert content.startswith("digraph")
        assert "shape=box" in content

    def test_augmented_export_has_derived_edges(self, extract, tmp_path, capsys):
        output = tmp_path / "augmented.dot"
        assert main(["export-dot", str(extract), str(output), "--augment"]) == 0
        content = output.read_text()
        assert "forestgreen" in content or "magenta" in content or "red" in content


class TestErrorExitPaths:
    """Bad input -> exit 2 with one ``error:`` line, never a traceback."""

    def assert_one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_extract_directory(self, tmp_path, capsys):
        missing = tmp_path / "nowhere"
        assert main(["control", str(missing)]) == 2
        self.assert_one_line_error(capsys)

    def test_profile_missing_directory(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "gone")]) == 2
        self.assert_one_line_error(capsys)

    def test_reason_missing_program(self, extract, tmp_path, capsys):
        assert main([
            "reason", str(extract), str(tmp_path / "no.vada"), "--query", "q",
        ]) == 2
        self.assert_one_line_error(capsys)

    def test_reason_malformed_program(self, extract, tmp_path, capsys):
        program = tmp_path / "broken.vada"
        program.write_text("this is not ( a rule\n")
        assert main([
            "reason", str(extract), str(program), "--query", "q",
        ]) == 2
        self.assert_one_line_error(capsys)

    def test_serve_rejects_out_of_range_port(self, extract, capsys):
        assert main(["serve", str(extract), "--port", "99999"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: port must be in 0..65535")
        assert "Traceback" not in err

    def test_serve_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "void"), "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: extract directory not found")
        assert "Traceback" not in err

    def test_serve_rejects_bad_worker_counts(self, extract, capsys):
        for workers in ("0", "-2", "65"):
            assert main(["serve", str(extract), "--workers", workers]) == 2
            err = capsys.readouterr().err
            assert err.startswith("error: --workers must be in 1..64")
            assert "Traceback" not in err

    def test_serve_rejects_bad_max_concurrency(self, extract, capsys):
        assert main(["serve", str(extract), "--max-concurrency", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: --max-concurrency must be >= 1")
        assert "Traceback" not in err

    def test_serve_rejects_negative_max_queue(self, extract, capsys):
        assert main(["serve", str(extract), "--max-queue", "-1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: --max-queue must be >= 0")
        assert "Traceback" not in err

    def test_serve_port_in_use(self, extract, capsys):
        import socket

        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            assert main([
                "serve", str(extract), "--port", str(port), "--no-augment",
            ]) == 2
        self.assert_one_line_error(capsys)


class TestProfileFlags:
    def test_profile_prints_span_tree(self, extract, capsys):
        assert main(["--profile", "control", str(extract)]) == 0
        err = capsys.readouterr().err
        assert "repro control" in err
        assert "control.procedural" in err
        assert "pairs=" in err

    def test_profile_json_emits_consumable_tree(self, extract, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        output = tmp_path / "augmented.json"
        assert main([
            "--profile-json", str(trace_path),
            "augment", str(extract), str(output),
        ]) == 0
        payload = json.loads(trace_path.read_text())
        assert payload["name"] == "repro augment"

        def walk(node):
            yield node
            for child in node.get("children", []):
                yield from walk(child)

        names = [node["name"] for node in walk(payload)]
        assert "pipeline.augment" in names
        assert "engine.run" in names
        assert any(name.startswith("stratum[") for name in names)
        assert any(name.startswith("rule:") for name in names)
        for node in walk(payload):
            assert node["duration_s"] >= 0.0
        run = next(n for n in walk(payload) if n["name"] == "engine.run")
        assert run["attributes"]["facts_derived"] >= 0

    def test_reason_profile_covers_engine(self, extract, tmp_path, capsys):
        program = tmp_path / "closure.vada"
        program.write_text(
            "own(X, Y, W, R) -> reach(X, Y).\n"
            "reach(X, Z), own(Z, Y, W, R) -> reach(X, Y).\n"
        )
        trace_path = tmp_path / "reason.json"
        assert main([
            "--profile", "--profile-json", str(trace_path),
            "reason", str(extract), str(program), "--query", "reach",
        ]) == 0
        err = capsys.readouterr().err
        assert "engine.run" in err
        payload = json.loads(trace_path.read_text())
        assert payload["children"][0]["name"] == "engine.run"

    def test_no_profile_flag_stays_silent(self, extract, capsys):
        assert main(["control", str(extract)]) == 0
        err = capsys.readouterr().err
        assert "control.procedural" not in err


class TestServeStoreValidation:
    """``serve --store`` misuse -> exit 2 with one ``error:`` line."""

    def assert_one_line_error(self, capsys, fragment):
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert fragment in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_version_without_store(self, capsys):
        assert main(["serve", "--version", "3"]) == 2
        self.assert_one_line_error(capsys, "--version requires --store")

    def test_version_with_extract_directory(self, extract, tmp_path, capsys):
        assert main([
            "serve", str(extract), "--store", str(tmp_path / "s"), "--version", "1",
        ]) == 2
        self.assert_one_line_error(capsys, "drop the extract directory")

    def test_neither_directory_nor_store(self, capsys):
        assert main(["serve"]) == 2
        self.assert_one_line_error(capsys, "extract directory or --store")

    def test_store_directory_missing(self, tmp_path, capsys):
        assert main(["serve", "--store", str(tmp_path / "nowhere")]) == 2
        self.assert_one_line_error(capsys, "store not found")

    def test_corrupt_catalog(self, tmp_path, capsys):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "catalog.db").write_text("definitely not a database")
        assert main(["serve", "--store", str(root)]) == 2
        self.assert_one_line_error(capsys, "corrupt store catalog")

    def test_version_not_found(self, extract, tmp_path, capsys):
        store_dir = tmp_path / "store"
        from repro.datagen.company_generator import CompanySpec, generate_company_graph
        from repro.service import SnapshotBuilder, SnapshotConfig
        from repro.storage import FrameStore

        graph, _ = generate_company_graph(CompanySpec(persons=20, companies=15, seed=1))
        snapshot = SnapshotBuilder(SnapshotConfig(augment=False)).build(graph)
        FrameStore.create(store_dir).persist(snapshot)
        assert main(["serve", "--store", str(store_dir), "--version", "42"]) == 2
        self.assert_one_line_error(capsys, "not found in store")

    def test_empty_store_has_nothing_to_attach(self, tmp_path, capsys):
        from repro.storage import FrameStore

        root = tmp_path / "empty"
        FrameStore.create(root)
        assert main(["serve", "--store", str(root)]) == 2
        self.assert_one_line_error(capsys, "no published snapshot versions")


class TestGenerateStore:
    def test_generate_streams_into_store(self, tmp_path, capsys):
        truth_dir = tmp_path / "truth"
        store_dir = tmp_path / "store"
        assert main([
            "generate", str(truth_dir),
            "--persons", "30", "--companies", "20", "--seed", "6",
            "--store", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "streamed" in out and "graph version 1" in out
        assert (truth_dir / "ground_truth.json").exists()
        assert not (truth_dir / "companies.csv").exists()  # no CSV in stream mode

        from repro.storage import FrameStore, OutOfCoreGraph

        store = FrameStore.open(store_dir)
        (info,) = store.versions(kind="graph")
        assert info["state"] == "published"
        ooc = OutOfCoreGraph(store, info["version"])
        try:
            assert ooc.node_count == info["nodes"] > 0
        finally:
            ooc.close()
