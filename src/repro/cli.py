"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction an operational surface over CSV extracts in the
Chambers-of-Commerce layout (companies.csv / persons.csv /
shareholdings.csv):

* ``generate``    — write a synthetic extract (+ planted ground truth);
* ``profile``     — the Section 2 statistical profile of an extract;
* ``control``     — company-control pairs (Definition 2.3);
* ``close-links`` — close-link pairs (Definition 2.6);
* ``family``      — detect personal links (Algorithm 7);
* ``ubo``         — ultimate beneficial owners per company;
* ``augment``     — run the whole pipeline, write the augmented KG JSON;
* ``reason``      — run a Vadalog program file against the extract;
* ``export-dot``  — render the (optionally augmented) graph as Graphviz DOT;
* ``serve``       — the asyncio HTTP reasoning API over versioned snapshots
  (``--tenant`` names the seeded tenant; ``--store`` restarts re-attach
  every tenant the store holds);
* ``store``       — inspect (``versions``) and maintain (``gc``) a
  durable frame store.

Every command exits nonzero with a one-line ``error: ...`` message (no
traceback) on bad input paths, unreadable extracts, malformed programs,
or unusable ports.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.pipeline import PipelineConfig, ReasoningPipeline
from .datagen.company_generator import CompanySpec, generate_company_graph
from .datalog.engine import Engine
from .datalog.errors import DatalogError
from .graph.property_graph import GraphError
from .datalog.parser import parse_program
from .graph.io import read_company_csv, save_json, write_company_csv
from .graph.metrics import profile
from .graph.relational import to_facts
from .linkage.training import persons_of, train_classifiers
from .ownership.close_links import close_link_pairs
from .ownership.control import control_closure, controlled_by
from .ownership.ubo import all_beneficial_owners


class CLIError(Exception):
    """A user-facing error: printed as one line, exit status 2."""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vada-Link reproduction: reasoning over company ownership graphs",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a telemetry span tree (per-stage / per-stratum / per-rule "
             "timings) to stderr after the command",
    )
    parser.add_argument(
        "--profile-json", type=Path, metavar="PATH",
        help="dump the telemetry span tree as JSON to PATH",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic CSV extract")
    generate.add_argument("directory", type=Path)
    generate.add_argument("--persons", type=int, default=500)
    generate.add_argument("--companies", type=int, default=400)
    generate.add_argument("--density", default="sparse",
                          choices=("sparse", "normal", "dense", "superdense"))
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--store", type=Path, metavar="DIR",
                          help="stream the graph into a durable frame store "
                               "(out-of-core: the graph never fully "
                               "materializes in RAM; no CSV is written)")

    profile_cmd = commands.add_parser("profile", help="Section 2 statistics of an extract")
    profile_cmd.add_argument("directory", type=Path)

    control = commands.add_parser("control", help="company control pairs")
    control.add_argument("directory", type=Path)
    control.add_argument("--source", help="only pairs controlled by this node id")
    control.add_argument("--threshold", type=float, default=0.5)

    close = commands.add_parser("close-links", help="close-link pairs")
    close.add_argument("directory", type=Path)
    close.add_argument("--threshold", type=float, default=0.2)

    family = commands.add_parser("family", help="detect personal links")
    family.add_argument("directory", type=Path)
    family.add_argument("--truth", type=Path,
                        help="ground-truth JSON to train the classifiers on")
    family.add_argument("--clusters", type=int, default=1,
                        help="first-level clusters (1 disables embeddings)")

    ubo = commands.add_parser("ubo", help="ultimate beneficial owners")
    ubo.add_argument("directory", type=Path)
    ubo.add_argument("--threshold", type=float, default=0.25)

    augment = commands.add_parser("augment", help="full pipeline -> augmented KG JSON")
    augment.add_argument("directory", type=Path)
    augment.add_argument("output", type=Path)
    augment.add_argument("--clusters", type=int, default=1)

    reason = commands.add_parser("reason", help="run a Vadalog program file")
    reason.add_argument("directory", type=Path)
    reason.add_argument("program", type=Path)
    reason.add_argument("--query", required=True,
                        help="predicate whose derived facts to print")
    reason.add_argument("--no-plan", action="store_true",
                        help="disable the join planner / compiled evaluators "
                             "(textual-order interpretation)")
    reason.add_argument("--no-vectorize", action="store_true",
                        help="disable the batch columnar backend (per-tuple "
                             "compiled evaluation; the bit-identity oracle)")

    export = commands.add_parser("export-dot",
                                 help="render the (optionally augmented) graph as Graphviz DOT")
    export.add_argument("directory", type=Path)
    export.add_argument("output", type=Path)
    export.add_argument("--augment", action="store_true",
                        help="run the pipeline first and include predicted edges")

    serve = commands.add_parser(
        "serve", help="asyncio HTTP reasoning API over versioned KG snapshots"
    )
    serve.add_argument("directory", type=Path, nargs="?",
                       help="CSV extract to build from (optional when "
                            "--store has a published snapshot to attach)")
    serve.add_argument("--store", type=Path, metavar="DIR",
                       help="durable frame store: with an extract, every "
                            "published version is also persisted here; "
                            "alone, boot by mmap-attaching the latest "
                            "stored version instead of rebuilding")
    serve.add_argument("--version", type=int, default=None,
                       help="attach this stored version of --tenant instead "
                            "of the latest (rollback; requires --store)")
    serve.add_argument("--tenant", default="default",
                       help="tenant the extract (or pinned --version) seeds; "
                            "un-prefixed routes alias to it "
                            "(default: %(default)s)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8707,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--clusters", type=int, default=1,
                       help="first-level clusters (>1 enables the warm "
                            "incremental embedder between snapshots)")
    serve.add_argument("--no-augment", action="store_true",
                       help="skip personal-link detection; serve ownership "
                            "analytics over the extensional graph only")
    serve.add_argument("--workers", type=int, default=1,
                       help="serving processes; >1 runs SO_REUSEPORT workers "
                            "over one shared-memory snapshot segment")
    serve.add_argument("--max-concurrency", type=int, default=32)
    serve.add_argument("--max-queue", type=int, default=128)
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request deadline in seconds (exceeded -> 504)")
    serve.add_argument("--cache-capacity", type=int, default=1024)

    store_cmd = commands.add_parser(
        "store", help="inspect and maintain a durable frame store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_versions = store_sub.add_parser(
        "versions", help="list every catalog version (tenant,version,state,...)"
    )
    store_versions.add_argument("directory", type=Path)
    store_versions.add_argument("--tenant", default=None,
                                help="restrict to one tenant's stream")
    store_versions.add_argument("--kind", default=None,
                                choices=("snapshot", "graph"))
    store_gc = store_sub.add_parser(
        "gc", help="prune old published versions (never the latest published "
                   "or staging)"
    )
    store_gc.add_argument("directory", type=Path)
    store_gc.add_argument("--keep", type=int, required=True,
                          help="published versions to keep per (tenant, kind) "
                               "stream (>= 1)")
    store_gc.add_argument("--tenant", default=None,
                          help="restrict pruning to one tenant")
    store_gc.add_argument("--kind", default=None, choices=("snapshot", "graph"))
    return parser


# ----------------------------------------------------------------------
# command implementations
# ----------------------------------------------------------------------

def _tracer_of(args: argparse.Namespace):
    """The live tracer installed by main(), or the no-op tracer."""
    tracer = getattr(args, "tracer", None)
    if tracer is None:
        from .telemetry import NULL_TRACER

        return NULL_TRACER
    return tracer

def _generate(args: argparse.Namespace) -> int:
    spec = CompanySpec(
        persons=args.persons, companies=args.companies,
        density=args.density, seed=args.seed,
    )
    if args.store is not None:
        return _generate_streamed(args, spec)
    graph, truth = generate_company_graph(spec)
    write_company_csv(graph, args.directory)
    truth_path = _write_truth(args.directory, truth)
    print(f"wrote {graph.node_count} nodes / {graph.edge_count} edges to {args.directory}")
    print(f"ground truth ({len(truth.links)} links) in {truth_path}")
    return 0


def _generate_streamed(args: argparse.Namespace, spec: CompanySpec) -> int:
    """``generate --store``: stream straight into the durable store."""
    from .storage import FrameStore, StoreError, generate_company_graph_stream

    try:
        store = FrameStore.open_or_create(args.store)
        version, truth = generate_company_graph_stream(spec, store)
    except StoreError as exc:
        raise CLIError(str(exc)) from exc
    args.directory.mkdir(parents=True, exist_ok=True)
    truth_path = _write_truth(args.directory, truth)
    (info,) = [v for v in store.versions(kind="graph") if v["version"] == version]
    print(f"streamed {info['nodes']} nodes / {info['edges']} edges "
          f"into {args.store} as graph version {version}")
    print(f"ground truth ({len(truth.links)} links) in {truth_path}")
    return 0


def _write_truth(directory: Path, truth) -> Path:
    truth_path = directory / "ground_truth.json"
    with open(truth_path, "w") as handle:
        json.dump(
            {
                "families": {k: sorted(v) for k, v in truth.families.items()},
                "links": sorted(list(link) for link in truth.links),
            },
            handle,
        )
    return truth_path


def _profile(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    for name, value in profile(graph).as_rows():
        print(f"{name:<30}{value:>18}")
    return 0


def _control(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    with _tracer_of(args).span("control.procedural") as span:
        if args.source:
            pairs = sorted(
                (args.source, target)
                for target in controlled_by(graph, args.source, args.threshold)
            )
        else:
            pairs = sorted(control_closure(graph, threshold=args.threshold))
        span.set("pairs", len(pairs))
    for controller, controlled in pairs:
        print(f"{controller},{controlled}")
    print(f"# {len(pairs)} control pairs", file=sys.stderr)
    return 0


def _close_links(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    with _tracer_of(args).span("close_links.procedural") as span:
        pairs = sorted(close_link_pairs(graph, args.threshold))
        span.set("pairs", len(pairs))
    for x, y in pairs:
        if x <= y:  # print the symmetric relation once
            print(f"{x},{y}")
    print(f"# {len(pairs)} ordered close-link pairs", file=sys.stderr)
    return 0


def _load_truth_links(path: Path) -> set[tuple[str, str, str]]:
    with open(path) as handle:
        payload = json.load(handle)
    return {tuple(link) for link in payload.get("links", [])}


def _family(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    classifiers = None
    if args.truth:
        links = _load_truth_links(args.truth)
        classifiers = train_classifiers(persons_of(graph), links)
    config = PipelineConfig(
        first_level_clusters=args.clusters,
        use_embeddings=args.clusters > 1,
    )
    pipeline = ReasoningPipeline(
        graph, config, classifiers=classifiers, tracer=_tracer_of(args)
    )
    links = sorted(pipeline.family_links())
    for x, y, link_class in links:
        print(f"{x},{y},{link_class}")
    print(f"# {len(links)} personal links", file=sys.stderr)
    return 0


def _ubo(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    with _tracer_of(args).span("ubo") as span:
        owners_by_company = all_beneficial_owners(graph, args.threshold)
        span.set("companies", len(owners_by_company))
    for company in sorted(owners_by_company, key=str):
        for owner in owners_by_company[company]:
            print(f"{company},{owner.person},{owner.integrated_share:.4f},{owner.basis}")
    print(f"# {sum(len(v) for v in owners_by_company.values())} beneficial owners "
          f"across {len(owners_by_company)} companies", file=sys.stderr)
    return 0


def _augment(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    truth_path = args.directory / "ground_truth.json"
    classifiers = None
    if truth_path.exists():
        classifiers = train_classifiers(persons_of(graph), _load_truth_links(truth_path))
    config = PipelineConfig(
        first_level_clusters=args.clusters,
        use_embeddings=args.clusters > 1,
    )
    pipeline = ReasoningPipeline(
        graph, config, classifiers=classifiers, tracer=_tracer_of(args)
    )
    augmented = pipeline.augment()
    save_json(augmented, args.output)
    print(f"augmented graph: {augmented.edge_count - graph.edge_count} new edges "
          f"-> {args.output}")
    return 0


def _export_dot(args: argparse.Namespace) -> int:
    from .graph.dot import save_dot

    graph = read_company_csv(args.directory)
    if args.augment:
        config = PipelineConfig(first_level_clusters=1, use_embeddings=False)
        graph = ReasoningPipeline(graph, config, tracer=_tracer_of(args)).augment()
    save_dot(graph, args.output)
    print(f"wrote DOT ({graph.node_count} nodes, {graph.edge_count} edges) "
          f"to {args.output}")
    return 0


def _reason(args: argparse.Namespace) -> int:
    graph = read_company_csv(args.directory)
    program = parse_program(args.program.read_text())
    engine = Engine(
        program,
        to_facts(graph),
        tracer=_tracer_of(args),
        plan=not args.no_plan,
        vectorize=not args.no_vectorize,
    )
    engine.run()
    rows = engine.query(args.query)
    for values in rows:
        print(",".join(str(v) for v in values))
    print(f"# {len(rows)} facts of {args.query}", file=sys.stderr)
    return 0


#: sanity ceiling for --workers; far above any core count this serves on
MAX_WORKERS = 64


def _tenant_persist_hook(store, tenant: str):
    """A 1-arg updater persist hook bound to one tenant's stream."""
    return lambda snapshot: store.persist(snapshot, tenant=tenant)


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceConfig, SnapshotConfig, TenantError, build_service
    from .service import validate_tenant

    try:
        validate_tenant(args.tenant)
    except TenantError as exc:
        raise CLIError(str(exc)) from exc
    if not 0 <= args.port <= 65535:
        raise CLIError(f"port must be in 0..65535, got {args.port}")
    if not 1 <= args.workers <= MAX_WORKERS:
        raise CLIError(f"--workers must be in 1..{MAX_WORKERS}, got {args.workers}")
    if args.max_concurrency < 1:
        raise CLIError(f"--max-concurrency must be >= 1, got {args.max_concurrency}")
    if args.max_queue < 0:
        raise CLIError(f"--max-queue must be >= 0, got {args.max_queue}")
    if args.version is not None and args.store is None:
        raise CLIError("--version requires --store")
    if args.version is not None and args.directory is not None:
        raise CLIError("--version attaches a stored snapshot; "
                       "drop the extract directory argument")
    if args.directory is None and args.store is None:
        raise CLIError("serve needs an extract directory or --store")
    if args.directory is None:
        return _serve_attached(args)
    if not args.directory.is_dir():
        raise CLIError(f"extract directory not found: {args.directory}")
    store = None
    if args.store is not None:
        from .storage import FrameStore, StoreError

        try:
            store = FrameStore.open_or_create(args.store)
        except StoreError as exc:
            raise CLIError(str(exc)) from exc
    graph = read_company_csv(args.directory)
    classifiers = None
    truth_path = args.directory / "ground_truth.json"
    if truth_path.exists():
        classifiers = train_classifiers(persons_of(graph), _load_truth_links(truth_path))
    snapshot_config = SnapshotConfig(
        augment=not args.no_augment,
        first_level_clusters=args.clusters,
        use_embeddings=args.clusters > 1,
    )
    service_config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        request_timeout_s=args.request_timeout,
        cache_capacity=args.cache_capacity,
    )
    start_version = (
        store.latest_version(tenant=args.tenant) or 0 if store is not None else 0
    )
    if args.workers > 1:
        return _serve_pool(
            args, graph, service_config, snapshot_config, classifiers,
            store=store, start_version=start_version,
        )
    service = build_service(
        graph,
        config=service_config,
        snapshot_config=snapshot_config,
        classifiers=classifiers,
        tracer=_tracer_of(args),
        start_version=start_version,
        tenant=args.tenant,
    )
    if store is not None:
        _persist_initial(store, service.manager.current, args.tenant)
        service.updater.persist_hook = _tenant_persist_hook(store, args.tenant)
        # tenants created later over PUT /t/{tenant} persist too
        service.registry.persist_hook_factory = (
            lambda name: _tenant_persist_hook(store, name)
        )

    def ready(svc) -> None:
        snapshot = svc.manager.current
        print(
            f"serving snapshot v{snapshot.version} "
            f"({graph.node_count} nodes, {graph.edge_count} edges, "
            f"built in {snapshot.built_s:.2f}s) "
            f"on http://{args.host}:{svc.port}",
            flush=True,
        )

    try:
        asyncio.run(service.run(ready=ready))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _persist_initial(store, snapshot, tenant: str) -> None:
    """Persist the boot snapshot; a version collision just means a
    snapshot with this number is already durable — not fatal."""
    from .storage import StoreError

    try:
        store.persist(snapshot, tenant=tenant)
    except StoreError as exc:
        print(f"# store: initial persist skipped ({exc})", file=sys.stderr)


def _serve_attached(args: argparse.Namespace) -> int:
    """``serve --store DIR`` with no extract: mmap-attach every tenant's
    durable version and serve them without running the build pipeline."""
    import asyncio

    from .service import (
        GraphRegistry,
        ReasoningService,
        ServiceConfig,
        SnapshotBuilder,
        SnapshotManager,
    )
    from .storage import FrameStore, StoreError

    try:
        store = FrameStore.open(args.store)
        if args.version is not None:
            attached = store.attach(args.version, tenant=args.tenant)
        else:
            attached = store.attach_latest(tenant=args.tenant)
    except StoreError as exc:
        raise CLIError(str(exc)) from exc
    # every other tenant with a published snapshot comes back too; a
    # tenant whose stream holds only bare graphs (or is corrupt) is
    # reported and skipped rather than failing the boot
    extras = {}
    for name in store.tenants():
        if name == args.tenant:
            continue
        try:
            extras[name] = store.attach_latest(tenant=name)
        except StoreError as exc:
            print(f"# store: tenant {name} not attached ({exc})", file=sys.stderr)
    service_config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        request_timeout_s=args.request_timeout,
        cache_capacity=args.cache_capacity,
    )
    if args.workers > 1:
        return _serve_pool(
            args, attached.graph, service_config, attached.config, None,
            store=store, start_version=attached.version,
            initial_snapshot=attached, initial_snapshots=extras,
        )
    manager = SnapshotManager()
    manager.publish(attached)
    # mutations keep working: the builder resumes the version sequence
    # from the attached snapshot, and every rebuild is persisted back.
    # (link classifiers are not stored, so re-augmentation after a
    # mutation detects family links without them — see docs/STORAGE.md)
    registry = GraphRegistry(
        snapshot_config=attached.config, tracer=_tracer_of(args)
    )
    registry.persist_hook_factory = lambda name: _tenant_persist_hook(store, name)
    builder = SnapshotBuilder(
        attached.config, tracer=_tracer_of(args), start_version=attached.version
    )
    service = ReasoningService(
        manager,
        builder=builder,
        base_graph=attached.graph,
        config=service_config,
        tracer=_tracer_of(args),
        registry=registry,
        tenant=args.tenant,
    )
    for name, snapshot in extras.items():
        extra_manager = SnapshotManager()
        extra_manager.publish(snapshot)
        registry.adopt(
            name,
            extra_manager,
            builder=SnapshotBuilder(
                snapshot.config,
                tracer=_tracer_of(args),
                start_version=snapshot.version,
            ),
            base_graph=snapshot.graph,
        )

    def ready(svc) -> None:
        snapshot = svc.manager.current
        print(
            f"serving snapshot v{snapshot.version} "
            f"({snapshot.graph.node_count} nodes, {snapshot.graph.edge_count} edges, "
            f"attached from {args.store}, "
            f"{len(svc.registry)} tenant(s)) "
            f"on http://{args.host}:{svc.port}",
            flush=True,
        )

    try:
        asyncio.run(service.run(ready=ready))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _serve_pool(args, graph, service_config, snapshot_config, classifiers,
                store=None, start_version=0, initial_snapshot=None,
                initial_snapshots=None) -> int:
    """``serve --workers N``: the SO_REUSEPORT pool, SIGTERM drains."""
    import signal
    import threading

    from .service.workers import PoolError, ServicePool

    persist_hook = None
    if store is not None:
        persist_hook = lambda snapshot, tenant: store.persist(
            snapshot, tenant=tenant
        )
    pool = ServicePool(
        graph,
        workers=args.workers,
        config=service_config,
        snapshot_config=snapshot_config,
        classifiers=classifiers,
        tracer=_tracer_of(args),
        start_version=start_version,
        initial_snapshot=initial_snapshot,
        initial_snapshots=initial_snapshots,
        persist_hook=persist_hook,
        tenant=args.tenant,
    )
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        pool.start()
    except (PoolError, OSError) as exc:
        raise CLIError(f"worker pool failed to start: {exc}") from exc
    snapshot = pool.oracle
    print(
        f"serving snapshot v{snapshot.version} "
        f"({graph.node_count} nodes, {graph.edge_count} edges, "
        f"built in {snapshot.built_s:.2f}s) "
        f"on http://{args.host}:{pool.port} "
        f"across {args.workers} workers",
        flush=True,
    )
    try:
        stop.wait()
    finally:
        print("draining workers", file=sys.stderr)
        pool.stop(drain=True)
    return 0


def _store_cmd(args: argparse.Namespace) -> int:
    from .storage import FrameStore, StoreError

    try:
        store = FrameStore.open(args.directory)
        if args.store_command == "versions":
            rows = store.versions(kind=args.kind, tenant=args.tenant)
            print("tenant,version,state,kind,nodes,edges")
            for row in rows:
                print(
                    f"{row['tenant']},{row['version']},{row['state']},"
                    f"{row['kind']},{row['nodes'] if row['nodes'] is not None else ''},"
                    f"{row['edges'] if row['edges'] is not None else ''}"
                )
            print(f"# {len(rows)} versions", file=sys.stderr)
            return 0
        # gc — the store refuses keep < 1, so the latest published
        # version of every stream (and all staging rows) always survive
        pruned = store.gc(args.keep, tenant=args.tenant, kind=args.kind)
        for row in pruned:
            print(f"{row['tenant']},{row['version']},{row['kind']}")
        print(f"# pruned {len(pruned)} version(s)", file=sys.stderr)
        return 0
    except StoreError as exc:
        raise CLIError(str(exc)) from exc


_HANDLERS = {
    "generate": _generate,
    "profile": _profile,
    "control": _control,
    "close-links": _close_links,
    "family": _family,
    "ubo": _ubo,
    "augment": _augment,
    "reason": _reason,
    "export-dot": _export_dot,
    "serve": _serve,
    "store": _store_cmd,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = None
    if args.profile or args.profile_json:
        from .telemetry import Tracer

        tracer = Tracer(f"repro {args.command}")
    args.tracer = tracer
    try:
        status = _HANDLERS[args.command](args)
    except (CLIError, OSError, json.JSONDecodeError, DatalogError, GraphError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if tracer is not None:
        tracer.finish()
        if args.profile:
            print(tracer.render(), file=sys.stderr)
        if args.profile_json:
            args.profile_json.parent.mkdir(parents=True, exist_ok=True)
            args.profile_json.write_text(tracer.to_json())
            print(f"# telemetry JSON -> {args.profile_json}", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
