"""node2vec embeddings and clustering — the paper's first-level grouping."""

from .incremental import IncrementalEmbedder
from .kmeans import cluster_inertia, kmeans
from .node2vec import (Node2Vec, Node2VecConfig, embed_and_cluster,
                       feature_token_adjacency)
from .skipgram import SkipGramModel, train_skipgram, update_skipgram
from .walks import RandomWalker, build_adjacency, generate_walks

__all__ = [
    "IncrementalEmbedder",
    "Node2Vec",
    "Node2VecConfig",
    "RandomWalker",
    "SkipGramModel",
    "build_adjacency",
    "cluster_inertia",
    "embed_and_cluster",
    "feature_token_adjacency",
    "generate_walks",
    "kmeans",
    "train_skipgram",
    "update_skipgram",
]
