"""node2vec: neighbourhood-preserving node embeddings (Grover & Leskovec).

Pipeline: biased second-order random walks -> skip-gram with negative
sampling -> one dense vector per node.  :func:`embed_and_cluster` adds the
k-means step that turns vectors into the paper's first-level clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..graph.columnar import GraphFrame
from ..graph.property_graph import PropertyGraph
from ..telemetry import NULL_TRACER
from .kmeans import kmeans
from .skipgram import SkipGramModel, train_skipgram
from .walks import RandomWalker, build_adjacency

NodeId = Hashable


@dataclass
class Node2VecConfig:
    """Hyper-parameters of the node2vec pipeline (paper-typical defaults)."""

    dimensions: int = 32
    walk_length: int = 20
    num_walks: int = 10
    p: float = 1.0
    q: float = 1.0
    window: int = 5
    negative: int = 5
    epochs: int = 2
    learning_rate: float = 0.025
    seed: int = 0
    #: None keeps the historical sequential sampler; any integer switches
    #: to the deterministic per-(node, walk-index) kernel, sharding start
    #: nodes over that many processes (output is bit-identical for every
    #: worker count, so 1 is the no-pool oracle setting)
    workers: int | None = None


class Node2Vec:
    """Fit node embeddings on a property graph."""

    def __init__(self, config: Node2VecConfig | None = None):
        self.config = config if config is not None else Node2VecConfig()
        self.model: SkipGramModel | None = None

    def fit(self, graph: PropertyGraph, weight_property: str = "w") -> SkipGramModel:
        """Sample walks and train SGNS; returns (and retains) the model."""
        config = self.config
        frame = GraphFrame.of(graph, weight_property)
        walker = RandomWalker(frame, p=config.p, q=config.q, seed=config.seed)
        walks = walker.walks(
            list(walker.adjacency), config.num_walks, config.walk_length,
            workers=config.workers,
        )
        self.model = train_skipgram(
            walks,
            dimensions=config.dimensions,
            window=config.window,
            negative=config.negative,
            epochs=config.epochs,
            learning_rate=config.learning_rate,
            seed=config.seed,
        )
        return self.model

    def embedding_matrix(self, nodes: list[NodeId]) -> np.ndarray:
        """Stack the vectors of ``nodes``; isolated/unseen nodes get zeros."""
        if self.model is None:
            raise RuntimeError("call fit() before requesting embeddings")
        return _stack_vectors(self.model, nodes, self.config.dimensions)


def feature_token_adjacency(
    graph: PropertyGraph,
    feature_properties: "tuple[str, ...] | dict[str, float]",
    weight_property: str = "w",
    token_weight: float = 1.0,
) -> dict[NodeId, list[tuple[NodeId, float]]]:
    """Structural adjacency augmented with feature-token nodes.

    The paper's ``#GraphEmbedClust`` evaluates similarity "on the basis
    of both their features and role in the graph topology".  We realise
    the feature half with the standard bipartite trick: each distinct
    (property, value) becomes a token node linked to every node carrying
    it, so random walks hop between nodes sharing a surname or an address
    even when they are structurally disconnected.
    """
    if isinstance(feature_properties, dict):
        weights = dict(feature_properties)
    else:
        weights = {prop: token_weight for prop in feature_properties}
    adjacency = {
        node: dict(neighbors)
        for node, neighbors in build_adjacency(graph, weight_property).items()
    }
    tokens: dict[NodeId, dict[NodeId, float]] = {}
    for node in graph.nodes():
        for prop, weight in weights.items():
            value = node.properties.get(prop)
            if value is None:
                continue
            token = ("__feature__", prop, value)
            adjacency[node.id][token] = adjacency[node.id].get(token, 0.0) + weight
            tokens.setdefault(token, {})[node.id] = weight
    merged: dict[NodeId, dict[NodeId, float]] = {**adjacency, **tokens}
    return {
        node: sorted(neighbors.items(), key=lambda kv: str(kv[0]))
        for node, neighbors in merged.items()
    }


def _stack_vectors(
    model: SkipGramModel, nodes: list[NodeId], dimensions: int
) -> np.ndarray:
    """Stack node vectors into one float32 matrix; unseen nodes get zero
    rows of the same dtype (a float64 zero row would upcast everything)."""
    if not nodes:
        return np.zeros((0, dimensions), dtype=np.float32)
    matrix = np.zeros((len(nodes), dimensions), dtype=np.float32)
    for row, node in enumerate(nodes):
        if node in model.index:
            matrix[row] = model.vector(node)
    return matrix


def embed_and_cluster(
    graph: PropertyGraph,
    clusters: int,
    config: Node2VecConfig | None = None,
    weight_property: str = "w",
    feature_properties: "tuple[str, ...] | dict[str, float]" = (),
    tracer=None,
) -> dict[NodeId, int]:
    """The ``#GraphEmbedClust`` primitive: node -> first-level cluster id.

    Embeds the graph with node2vec (over topology, plus feature tokens
    when ``feature_properties`` is given) and k-means-partitions the
    vectors into ``clusters`` groups.  With ``clusters <= 1`` every node
    maps to cluster 0 (the paper's "no cluster mode").
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    nodes = list(graph.node_ids())
    if clusters <= 1 or len(nodes) <= 1:
        return {node: 0 for node in nodes}
    config = config if config is not None else Node2VecConfig()
    with tracer.span("embed.adjacency"):
        if feature_properties:
            # the bipartite token structure is private to this embed, but
            # the structural half inside it still reads the frame's
            # cached merged-undirected view through build_adjacency
            adjacency = feature_token_adjacency(
                graph, feature_properties, weight_property
            )
            walker = RandomWalker(adjacency, p=config.p, q=config.q, seed=config.seed)
        else:
            frame = GraphFrame.of(graph, weight_property)
            walker = RandomWalker(frame, p=config.p, q=config.q, seed=config.seed)
            adjacency = walker.adjacency
    with tracer.span("embed.walks", workers=config.workers or "serial") as span:
        walks = walker.walks(
            list(adjacency), config.num_walks, config.walk_length,
            workers=config.workers,
        )
        span.set("walks", len(walks))
    model = train_skipgram(
        walks,
        dimensions=config.dimensions,
        window=config.window,
        negative=config.negative,
        epochs=config.epochs,
        learning_rate=config.learning_rate,
        seed=config.seed,
        tracer=tracer,
    )
    matrix = _stack_vectors(model, nodes, config.dimensions)
    with tracer.span("embed.kmeans", clusters=clusters):
        labels, _ = kmeans(matrix, clusters, seed=config.seed)
    return {node: int(label) for node, label in zip(nodes, labels)}
