"""Skip-gram with negative sampling (SGNS) in pure numpy.

This is the word2vec half of node2vec: random walks are the "sentences",
nodes the "words".  We train input and output embedding matrices with the
standard SGNS objective

    log sigmoid(u_o . v_c) + sum_neg log sigmoid(-u_n . v_c)

using per-pair SGD updates with vectorised negative batches.  gensim is
not available offline; at the graph sizes of the experiments this numpy
implementation is entirely adequate.

The (center, context) pair corpus is materialised with numpy offset
slices over one padded walk matrix — column ``t`` against column
``t + offset`` for every window offset — instead of a Python triple
loop, and each training epoch gathers its shuffled view of the corpus
once instead of fancy-indexing every batch.  :func:`update_skipgram`
continues training an existing model on a *partial* corpus (the dirty
walks of an incremental re-embedding round), warm-starting from the
vectors already learned.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from ..telemetry import NULL_TRACER

NodeId = Hashable


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramModel:
    """Trained SGNS model mapping nodes to dense vectors."""

    def __init__(self, vocabulary: list[NodeId], dimensions: int, seed: int = 0):
        self.vocabulary = list(vocabulary)
        self.index = {node: i for i, node in enumerate(self.vocabulary)}
        rng = np.random.default_rng(seed)
        scale = 0.5 / dimensions
        self.input_vectors = rng.uniform(
            -scale, scale, (len(vocabulary), dimensions)
        ).astype(np.float32)
        self.output_vectors = np.zeros((len(vocabulary), dimensions), dtype=np.float32)

    def vector(self, node: NodeId) -> np.ndarray:
        return self.input_vectors[self.index[node]]

    def vectors(self) -> dict[NodeId, np.ndarray]:
        return {node: self.input_vectors[i] for node, i in self.index.items()}

    def warm_start_from(self, other: "SkipGramModel") -> int:
        """Copy both vector rows of every shared node from ``other``.

        Returns the number of warm rows; nodes absent from ``other`` keep
        their fresh random initialisation.
        """
        warmed = 0
        for node, i in self.index.items():
            j = other.index.get(node)
            if j is not None:
                self.input_vectors[i] = other.input_vectors[j]
                self.output_vectors[i] = other.output_vectors[j]
                warmed += 1
        return warmed

    def extend_vocabulary(self, nodes: Sequence[NodeId], seed: int = 0) -> None:
        """Append fresh rows for ``nodes`` not yet in the vocabulary."""
        fresh = [node for node in nodes if node not in self.index]
        if not fresh:
            return
        dimensions = self.input_vectors.shape[1]
        rng = np.random.default_rng([seed, len(self.vocabulary)])
        scale = 0.5 / dimensions
        grown = rng.uniform(-scale, scale, (len(fresh), dimensions)).astype(np.float32)
        self.input_vectors = np.vstack([self.input_vectors, grown])
        self.output_vectors = np.vstack(
            [self.output_vectors, np.zeros((len(fresh), dimensions), dtype=np.float32)]
        )
        for node in fresh:
            self.index[node] = len(self.vocabulary)
            self.vocabulary.append(node)

    def similarity(self, a: NodeId, b: NodeId) -> float:
        """Cosine similarity between two node vectors."""
        va, vb = self.vector(a), self.vector(b)
        denominator = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denominator == 0.0:
            return 0.0
        return float(va @ vb) / denominator

    def most_similar(self, node: NodeId, top: int = 5) -> list[tuple[NodeId, float]]:
        """The ``top`` nearest nodes by cosine similarity (self excluded)."""
        target = self.vector(node)
        norms = np.linalg.norm(self.input_vectors, axis=1)
        target_norm = np.linalg.norm(target)
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = (self.input_vectors @ target) / (norms * target_norm)
        scores = np.nan_to_num(scores, nan=-1.0)
        scores[self.index[node]] = -np.inf
        best = np.argsort(scores)[::-1][:top]
        return [(self.vocabulary[i], float(scores[i])) for i in best]


def _walk_matrix(
    walks: Sequence[Sequence[NodeId]], index: Mapping[NodeId, int]
) -> np.ndarray:
    """Walks as one int matrix padded with -1 (padding is always a suffix)."""
    if not walks:
        return np.empty((0, 0), dtype=np.int64)
    longest = max(len(walk) for walk in walks)
    matrix = np.full((len(walks), longest), -1, dtype=np.int64)
    for row, walk in enumerate(walks):
        if walk:
            matrix[row, : len(walk)] = [index[node] for node in walk]
    return matrix


def _pair_corpus(matrix: np.ndarray, window: int) -> np.ndarray:
    """All (center, context) id pairs within ``window`` of each other.

    Column ``t`` of the padded walk matrix against column ``t + offset``
    yields every ordered pair at distance ``offset`` at once; both
    directions are emitted, matching the symmetric window of the
    historical per-position loop (same multiset of pairs).
    """
    if matrix.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    pieces: list[np.ndarray] = []
    for offset in range(1, window + 1):
        if offset >= matrix.shape[1]:
            break
        left = matrix[:, :-offset]
        right = matrix[:, offset:]
        valid = right >= 0  # -1 is a suffix, so the left element is valid too
        if not valid.any():
            continue
        forward = left[valid]
        backward = right[valid]
        pieces.append(np.stack([forward, backward], axis=1))
        pieces.append(np.stack([backward, forward], axis=1))
    if not pieces:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(pieces, axis=0)


def _noise_cdf(frequencies: np.ndarray) -> np.ndarray:
    """Unigram^(3/4) negative-sampling distribution as an inverse CDF."""
    noise = frequencies.astype(np.float64) ** 0.75
    noise /= noise.sum()
    cdf = np.cumsum(noise)
    cdf[-1] = 1.0
    return cdf


def _train_pairs(
    model: SkipGramModel,
    pair_array: np.ndarray,
    noise_cdf: np.ndarray,
    rng: np.random.Generator,
    negative: int,
    epochs: int,
    learning_rate: float,
    min_learning_rate: float,
) -> None:
    """The SGD loop shared by cold training and incremental updates."""
    n_pairs = len(pair_array)
    if n_pairs == 0:
        return
    # batch roughly one occurrence per vocabulary entry: bigger batches pile
    # duplicate stale-gradient updates on the same vector and diverge on
    # small graphs, smaller ones waste vectorisation on large graphs
    batch_size = int(min(4096, max(64, len(model.vocabulary))))
    dimensions = model.input_vectors.shape[1]
    total_batches = epochs * ((n_pairs + batch_size - 1) // batch_size)
    batch_index = 0
    input_vectors = model.input_vectors
    output_vectors = model.output_vectors
    for _ in range(epochs):
        # one gather per epoch: batches below are contiguous views of this
        shuffled = pair_array[rng.permutation(n_pairs)]
        for start in range(0, n_pairs, batch_size):
            alpha = max(
                min_learning_rate,
                learning_rate * (1.0 - batch_index / max(1, total_batches)),
            )
            batch_index += 1
            batch = shuffled[start:start + batch_size]
            centers = batch[:, 0]
            contexts = batch[:, 1]
            negatives_batch = np.searchsorted(
                noise_cdf, rng.random((len(batch), negative))
            )

            v = input_vectors[centers]                      # (B, d)
            u_pos = output_vectors[contexts]                # (B, d)
            pos_scores = _sigmoid(np.sum(u_pos * v, axis=1))  # (B,)
            pos_coeff = (pos_scores - 1.0)[:, None]

            u_neg = output_vectors[negatives_batch]         # (B, k, d)
            neg_scores = _sigmoid(np.einsum("bkd,bd->bk", u_neg, v))

            grad_v = pos_coeff * u_pos + np.einsum("bk,bkd->bd", neg_scores, u_neg)
            grad_u_pos = pos_coeff * v
            grad_u_neg = neg_scores[:, :, None] * v[:, None, :]
            # elementwise clipping keeps repeated in-batch updates stable
            np.clip(grad_v, -1.0, 1.0, out=grad_v)
            np.clip(grad_u_pos, -1.0, 1.0, out=grad_u_pos)
            np.clip(grad_u_neg, -1.0, 1.0, out=grad_u_neg)

            # scatter-add: duplicate indices within a batch must accumulate
            np.add.at(input_vectors, centers, -alpha * grad_v)
            np.add.at(output_vectors, contexts, -alpha * grad_u_pos)
            np.add.at(
                output_vectors,
                negatives_batch.reshape(-1),
                -alpha * grad_u_neg.reshape(-1, dimensions),
            )


def train_skipgram(
    walks: Sequence[Sequence[NodeId]],
    dimensions: int = 32,
    window: int = 5,
    negative: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.025,
    min_learning_rate: float = 0.0001,
    seed: int = 0,
    max_pairs: int | None = 2_000_000,
    warm_start: SkipGramModel | None = None,
    tracer=None,
) -> SkipGramModel:
    """Train SGNS over ``walks`` and return the model.

    Negative samples are drawn from the unigram distribution raised to
    3/4, as in the original word2vec.  Deterministic for a fixed seed.
    ``max_pairs`` bounds the training-pair corpus (uniform subsample) so
    dense graphs cannot blow the training budget.  ``warm_start`` copies
    the vectors of every node shared with a previously trained model
    before training (fresh nodes keep their random initialisation).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    vocabulary_set: set[NodeId] = set()
    for walk in walks:
        vocabulary_set.update(walk)
    vocabulary = sorted(vocabulary_set, key=str)
    if not vocabulary:
        return SkipGramModel([], dimensions, seed)
    model = SkipGramModel(vocabulary, dimensions, seed)
    if warm_start is not None:
        model.warm_start_from(warm_start)

    with tracer.span("sgns.corpus") as span:
        matrix = _walk_matrix(walks, model.index)
        frequencies = np.bincount(
            matrix[matrix >= 0].ravel(), minlength=len(vocabulary)
        )
        pair_array = _pair_corpus(matrix, window)
        span.set("pairs", int(len(pair_array)))
    if not len(pair_array):
        return model

    rng = np.random.default_rng(seed + 1)
    if max_pairs is not None and len(pair_array) > max_pairs:
        keep = rng.choice(len(pair_array), size=max_pairs, replace=False)
        pair_array = pair_array[keep]
    with tracer.span("sgns.train", pairs=int(len(pair_array)), epochs=epochs):
        _train_pairs(
            model, pair_array, _noise_cdf(frequencies), rng,
            negative, epochs, learning_rate, min_learning_rate,
        )
    return model


def update_skipgram(
    model: SkipGramModel,
    walks: Sequence[Sequence[NodeId]],
    counts: Mapping[NodeId, int],
    window: int = 5,
    negative: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.025,
    min_learning_rate: float = 0.0001,
    seed: int = 0,
    max_pairs: int | None = 2_000_000,
    tracer=None,
) -> SkipGramModel:
    """Continue training ``model`` on a partial walk corpus, in place.

    The incremental half of the re-embedding fast path: ``walks`` are
    only the re-sampled (dirty-region) walks of the round, while
    ``counts`` are the node frequencies of the *full* cached walk set,
    so the negative-sampling distribution stays global.  Nodes unseen by
    the model get fresh rows; everyone else trains from where the
    previous round left off.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    fresh: set[NodeId] = set()
    for walk in walks:
        for node in walk:
            if node not in model.index:
                fresh.add(node)
    model.extend_vocabulary(sorted(fresh, key=str), seed)
    if not model.vocabulary:
        return model

    with tracer.span("sgns.corpus", incremental=True) as span:
        matrix = _walk_matrix(walks, model.index)
        pair_array = _pair_corpus(matrix, window)
        span.set("pairs", int(len(pair_array)))
    if not len(pair_array):
        return model

    frequencies = np.array(
        [max(1, counts.get(node, 0)) for node in model.vocabulary], dtype=np.float64
    )
    rng = np.random.default_rng(seed + 1)
    if max_pairs is not None and len(pair_array) > max_pairs:
        keep = rng.choice(len(pair_array), size=max_pairs, replace=False)
        pair_array = pair_array[keep]
    with tracer.span("sgns.train", pairs=int(len(pair_array)), incremental=True):
        _train_pairs(
            model, pair_array, _noise_cdf(frequencies), rng,
            negative, epochs, learning_rate, min_learning_rate,
        )
    return model
