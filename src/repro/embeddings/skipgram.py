"""Skip-gram with negative sampling (SGNS) in pure numpy.

This is the word2vec half of node2vec: random walks are the "sentences",
nodes the "words".  We train input and output embedding matrices with the
standard SGNS objective

    log sigmoid(u_o . v_c) + sum_neg log sigmoid(-u_n . v_c)

using per-pair SGD updates with vectorised negative batches.  gensim is
not available offline; at the graph sizes of the experiments this numpy
implementation is entirely adequate.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

NodeId = Hashable


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramModel:
    """Trained SGNS model mapping nodes to dense vectors."""

    def __init__(self, vocabulary: list[NodeId], dimensions: int, seed: int = 0):
        self.vocabulary = list(vocabulary)
        self.index = {node: i for i, node in enumerate(self.vocabulary)}
        rng = np.random.default_rng(seed)
        scale = 0.5 / dimensions
        self.input_vectors = rng.uniform(
            -scale, scale, (len(vocabulary), dimensions)
        ).astype(np.float32)
        self.output_vectors = np.zeros((len(vocabulary), dimensions), dtype=np.float32)

    def vector(self, node: NodeId) -> np.ndarray:
        return self.input_vectors[self.index[node]]

    def vectors(self) -> dict[NodeId, np.ndarray]:
        return {node: self.input_vectors[i] for node, i in self.index.items()}

    def similarity(self, a: NodeId, b: NodeId) -> float:
        """Cosine similarity between two node vectors."""
        va, vb = self.vector(a), self.vector(b)
        denominator = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denominator == 0.0:
            return 0.0
        return float(va @ vb) / denominator

    def most_similar(self, node: NodeId, top: int = 5) -> list[tuple[NodeId, float]]:
        """The ``top`` nearest nodes by cosine similarity (self excluded)."""
        target = self.vector(node)
        norms = np.linalg.norm(self.input_vectors, axis=1)
        target_norm = np.linalg.norm(target)
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = (self.input_vectors @ target) / (norms * target_norm)
        scores = np.nan_to_num(scores, nan=-1.0)
        scores[self.index[node]] = -np.inf
        best = np.argsort(scores)[::-1][:top]
        return [(self.vocabulary[i], float(scores[i])) for i in best]


def train_skipgram(
    walks: Sequence[Sequence[NodeId]],
    dimensions: int = 32,
    window: int = 5,
    negative: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.025,
    min_learning_rate: float = 0.0001,
    seed: int = 0,
    max_pairs: int | None = 2_000_000,
) -> SkipGramModel:
    """Train SGNS over ``walks`` and return the model.

    Negative samples are drawn from the unigram distribution raised to
    3/4, as in the original word2vec.  Deterministic for a fixed seed.
    ``max_pairs`` bounds the training-pair corpus (uniform subsample) so
    dense graphs cannot blow the training budget.
    """
    counts: dict[NodeId, int] = {}
    for walk in walks:
        for node in walk:
            counts[node] = counts.get(node, 0) + 1
    vocabulary = sorted(counts, key=str)
    if not vocabulary:
        return SkipGramModel([], dimensions, seed)
    model = SkipGramModel(vocabulary, dimensions, seed)
    index = model.index

    frequencies = np.array([counts[node] for node in vocabulary], dtype=float)
    noise = frequencies ** 0.75
    noise /= noise.sum()

    rng = np.random.default_rng(seed + 1)

    # materialise training pairs once (walk corpora here are modest)
    pairs: list[tuple[int, int]] = []
    for walk in walks:
        ids = [index[node] for node in walk]
        for position, center in enumerate(ids):
            lo = max(0, position - window)
            hi = min(len(ids), position + window + 1)
            for context_position in range(lo, hi):
                if context_position != position:
                    pairs.append((center, ids[context_position]))
    if not pairs:
        return model

    pair_array = np.array(pairs, dtype=np.int64)
    if max_pairs is not None and len(pair_array) > max_pairs:
        keep = rng.choice(len(pair_array), size=max_pairs, replace=False)
        pair_array = pair_array[keep]
    n_pairs = len(pair_array)
    # batch roughly one occurrence per vocabulary entry: bigger batches pile
    # duplicate stale-gradient updates on the same vector and diverge on
    # small graphs, smaller ones waste vectorisation on large graphs
    batch_size = int(min(4096, max(64, len(vocabulary))))
    dimensions_ = model.input_vectors.shape[1]
    total_batches = epochs * ((n_pairs + batch_size - 1) // batch_size)
    batch_index = 0
    input_vectors = model.input_vectors
    output_vectors = model.output_vectors
    # inverse-CDF negative sampling (much faster than rng.choice with p)
    noise_cdf = np.cumsum(noise)
    noise_cdf[-1] = 1.0
    for _ in range(epochs):
        order = rng.permutation(n_pairs)
        for start in range(0, n_pairs, batch_size):
            alpha = max(
                min_learning_rate,
                learning_rate * (1.0 - batch_index / max(1, total_batches)),
            )
            batch_index += 1
            batch = pair_array[order[start:start + batch_size]]
            centers = batch[:, 0]
            contexts = batch[:, 1]
            negatives_batch = np.searchsorted(
                noise_cdf, rng.random((len(batch), negative))
            )

            v = input_vectors[centers]                      # (B, d)
            u_pos = output_vectors[contexts]                # (B, d)
            pos_scores = _sigmoid(np.sum(u_pos * v, axis=1))  # (B,)
            pos_coeff = (pos_scores - 1.0)[:, None]

            u_neg = output_vectors[negatives_batch]         # (B, k, d)
            neg_scores = _sigmoid(np.einsum("bkd,bd->bk", u_neg, v))

            grad_v = pos_coeff * u_pos + np.einsum("bk,bkd->bd", neg_scores, u_neg)
            grad_u_pos = pos_coeff * v
            grad_u_neg = neg_scores[:, :, None] * v[:, None, :]
            # elementwise clipping keeps repeated in-batch updates stable
            np.clip(grad_v, -1.0, 1.0, out=grad_v)
            np.clip(grad_u_pos, -1.0, 1.0, out=grad_u_pos)
            np.clip(grad_u_neg, -1.0, 1.0, out=grad_u_neg)

            # scatter-add: duplicate indices within a batch must accumulate
            np.add.at(input_vectors, centers, -alpha * grad_v)
            np.add.at(output_vectors, contexts, -alpha * grad_u_pos)
            np.add.at(
                output_vectors,
                negatives_batch.reshape(-1),
                -alpha * grad_u_neg.reshape(-1, dimensions_),
            )
    return model
