"""Second-order biased random walks — the sampling strategy of node2vec.

Grover & Leskovec's node2vec (the primitive wrapped by the paper's
``#GraphEmbedClust`` function) samples walks whose next-step distribution
depends on the previous step: with the walk at ``v`` coming from ``t``,
the unnormalised probability of moving to neighbour ``x`` is

* ``w(v,x) / p``   when ``x == t``      (return parameter),
* ``w(v,x)``       when ``x`` is also a neighbour of ``t``,
* ``w(v,x) / q``   otherwise            (in-out parameter).

Low ``q`` favours exploration (structural equivalence), low ``p`` keeps
the walk local (homophily).  Walks treat the graph as undirected — the
standard choice for ownership networks, where influence flows both ways
along a shareholding for similarity purposes.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from ..graph.property_graph import PropertyGraph

NodeId = Hashable


def build_adjacency(
    graph: PropertyGraph, weight_property: str = "w"
) -> dict[NodeId, list[tuple[NodeId, float]]]:
    """Undirected weighted adjacency; parallel/reciprocal edges merge by sum."""
    adjacency: dict[NodeId, dict[NodeId, float]] = {n: {} for n in graph.node_ids()}
    for edge in graph.edges():
        weight = float(edge.get(weight_property, 1.0) or 1.0)
        if edge.source == edge.target:
            continue
        adjacency[edge.source][edge.target] = (
            adjacency[edge.source].get(edge.target, 0.0) + weight
        )
        adjacency[edge.target][edge.source] = (
            adjacency[edge.target].get(edge.source, 0.0) + weight
        )
    return {node: sorted(neighbors.items(), key=lambda kv: str(kv[0]))
            for node, neighbors in adjacency.items()}


class RandomWalker:
    """Generates node2vec walks over a prebuilt adjacency."""

    def __init__(
        self,
        adjacency: dict[NodeId, list[tuple[NodeId, float]]],
        p: float = 1.0,
        q: float = 1.0,
        seed: int = 0,
    ):
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        self.adjacency = adjacency
        self.p = p
        self.q = q
        self._rng = random.Random(seed)
        self._neighbor_sets: dict[NodeId, set[NodeId]] = {
            node: {neighbor for neighbor, _ in neighbors}
            for node, neighbors in adjacency.items()
        }

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One biased walk of at most ``length`` nodes starting at ``start``."""
        walk = [start]
        if length <= 1:
            return walk
        neighbors = self.adjacency.get(start, ())
        if not neighbors:
            return walk
        current = self._weighted_choice(neighbors)
        walk.append(current)
        while len(walk) < length:
            neighbors = self.adjacency.get(current, ())
            if not neighbors:
                break
            previous = walk[-2]
            current = self._biased_choice(previous, current, neighbors)
            walk.append(current)
        return walk

    def walks(
        self, nodes: Sequence[NodeId], num_walks: int, length: int
    ) -> list[list[NodeId]]:
        """``num_walks`` walks from every node, in shuffled start order."""
        all_walks: list[list[NodeId]] = []
        starts = list(nodes)
        for _ in range(num_walks):
            self._rng.shuffle(starts)
            for start in starts:
                all_walks.append(self.walk(start, length))
        return all_walks

    # ------------------------------------------------------------------

    def _weighted_choice(self, neighbors: Sequence[tuple[NodeId, float]]) -> NodeId:
        total = sum(weight for _, weight in neighbors)
        threshold = self._rng.random() * total
        cumulative = 0.0
        for node, weight in neighbors:
            cumulative += weight
            if cumulative >= threshold:
                return node
        return neighbors[-1][0]

    def _biased_choice(
        self,
        previous: NodeId,
        current: NodeId,
        neighbors: Sequence[tuple[NodeId, float]],
    ) -> NodeId:
        previous_neighbors = self._neighbor_sets.get(previous, set())
        weights: list[float] = []
        for node, weight in neighbors:
            if node == previous:
                weights.append(weight / self.p)
            elif node in previous_neighbors:
                weights.append(weight)
            else:
                weights.append(weight / self.q)
        total = sum(weights)
        threshold = self._rng.random() * total
        cumulative = 0.0
        for (node, _), biased in zip(neighbors, weights):
            cumulative += biased
            if cumulative >= threshold:
                return node
        return neighbors[-1][0]


def generate_walks(
    graph: PropertyGraph,
    num_walks: int = 10,
    walk_length: int = 20,
    p: float = 1.0,
    q: float = 1.0,
    seed: int = 0,
    weight_property: str = "w",
) -> list[list[NodeId]]:
    """Convenience wrapper: build adjacency and sample node2vec walks."""
    adjacency = build_adjacency(graph, weight_property)
    walker = RandomWalker(adjacency, p=p, q=q, seed=seed)
    return walker.walks(list(adjacency), num_walks, walk_length)
