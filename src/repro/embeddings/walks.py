"""Second-order biased random walks — the sampling strategy of node2vec.

Grover & Leskovec's node2vec (the primitive wrapped by the paper's
``#GraphEmbedClust`` function) samples walks whose next-step distribution
depends on the previous step: with the walk at ``v`` coming from ``t``,
the unnormalised probability of moving to neighbour ``x`` is

* ``w(v,x) / p``   when ``x == t``      (return parameter),
* ``w(v,x)``       when ``x`` is also a neighbour of ``t``,
* ``w(v,x) / q``   otherwise            (in-out parameter).

Low ``q`` favours exploration (structural equivalence), low ``p`` keeps
the walk local (homophily).  Walks treat the graph as undirected — the
standard choice for ownership networks, where influence flows both ways
along a shareholding for similarity purposes.

Sampling uses per-node cumulative-weight tables binary-searched with
``bisect`` instead of a linear scan per step.  The tables accumulate
weights in the same left-to-right order the scan summed them, and each
step still draws exactly one ``random()``, so walks are bit-identical to
the historical implementation under a fixed seed.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from itertools import accumulate
from typing import Hashable, Sequence

from ..graph.property_graph import PropertyGraph

NodeId = Hashable

#: node -> (neighbor ids, weights, cumulative weights, total weight),
#: all aligned; the node2vec transition tables of one adjacency
_Table = tuple[tuple, tuple, list, float]


def _neighbor_sort_key(item: tuple[NodeId, float]) -> str:
    node = item[0]
    # identical ordering to sorting by str(node), without allocating a
    # fresh string per comparison for the (ubiquitous) string-id case
    return node if type(node) is str else str(node)


def build_adjacency(
    graph: PropertyGraph, weight_property: str = "w"
) -> dict[NodeId, list[tuple[NodeId, float]]]:
    """Undirected weighted adjacency; parallel/reciprocal edges merge by sum."""
    adjacency: dict[NodeId, dict[NodeId, float]] = {n: {} for n in graph.node_ids()}
    for edge in graph.edges():
        weight = float(edge.get(weight_property, 1.0) or 1.0)
        if edge.source == edge.target:
            continue
        adjacency[edge.source][edge.target] = (
            adjacency[edge.source].get(edge.target, 0.0) + weight
        )
        adjacency[edge.target][edge.source] = (
            adjacency[edge.target].get(edge.source, 0.0) + weight
        )
    return {node: sorted(neighbors.items(), key=_neighbor_sort_key)
            for node, neighbors in adjacency.items()}


class RandomWalker:
    """Generates node2vec walks over a prebuilt adjacency."""

    def __init__(
        self,
        adjacency: dict[NodeId, list[tuple[NodeId, float]]],
        p: float = 1.0,
        q: float = 1.0,
        seed: int = 0,
    ):
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        self.adjacency = adjacency
        self.p = p
        self.q = q
        self._rng = random.Random(seed)
        self._tables: dict[NodeId, _Table] = {}
        for node, neighbors in adjacency.items():
            ids = tuple(neighbor for neighbor, _ in neighbors)
            weights = tuple(weight for _, weight in neighbors)
            self._tables[node] = (
                ids, weights, list(accumulate(weights)), sum(weights)
            )
        self._neighbor_sets: dict[NodeId, set[NodeId]] = {
            node: set(table[0]) for node, table in self._tables.items()
        }
        # with p == q == 1 every bias factor is w / 1.0 == w exactly, so
        # the unbiased tables already hold the biased distribution
        self._unbiased = p == 1.0 and q == 1.0
        # (previous, current) -> (ids, biased cumulative, biased total);
        # grows with the distinct directed steps actually walked
        self._biased_tables: dict[tuple[NodeId, NodeId], tuple[tuple, list, float]] = {}

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One biased walk of at most ``length`` nodes starting at ``start``."""
        walk = [start]
        if length <= 1:
            return walk
        table = self._tables.get(start)
        if table is None or not table[0]:
            return walk
        current = self._sample(table[0], table[2], table[3])
        walk.append(current)
        while len(walk) < length:
            table = self._tables.get(current)
            if table is None or not table[0]:
                break
            previous = walk[-2]
            current = self._biased_sample(previous, current, table)
            walk.append(current)
        return walk

    def walks(
        self, nodes: Sequence[NodeId], num_walks: int, length: int
    ) -> list[list[NodeId]]:
        """``num_walks`` walks from every node, in shuffled start order."""
        all_walks: list[list[NodeId]] = []
        starts = list(nodes)
        for _ in range(num_walks):
            self._rng.shuffle(starts)
            for start in starts:
                all_walks.append(self.walk(start, length))
        return all_walks

    # ------------------------------------------------------------------

    def _sample(self, ids: tuple, cumulative: list, total: float) -> NodeId:
        threshold = self._rng.random() * total
        # leftmost index with cumulative[i] >= threshold: exactly the
        # first-crossing the historical linear scan returned
        index = bisect_left(cumulative, threshold)
        if index >= len(ids):
            index = len(ids) - 1
        return ids[index]

    def _biased_sample(
        self, previous: NodeId, current: NodeId, table: _Table
    ) -> NodeId:
        if self._unbiased:
            return self._sample(table[0], table[2], table[3])
        key = (previous, current)
        cached = self._biased_tables.get(key)
        if cached is None:
            ids, weights, _, _ = table
            previous_neighbors = self._neighbor_sets.get(previous, set())
            p, q = self.p, self.q
            biased: list[float] = []
            for node, weight in zip(ids, weights):
                if node == previous:
                    biased.append(weight / p)
                elif node in previous_neighbors:
                    biased.append(weight)
                else:
                    biased.append(weight / q)
            cached = (ids, list(accumulate(biased)), sum(biased))
            self._biased_tables[key] = cached
        return self._sample(*cached)


def generate_walks(
    graph: PropertyGraph,
    num_walks: int = 10,
    walk_length: int = 20,
    p: float = 1.0,
    q: float = 1.0,
    seed: int = 0,
    weight_property: str = "w",
) -> list[list[NodeId]]:
    """Convenience wrapper: build adjacency and sample node2vec walks."""
    adjacency = build_adjacency(graph, weight_property)
    walker = RandomWalker(adjacency, p=p, q=q, seed=seed)
    return walker.walks(list(adjacency), num_walks, walk_length)
