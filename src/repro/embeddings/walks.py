"""Second-order biased random walks — the sampling strategy of node2vec.

Grover & Leskovec's node2vec (the primitive wrapped by the paper's
``#GraphEmbedClust`` function) samples walks whose next-step distribution
depends on the previous step: with the walk at ``v`` coming from ``t``,
the unnormalised probability of moving to neighbour ``x`` is

* ``w(v,x) / p``   when ``x == t``      (return parameter),
* ``w(v,x)``       when ``x`` is also a neighbour of ``t``,
* ``w(v,x) / q``   otherwise            (in-out parameter).

Low ``q`` favours exploration (structural equivalence), low ``p`` keeps
the walk local (homophily).  Walks treat the graph as undirected — the
standard choice for ownership networks, where influence flows both ways
along a shareholding for similarity purposes.

Sampling uses per-node cumulative-weight tables binary-searched with
``bisect`` instead of a linear scan per step.  The tables accumulate
weights in the same left-to-right order the scan summed them, and each
step still draws exactly one ``random()``, so walks are bit-identical to
the historical implementation under a fixed seed.

``walks(..., workers=n)`` switches to the *deterministic kernel*: every
(start node, walk index) pair owns an independent RNG stream seeded from
a stable hash of (seed, node, index), so the walk set is a pure function
of the adjacency and the seed — independent of start order, sharding, or
worker count.  Start nodes shard across a fork-based process pool, and
the unbiased case (p == q == 1, the paper's default) steps all walks of
a shard in numpy lockstep over a CSR view of the adjacency instead of
one Python loop per step.

The adjacency and the lockstep CSR live in the columnar core now:
:class:`RandomWalker` accepts a :class:`~repro.graph.columnar.GraphFrame`
directly (sharing the frame's cached merged-undirected view and CSR
buffers with every other consumer of that graph version), and
:func:`build_adjacency` is a thin compatibility shim over the frame.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import random
from bisect import bisect_left
from itertools import accumulate
from typing import Hashable, Sequence

import numpy as np

from ..graph.columnar import GraphFrame, build_walker_csr
from ..graph.property_graph import PropertyGraph

NodeId = Hashable

#: node -> (neighbor ids, weights, cumulative weights, total weight),
#: all aligned; the node2vec transition tables of one adjacency
_Table = tuple[tuple, tuple, list, float]


# Counter-based per-walk randomness: each (node, walk-index) pair owns a
# uniform stream u(t) = splitmix64(entropy(node, index) + t * GOLDEN) that
# is a pure function of the walker seed and the node identity — no shared
# RNG state, so any sharding of the start nodes draws identical numbers.
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_WALK_SALT = np.uint64(0xD1B54A32D192ED03)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    x = (x ^ (x >> np.uint64(30))) * _SPLITMIX_M1
    x = (x ^ (x >> np.uint64(27))) * _SPLITMIX_M2
    return x ^ (x >> np.uint64(31))


def _node_entropy(seed: int, node: NodeId) -> int:
    """Stable 64-bit entropy per (seed, node) — process-independent."""
    hasher = hashlib.blake2b(digest_size=8)
    for part in (str(seed), repr(node)):
        hasher.update(part.encode("utf-8", "backslashreplace"))
        hasher.update(b"\x1f")
    return int.from_bytes(hasher.digest(), "big")


def _walk_entropies(
    node_entropies: np.ndarray, walk_indices: np.ndarray
) -> np.ndarray:
    """One 64-bit stream key per (node, walk-index) pair."""
    with np.errstate(over="ignore"):
        return _splitmix64(
            node_entropies + (walk_indices.astype(np.uint64) + np.uint64(1)) * _WALK_SALT
        )


def _uniform_matrix(entropies: np.ndarray, steps: int) -> np.ndarray:
    """``(len(entropies), steps)`` uniforms in [0, 1), 53-bit mantissas."""
    counters = np.arange(1, steps + 1, dtype=np.uint64) * _GOLDEN
    with np.errstate(over="ignore"):
        mixed = _splitmix64(entropies[:, None] + counters[None, :])
    return (mixed >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


#: walker shared with forked pool workers by inheritance (no per-task pickling)
_FORK_WALKER: "RandomWalker | None" = None


def _pool_walk_shard(payload: tuple) -> tuple:
    assert _FORK_WALKER is not None
    return _FORK_WALKER._eval_payload(payload)


def build_adjacency(
    graph: PropertyGraph, weight_property: str = "w"
) -> dict[NodeId, list[tuple[NodeId, float]]]:
    """Undirected weighted adjacency; parallel/reciprocal edges merge by sum.

    Compatibility shim over :meth:`GraphFrame.undirected_adjacency` — the
    heavy lifting (and the cache) lives on the graph's columnar frame.
    Returns a fresh outer dict so callers may rebind entries (the
    incremental embedder does) without corrupting the shared view; the
    neighbour lists themselves are shared and must not be mutated.
    """
    return dict(GraphFrame.of(graph, weight_property).undirected_adjacency())


class RandomWalker:
    """Generates node2vec walks over a prebuilt adjacency.

    Accepts either a plain adjacency dict (``node -> [(neighbor, weight),
    ...]``, str-sorted) or a :class:`GraphFrame`, in which case the
    frame's cached merged-undirected view and lockstep CSR are shared
    instead of rebuilt per walker.
    """

    def __init__(
        self,
        adjacency: "dict[NodeId, list[tuple[NodeId, float]]] | GraphFrame",
        p: float = 1.0,
        q: float = 1.0,
        seed: int = 0,
    ):
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        if isinstance(adjacency, GraphFrame):
            self._frame: GraphFrame | None = adjacency
            adjacency = adjacency.undirected_adjacency()
        else:
            self._frame = None
        self.adjacency = adjacency
        self.p = p
        self.q = q
        self.seed = seed
        self._rng = random.Random(seed)
        self._csr: tuple | None = None  # resolved lazily by _ensure_csr
        self._entropy_cache: dict[NodeId, int] = {}
        self._tables: dict[NodeId, _Table] = {}
        for node, neighbors in adjacency.items():
            ids = tuple(neighbor for neighbor, _ in neighbors)
            weights = tuple(weight for _, weight in neighbors)
            self._tables[node] = (
                ids, weights, list(accumulate(weights)), sum(weights)
            )
        self._neighbor_sets: dict[NodeId, set[NodeId]] = {
            node: set(table[0]) for node, table in self._tables.items()
        }
        # with p == q == 1 every bias factor is w / 1.0 == w exactly, so
        # the unbiased tables already hold the biased distribution
        self._unbiased = p == 1.0 and q == 1.0
        # (previous, current) -> (ids, biased cumulative, biased total);
        # grows with the distinct directed steps actually walked
        self._biased_tables: dict[tuple[NodeId, NodeId], tuple[tuple, list, float]] = {}

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One biased walk of at most ``length`` nodes starting at ``start``."""
        walk = [start]
        if length <= 1:
            return walk
        table = self._tables.get(start)
        if table is None or not table[0]:
            return walk
        current = self._sample(table[0], table[2], table[3])
        walk.append(current)
        while len(walk) < length:
            table = self._tables.get(current)
            if table is None or not table[0]:
                break
            previous = walk[-2]
            current = self._biased_sample(previous, current, table)
            walk.append(current)
        return walk

    def walks(
        self,
        nodes: Sequence[NodeId],
        num_walks: int,
        length: int,
        *,
        workers: int | None = None,
    ) -> list[list[NodeId]]:
        """``num_walks`` walks from every node.

        With ``workers=None`` (the historical default) walks are sampled
        sequentially from the walker's shared RNG in shuffled start order
        — bit-identical to the seed implementation.  With any integer
        ``workers >= 1`` the deterministic kernel takes over: walks come
        back node-major (all walks of ``nodes[0]``, then ``nodes[1]``,
        ...) and are bit-identical for every worker count, because each
        (node, walk-index) pair owns an RNG stream derived only from the
        walker seed and the node identity.
        """
        if workers is None:
            all_walks: list[list[NodeId]] = []
            starts = list(nodes)
            for _ in range(num_walks):
                self._rng.shuffle(starts)
                for start in starts:
                    all_walks.append(self.walk(start, length))
            return all_walks
        if workers < 1:
            raise ValueError("workers must be a positive integer (or None)")
        starts = list(nodes)
        shard_count = min(workers, max(1, len(starts)))
        bounds = [round(i * len(starts) / shard_count) for i in range(shard_count + 1)]
        spans = list(zip(bounds, bounds[1:]))
        if self._unbiased and length > 1:
            # precompute in the parent: forked children then only read
            # numpy buffers, never the Python object heap (whose refcount
            # writes would copy-on-write the whole graph)
            node_index = self._ensure_csr()[1]
            start_idx = np.fromiter(
                (node_index.get(start, -1) for start in starts),
                dtype=np.int64, count=len(starts),
            )
            start_ent = self._entropy_array(starts)
            payloads = [
                ("matrix", start_idx[a:b], start_ent[a:b], num_walks, length)
                for a, b in spans
            ]
            raws = self._map_payloads(payloads)
            return self._finish_matrices(raws, starts, start_idx, num_walks)
        payloads = [("walks", starts[a:b], num_walks, length) for a, b in spans]
        raws = self._map_payloads(payloads)
        return [walk for _, chunk in raws for walk in chunk]

    def _map_payloads(self, payloads: list[tuple]) -> list[tuple]:
        """Evaluate shard payloads, through a fork pool when there is more
        than one; platforms without fork (or with fork blocked) fall back
        to in-process evaluation — results are identical either way."""
        if len(payloads) <= 1:
            return [self._eval_payload(payload) for payload in payloads]
        global _FORK_WALKER
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            _FORK_WALKER = self
            try:
                with context.Pool(processes=len(payloads)) as pool:
                    return pool.map(_pool_walk_shard, payloads)
            except OSError:
                pass  # e.g. sandboxed fork
            finally:
                _FORK_WALKER = None
        return [self._eval_payload(payload) for payload in payloads]

    def _eval_payload(self, payload: tuple) -> tuple:
        """One shard in wire form: the unbiased case returns the raw int
        step matrix (a cheap binary pickle), the biased case finished
        node-id walks."""
        if payload[0] == "matrix":
            _, start_idx, start_ent, num_walks, length = payload
            out, lengths = self._lockstep_matrix(
                start_idx, start_ent, num_walks, length
            )
            return ("matrix", out, lengths)
        _, starts, num_walks, length = payload
        return ("walks", [
            self._seeded_walk(start, index, length)
            for start in starts
            for index in range(num_walks)
        ])

    # ------------------------------------------------------------------
    # deterministic kernel
    # ------------------------------------------------------------------

    def _ensure_csr(self) -> tuple:
        """The lockstep CSR: the frame's shared buffers when the walker
        was built from a :class:`GraphFrame`, otherwise built (once) from
        the local adjacency by :func:`build_walker_csr`."""
        if self._csr is None:
            if self._frame is not None:
                self._csr = self._frame.walker_csr()
            else:
                self._csr = build_walker_csr(self.adjacency)
        return self._csr

    def _entropy_array(self, starts: list[NodeId]) -> np.ndarray:
        """Per-start stream entropies, memoised across calls."""
        cache = self._entropy_cache
        seed = self.seed
        entropies = np.empty(len(starts), dtype=np.uint64)
        for position, start in enumerate(starts):
            entropy = cache.get(start)
            if entropy is None:
                entropy = _node_entropy(seed, start)
                cache[start] = entropy
            entropies[position] = entropy
        return entropies

    def _lockstep_matrix(
        self,
        start_idx: np.ndarray,
        start_ent: np.ndarray,
        num_walks: int,
        length: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Step every live walk of the shard in numpy lockstep.

        ``start_idx`` holds CSR node indices (``-1`` for unknown starts);
        dead starts (unknown or isolated) are skipped here and filled in
        by :meth:`_finish_matrices`.  Returns ``(out, lengths)``: the
        ``(m, length)`` int32 index matrix (``-1`` past the walk end) and
        the per-row walk lengths, one block of ``num_walks`` consecutive
        rows per live start.
        """
        _, _, indptr, neighbors, keys, degrees, _ = self._ensure_csr()
        live_mask = (start_idx >= 0) & (degrees[np.maximum(start_idx, 0)] > 0)
        live = start_idx[live_mask]
        m = live.size * num_walks
        if m == 0:
            return (
                np.empty((0, length), dtype=np.int32),
                np.empty(0, dtype=np.int64),
            )
        current = np.repeat(live, num_walks)
        node_entropies = np.repeat(start_ent[live_mask], num_walks)
        walk_indices = np.arange(m, dtype=np.int64) % num_walks
        uniforms = _uniform_matrix(
            _walk_entropies(node_entropies, walk_indices), length - 1
        )
        out = np.full((m, length), -1, dtype=np.int32)
        out[:, 0] = current
        alive = np.ones(m, dtype=bool)
        for step in range(1, length):
            if alive.all():
                # every walk still live (the usual case on connected
                # graphs): skip the compress/scatter indirection
                positions = np.searchsorted(
                    keys, current + uniforms[:, step - 1], side="left"
                )
                positions = np.clip(positions, indptr[current], indptr[current + 1] - 1)
                chosen = neighbors[positions]
                out[:, step] = chosen
                current = chosen
                alive = degrees[chosen] > 0
                continue
            active = np.nonzero(alive)[0]
            if active.size == 0:
                break
            at = current[active]
            positions = np.searchsorted(keys, at + uniforms[active, step - 1], side="left")
            positions = np.clip(positions, indptr[at], indptr[at + 1] - 1)
            chosen = neighbors[positions]
            out[active, step] = chosen
            current[active] = chosen
            alive[active] = degrees[chosen] > 0
        lengths = (out >= 0).sum(axis=1)
        return (out, lengths)

    def _finish_matrices(
        self,
        raws: list[tuple],
        starts: list[NodeId],
        start_idx: np.ndarray,
        num_walks: int,
    ) -> list[list[NodeId]]:
        """Expand raw shard matrices into node-id walks.

        One object-array gather plus one bulk ``tolist`` converts every
        live row; the ``-1`` padding harmlessly indexes the last node
        before the per-row truncation.  Dead starts yield ``[start]``
        singletons interleaved back in node-major order.
        """
        _, _, _, _, _, degrees, node_objects = self._ensure_csr()
        outs = [out for _, out, _ in raws]
        out = outs[0] if len(outs) == 1 else np.concatenate(outs, axis=0)
        lengths = (
            raws[0][2] if len(raws) == 1
            else np.concatenate([row_lengths for _, _, row_lengths in raws])
        )
        rows = node_objects[out].tolist()
        width = out.shape[1] if out.size else 0
        short = np.nonzero(lengths < width)[0]
        for row, keep in zip(short.tolist(), lengths[short].tolist()):
            del rows[row][keep:]
        live_mask = (start_idx >= 0) & (degrees[np.maximum(start_idx, 0)] > 0)
        if bool(live_mask.all()):
            return rows
        walks: list[list[NodeId]] = []
        row = 0
        for start, is_live in zip(starts, live_mask.tolist()):
            if is_live:
                walks.extend(rows[row:row + num_walks])
                row += num_walks
            else:
                walks.extend([start] for _ in range(num_walks))
        return walks

    def _seeded_walk(self, start: NodeId, walk_index: int, length: int) -> list[NodeId]:
        """One walk from the (node, index)-seeded stream — the biased-case
        kernel, and the per-walk reference for the lockstep path."""
        walk = [start]
        if length <= 1:
            return walk
        table = self._tables.get(start)
        if table is None or not table[0]:
            return walk
        keys = _walk_entropies(
            np.array([_node_entropy(self.seed, start)], dtype=np.uint64),
            np.array([walk_index], dtype=np.int64),
        )
        uniforms = _uniform_matrix(keys, length - 1)[0]
        current = self._sample_with(uniforms[0], table[0], table[2], table[3])
        walk.append(current)
        while len(walk) < length:
            table = self._tables.get(current)
            if table is None or not table[0]:
                break
            ids, cumulative, total = self._biased_table(walk[-2], current, table)
            current = self._sample_with(uniforms[len(walk) - 1], ids, cumulative, total)
            walk.append(current)
        return walk

    # ------------------------------------------------------------------

    def _sample(self, ids: tuple, cumulative: list, total: float) -> NodeId:
        return self._sample_with(self._rng.random(), ids, cumulative, total)

    @staticmethod
    def _sample_with(uniform: float, ids: tuple, cumulative: list, total: float) -> NodeId:
        threshold = uniform * total
        # leftmost index with cumulative[i] >= threshold: exactly the
        # first-crossing the historical linear scan returned
        index = bisect_left(cumulative, threshold)
        if index >= len(ids):
            index = len(ids) - 1
        return ids[index]

    def _biased_table(
        self, previous: NodeId, current: NodeId, table: _Table
    ) -> tuple[tuple, list, float]:
        if self._unbiased:
            return table[0], table[2], table[3]
        key = (previous, current)
        cached = self._biased_tables.get(key)
        if cached is None:
            ids, weights, _, _ = table
            previous_neighbors = self._neighbor_sets.get(previous, set())
            p, q = self.p, self.q
            biased: list[float] = []
            for node, weight in zip(ids, weights):
                if node == previous:
                    biased.append(weight / p)
                elif node in previous_neighbors:
                    biased.append(weight)
                else:
                    biased.append(weight / q)
            cached = (ids, list(accumulate(biased)), sum(biased))
            self._biased_tables[key] = cached
        return cached

    def _biased_sample(
        self, previous: NodeId, current: NodeId, table: _Table
    ) -> NodeId:
        ids, cumulative, total = self._biased_table(previous, current, table)
        return self._sample(ids, cumulative, total)


def generate_walks(
    graph: PropertyGraph,
    num_walks: int = 10,
    walk_length: int = 20,
    p: float = 1.0,
    q: float = 1.0,
    seed: int = 0,
    weight_property: str = "w",
    workers: int | None = None,
) -> list[list[NodeId]]:
    """Convenience wrapper: frame the graph and sample node2vec walks."""
    frame = GraphFrame.of(graph, weight_property)
    walker = RandomWalker(frame, p=p, q=q, seed=seed)
    return walker.walks(
        list(walker.adjacency), num_walks, walk_length, workers=workers
    )
