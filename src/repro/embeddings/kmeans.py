"""k-means clustering (k-means++ init) in numpy.

Used to turn node embeddings into the paper's first-level clusters: the
``#GraphEmbedClust`` function maps each node to the identifier of the
embedding cluster it falls in.
"""

from __future__ import annotations

import numpy as np


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 100,
    seed: int = 0,
    tolerance: float = 1e-6,
    initial_centroids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` (n x d) into ``k`` groups.

    Returns (labels, centroids).  Deterministic for a fixed seed.
    ``k`` is clamped to the number of points.  ``initial_centroids``
    warm-starts Lloyd iteration from a previous solution (used by the
    incremental re-embedding rounds) instead of k-means++ seeding; it is
    ignored unless its shape matches the clamped ``k`` and the points'
    dimensionality.
    """
    n = len(points)
    if n == 0:
        return np.array([], dtype=int), np.empty((0, points.shape[1] if points.ndim == 2 else 0))
    k = max(1, min(k, n))
    rng = np.random.default_rng(seed)
    if (
        initial_centroids is not None
        and initial_centroids.shape == (k, points.shape[1])
    ):
        centroids = np.asarray(initial_centroids, dtype=points.dtype).copy()
    else:
        centroids = _kmeanspp_init(points, k, rng)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iterations):
        distances = _pairwise_sq_distances(points, centroids)
        new_labels = np.argmin(distances, axis=1)
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[new_labels == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
        shift = float(np.max(np.linalg.norm(new_centroids - centroids, axis=1)))
        centroids = new_centroids
        labels = new_labels
        if shift < tolerance:
            break
    return labels, centroids


def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to distance²."""
    n = len(points)
    first = rng.integers(n)
    centroids = [points[first]]
    closest_sq = np.sum((points - points[first]) ** 2, axis=1)
    for _ in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # all remaining points identical to a centroid: pick at random
            choice = rng.integers(n)
        else:
            choice = rng.choice(n, p=closest_sq / total)
        centroids.append(points[choice])
        new_sq = np.sum((points - points[choice]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, new_sq)
    return np.array(centroids)


def _pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, n x k, without forming n*k*d temporaries."""
    point_norms = np.sum(points ** 2, axis=1)[:, None]
    centroid_norms = np.sum(centroids ** 2, axis=1)[None, :]
    cross = points @ centroids.T
    return np.maximum(point_norms + centroid_norms - 2.0 * cross, 0.0)


def cluster_inertia(points: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """Total within-cluster squared distance (the k-means objective)."""
    total = 0.0
    for cluster in range(len(centroids)):
        members = points[labels == cluster]
        if len(members):
            total += float(np.sum((members - centroids[cluster]) ** 2))
    return total
