"""Incremental ``#GraphEmbedClust`` for the augmentation loop.

Algorithm 1's reinforcement principle re-embeds the graph after every
round that added edges, and the seed implementation paid the full
node2vec bill each time: re-sample every walk, re-materialise the whole
pair corpus, re-train SGNS from random vectors, re-seed k-means.  A
round that adds a handful of edges perturbs the walk distribution only
near those edges, so :class:`IncrementalEmbedder` keeps the expensive
state between rounds and redoes only the dirty part:

* **adjacency** (including the feature-token bipartite structure) is
  updated in place with the round's new edges;
* **walks** are cached per start node; only nodes within ``dirty_hops``
  structural hops of a new edge are re-sampled, using the deterministic
  per-(node, walk-index) kernel so the untouched walks stay valid;
* the **SGNS model** warm-starts from the previous round's vectors and
  trains only on the re-sampled walks (the global negative-sampling
  distribution is maintained incrementally from per-start counts);
* **k-means** warm-starts Lloyd iteration from the previous centroids.

Cached walks whose *trajectory* crosses the dirty region (but whose
start lies outside it) are kept — a deliberate approximation bounded by
``dirty_hops``; ``VadaLinkConfig(incremental=False)`` falls back to full
re-embedding through :func:`~repro.embeddings.node2vec.embed_and_cluster`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from ..graph.columnar import GraphFrame
from ..graph.property_graph import Edge, PropertyGraph
from ..telemetry import NULL_TRACER
from .kmeans import kmeans
from .node2vec import Node2VecConfig, _stack_vectors, feature_token_adjacency
from .skipgram import SkipGramModel, train_skipgram, update_skipgram
from .walks import RandomWalker

NodeId = Hashable

_FEATURE_TAG = "__feature__"


def _is_feature_token(node: NodeId) -> bool:
    return isinstance(node, tuple) and len(node) == 3 and node[0] == _FEATURE_TAG


class IncrementalEmbedder:
    """Stateful ``#GraphEmbedClust``: cold on first use, warm afterwards."""

    def __init__(
        self,
        clusters: int,
        config: Node2VecConfig | None = None,
        feature_properties: "tuple[str, ...] | dict[str, float]" = (),
        weight_property: str = "w",
        dirty_hops: int = 2,
        tracer=None,
    ):
        self.clusters = clusters
        self.config = config if config is not None else Node2VecConfig()
        self.feature_properties = feature_properties
        self.weight_property = weight_property
        self.dirty_hops = dirty_hops
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: deterministic kernel is mandatory (cached walks must not depend
        #: on sampling order), so ``workers=None`` means one worker here
        self.workers = self.config.workers or 1
        self.cold_rounds = 0
        self.warm_rounds = 0
        self._adjacency: dict[NodeId, dict[NodeId, float]] | None = None
        self._sorted: dict[NodeId, list[tuple[NodeId, float]]] = {}
        self._walks: dict[NodeId, list[list[NodeId]]] = {}
        self._counts: dict[NodeId, int] = {}
        self._start_counts: dict[NodeId, dict[NodeId, int]] = {}
        self._model: SkipGramModel | None = None
        self._centroids: np.ndarray | None = None

    # ------------------------------------------------------------------

    def embed(
        self, graph: PropertyGraph, new_edges: Sequence[Edge] | None = None
    ) -> dict[NodeId, int]:
        """Cluster assignment for ``graph``.

        ``new_edges`` are the edges added since the previous call; when
        given (and state exists) only the dirty region is recomputed.
        With ``new_edges=None`` the embedder recomputes from scratch.
        """
        nodes = list(graph.node_ids())
        if self.clusters <= 1 or len(nodes) <= 1:
            return {node: 0 for node in nodes}
        if self._model is None or new_edges is None:
            return self._embed_cold(graph, nodes)
        return self._embed_warm(graph, nodes, new_edges)

    def reset(self) -> None:
        """Drop all cached state; the next ``embed`` runs cold."""
        self._adjacency = None
        self._sorted = {}
        self._walks = {}
        self._counts = {}
        self._start_counts = {}
        self._model = None
        self._centroids = None

    # ------------------------------------------------------------------

    def _embed_cold(self, graph: PropertyGraph, nodes: list[NodeId]) -> dict[NodeId, int]:
        config = self.config
        self.cold_rounds += 1
        frame: GraphFrame | None = None
        with self.tracer.span("embed.adjacency", mode="cold"):
            if self.feature_properties:
                self._sorted = feature_token_adjacency(
                    graph, self.feature_properties, self.weight_property
                )
            else:
                # no token nodes: the structural adjacency IS the frame's
                # cached view, and the walker shares the frame's CSR
                frame = GraphFrame.of(graph, self.weight_property)
                self._sorted = dict(frame.undirected_adjacency())
            self._adjacency = {
                node: dict(neighbors) for node, neighbors in self._sorted.items()
            }
        walker = RandomWalker(
            frame if frame is not None else self._sorted,
            p=config.p, q=config.q, seed=config.seed,
        )
        starts = list(self._sorted)
        with self.tracer.span("embed.walks", mode="cold", workers=self.workers) as span:
            all_walks = walker.walks(
                starts, config.num_walks, config.walk_length, workers=self.workers
            )
            span.set("walks", len(all_walks))
        self._walks = {}
        self._counts = {}
        self._start_counts = {}
        for position, start in enumerate(starts):
            chunk = all_walks[position * config.num_walks:(position + 1) * config.num_walks]
            self._store_walks(start, chunk)
        self._model = train_skipgram(
            all_walks,
            dimensions=config.dimensions,
            window=config.window,
            negative=config.negative,
            epochs=config.epochs,
            learning_rate=config.learning_rate,
            seed=config.seed,
            tracer=self.tracer,
        )
        return self._cluster(nodes, warm=False)

    def _embed_warm(
        self, graph: PropertyGraph, nodes: list[NodeId], new_edges: Sequence[Edge]
    ) -> dict[NodeId, int]:
        config = self.config
        self.warm_rounds += 1
        assert self._adjacency is not None and self._model is not None
        with self.tracer.span("embed.adjacency", mode="warm") as span:
            touched = self._apply_edges(new_edges)
            span.set("new_edges", len(new_edges))
        dirty = self._dirty_region(touched)
        walker = RandomWalker(self._sorted, p=config.p, q=config.q, seed=config.seed)
        dirty_starts = sorted((n for n in dirty if n in self._sorted), key=str)
        with self.tracer.span(
            "embed.walks", mode="warm", workers=self.workers
        ) as span:
            resampled = walker.walks(
                dirty_starts, config.num_walks, config.walk_length,
                workers=self.workers,
            )
            span.set("dirty_nodes", len(dirty_starts))
            span.set("walks", len(resampled))
        for position, start in enumerate(dirty_starts):
            chunk = resampled[position * config.num_walks:(position + 1) * config.num_walks]
            self._store_walks(start, chunk)
        update_skipgram(
            self._model,
            resampled,
            counts=self._counts,
            window=config.window,
            negative=config.negative,
            epochs=config.epochs,
            learning_rate=config.learning_rate,
            seed=config.seed,
            tracer=self.tracer,
        )
        return self._cluster(nodes, warm=True)

    # ------------------------------------------------------------------

    def _store_walks(self, start: NodeId, chunk: list[list[NodeId]]) -> None:
        """Cache a start node's walks, keeping global counts consistent."""
        previous = self._start_counts.get(start)
        if previous:
            for node, count in previous.items():
                remaining = self._counts.get(node, 0) - count
                if remaining > 0:
                    self._counts[node] = remaining
                else:
                    self._counts.pop(node, None)
        contribution: dict[NodeId, int] = {}
        for walk in chunk:
            for node in walk:
                contribution[node] = contribution.get(node, 0) + 1
        for node, count in contribution.items():
            self._counts[node] = self._counts.get(node, 0) + count
        self._start_counts[start] = contribution
        self._walks[start] = chunk

    def _apply_edges(self, new_edges: Iterable[Edge]) -> set[NodeId]:
        """Fold new edges into the cached adjacency; returns touched nodes."""
        assert self._adjacency is not None
        touched: set[NodeId] = set()
        for edge in new_edges:
            if edge.source == edge.target:
                continue
            weight = float(edge.get(self.weight_property, 1.0) or 1.0)
            for a, b in ((edge.source, edge.target), (edge.target, edge.source)):
                neighbors = self._adjacency.setdefault(a, {})
                neighbors[b] = neighbors.get(b, 0.0) + weight
                touched.add(a)
        for node in touched:
            self._sorted[node] = sorted(
                self._adjacency[node].items(), key=lambda kv: str(kv[0])
            )
        return touched

    def _dirty_region(self, touched: set[NodeId]) -> set[NodeId]:
        """Nodes within ``dirty_hops`` structural hops of a new edge.

        Feature tokens are not traversed (their incident structure did
        not change); walks starting at tokens keep their cached samples.
        """
        assert self._adjacency is not None
        dirty = {node for node in touched if not _is_feature_token(node)}
        frontier = list(dirty)
        for _ in range(self.dirty_hops):
            next_frontier: list[NodeId] = []
            for node in frontier:
                for neighbor in self._adjacency.get(node, ()):
                    if _is_feature_token(neighbor) or neighbor in dirty:
                        continue
                    dirty.add(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return dirty

    def _cluster(self, nodes: list[NodeId], warm: bool) -> dict[NodeId, int]:
        assert self._model is not None
        config = self.config
        matrix = _stack_vectors(self._model, nodes, config.dimensions)
        with self.tracer.span("embed.kmeans", warm=warm, clusters=self.clusters):
            labels, centroids = kmeans(
                matrix,
                self.clusters,
                seed=config.seed,
                initial_centroids=self._centroids if warm else None,
            )
        self._centroids = centroids
        return {node: int(label) for node, label in zip(nodes, labels)}
