"""Hierarchical spans and counters for the reasoning stack.

The tracer is the measurement substrate the engine, pipeline, benchmark
harness and CLI share: a tree of :class:`Span` objects, each with a
monotonic wall-clock duration and a free-form attribute dict used for
counters (rule firings, facts derived, delta sizes, ...).

Design constraints, in order:

* **zero-cost by default** — every instrumented component takes an
  optional tracer and falls back to :data:`NULL_TRACER`, whose methods
  are no-ops returning a shared singleton, so the disabled path costs a
  method call and nothing else (no span allocation, no ``perf_counter``);
* **nested** — ``span()`` is a context manager; spans opened inside it
  become children, so a pipeline span contains the engine spans of the
  reasoning runs it triggers;
* **exportable** — ``to_dict()`` / ``to_json()`` emit the whole tree in
  a stable machine-readable shape, ``render()`` pretty-prints it for the
  CLI's ``--profile`` flag.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "started", "ended", "attributes", "children")

    def __init__(self, name: str):
        self.name = name
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.attributes: dict[str, Any] = {}
        self.children: list["Span"] = []

    # -- lifecycle ------------------------------------------------------

    def finish(self, duration: float | None = None) -> None:
        """Close the span; ``duration`` overrides the measured wall time
        (used for synthetic spans that aggregate accumulated timings)."""
        if duration is not None:
            self.ended = self.started + duration
        elif self.ended is None:
            self.ended = time.perf_counter()

    @property
    def duration(self) -> float:
        """Seconds from start to finish (or to now while still open)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def child(self, name: str) -> "Span":
        span = Span(name)
        self.children.append(span)
        return span

    # -- counters -------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate a numeric counter attribute."""
        self.attributes[key] = self.attributes.get(key, 0) + amount

    def append(self, key: str, value: Any) -> None:
        """Append to a list-valued attribute (e.g. per-round delta sizes)."""
        self.attributes.setdefault(key, []).append(value)

    # -- inspection -----------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) whose name equals ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0, min_fraction: float = 0.0) -> str:
        """Fixed-width tree: name, duration, then ``key=value`` counters.

        ``min_fraction`` drops descendants cheaper than that fraction of
        this span's duration (0 keeps everything).
        """
        budget = self.duration or 1e-12
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            label = "  " * depth + span.name
            attrs = " ".join(
                f"{key}={_fmt_value(value)}" for key, value in span.attributes.items()
            )
            lines.append(
                f"{label:<44}{_fmt_seconds(span.duration):>10}"
                + (f"  {attrs}" if attrs else "")
            )
            for child in span.children:
                if child.duration >= min_fraction * budget:
                    emit(child, depth + 1)

        emit(self, indent)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {_fmt_seconds(self.duration)}, {len(self.children)} children)"


class Tracer:
    """A live trace: a root span plus a stack tracking the open span.

    Usable directly as a context manager factory::

        tracer = Tracer("run")
        with tracer.span("pipeline.augment"):
            with tracer.span("engine.run", rules=12) as span:
                span.add("facts_derived", 120)
        print(tracer.render())
    """

    enabled = True

    def __init__(self, name: str = "trace"):
        self.root = Span(name)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def span(self, name: str, **attributes: Any) -> "_SpanContext":
        """Open a child span of the current span for a ``with`` block."""
        span = self.current.child(name)
        if attributes:
            span.attributes.update(attributes)
        return _SpanContext(self, span)

    # counter conveniences on whatever span is open
    def set(self, key: str, value: Any) -> None:
        self.current.set(key, value)

    def add(self, key: str, amount: float = 1) -> None:
        self.current.add(key, amount)

    def append(self, key: str, value: Any) -> None:
        self.current.append(key, value)

    def finish(self) -> None:
        """Close the root span (idempotent)."""
        self.root.finish()

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, min_fraction: float = 0.0) -> str:
        return self.root.render(min_fraction=min_fraction)

    def find(self, name: str) -> Span | None:
        return self.root.find(name)


class _SpanContext:
    """Context manager pushing/popping one span on the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.finish()
        self._tracer._stack.pop()


class _NullSpan:
    """Shared inert span: accepts the whole Span surface and does nothing."""

    __slots__ = ()

    name = "null"
    started = 0.0
    ended = 0.0
    duration = 0.0
    attributes: dict[str, Any] = {}
    children: tuple = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def finish(self, duration: float | None = None) -> None:
        return None

    def child(self, name: str) -> "_NullSpan":
        return self

    def set(self, key: str, value: Any) -> None:
        return None

    def add(self, key: str, amount: float = 1) -> None:
        return None

    def append(self, key: str, value: Any) -> None:
        return None

    def walk(self) -> Iterator["_NullSpan"]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code holds a reference to this singleton when no tracer
    was passed, so the hot paths pay one attribute check
    (``tracer.enabled``) or one trivially inlinable method call.
    """

    enabled = False
    current = _NULL_SPAN
    root = _NULL_SPAN

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def set(self, key: str, value: Any) -> None:
        return None

    def add(self, key: str, amount: float = 1) -> None:
        return None

    def append(self, key: str, value: Any) -> None:
        return None

    def finish(self) -> None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}

    def to_json(self, indent: int | None = 2) -> str:
        return "{}"

    def render(self, min_fraction: float = 0.0) -> str:
        return "(tracing disabled)"

    def find(self, name: str) -> None:
        return None


#: Shared no-op tracer used whenever no live tracer is supplied.
NULL_TRACER = NullTracer()


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, list) and len(value) > 8:
        shown = ",".join(str(v) for v in value[:8])
        return f"[{shown},...×{len(value)}]"
    if isinstance(value, list):
        return "[" + ",".join(str(v) for v in value) + "]"
    return str(value)
