"""Engine/pipeline telemetry: hierarchical spans, counters, JSON export.

Instrumented components (``datalog.Engine``, ``core.KnowledgeGraph``,
``core.ReasoningPipeline``, ``core.VadaLink``, the CLI) accept an
optional :class:`Tracer`; when none is given they use the zero-cost
:data:`NULL_TRACER` and tracing adds no measurable overhead.
"""

from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]
