"""The durable frame store: versioned on-disk snapshots, mmap attach.

A store is one directory::

    store/
      catalog.db            # SQLite catalog (see repro.storage.catalog)
      versions/
        default/            # one directory per tenant...
          v00000001/        # ...one per persisted version of that tenant
            edge_src.npy    # every GraphFrame buffer (EXPORT_DTYPES)...
            ...
            control_x.npy   # ...plus the snapshot row state (ROW_DTYPES)

Version streams are per tenant: two tenants may both hold a version 3,
and every catalog row is keyed ``(tenant, version)``.  A format-1 store
(single stream, ``versions/v*`` at the top level) is migrated in place
on first open — its stream becomes the ``default`` tenant's.

:meth:`FrameStore.persist` writes a complete snapshot — numeric columns
as npy files, the graph object model and value-interned properties into
the catalog — using the same publish discipline as the in-memory
:class:`~repro.service.snapshot.SnapshotManager` swap:

1. **claim** — a ``versions`` row is inserted in state ``staging``
   (its own transaction, so a concurrent persist of the same version
   fails fast);
2. **write** — column files land in a fresh version directory and are
   fsynced (file and directory), then the manifest and graph rows are
   inserted, all still ``staging``;
3. **flip** — one ``UPDATE versions SET state='published'`` commits.
   That single row flip *is* the publish: a crash anywhere before it
   leaves a ``staging`` carcass that :meth:`open` purges on the next
   boot, and a crash after it leaves a fully published version.

:meth:`FrameStore.attach` is the inverse of
``service.shm.attach_snapshot`` with the disk as the segment: columns
come back as read-only ``np.load(..., mmap_mode="r")`` views — the
kernel pages them in on demand, so attach cost is catalog metadata, not
buffer size — and the graph object model is rebuilt from the catalog.
Both paths share :mod:`repro.storage.layout`, so a snapshot persisted
here decodes exactly like one served from shared memory.

:meth:`FrameStore.attach_latest` self-heals: a published version that
fails verification (truncated column, checksum mismatch) is demoted to
``corrupt`` in the catalog and the next older published version is
tried, so one bad version never bricks a store.

:meth:`FrameStore.gc` prunes history: old published versions beyond the
newest ``keep`` per ``(tenant, kind)`` stream are dropped from catalog
and disk.  The latest published version of every stream and staging
rows are never pruned.
"""

from __future__ import annotations

import pickle
import shutil
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..graph.columnar import EXPORT_DTYPES, GraphFrame
from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import PropertyGraph
from ..graph.store import GraphStore
from ..service.registry import validate_tenant
from ..service.snapshot import DEFAULT_TENANT, Snapshot
from . import catalog as cat
from .layout import ROW_DTYPES, decode_rows, encode_rows
from .npyio import data_crc32, fsync_dir, write_column

#: Graph classes a stored model may rebuild into.
GRAPH_CLASSES: dict[str, type[PropertyGraph]] = {
    "PropertyGraph": PropertyGraph,
    "CompanyGraph": CompanyGraph,
}

#: Columns a snapshot version must carry, exactly.
SNAPSHOT_COLUMNS = dict(EXPORT_DTYPES) | dict(ROW_DTYPES)


class StoreError(RuntimeError):
    """A store that is missing, corrupt, or asked for an unknown version."""


class InjectedCrash(RuntimeError):
    """Raised by the test-only crash hook; never caught by the store."""


class StoredSnapshot(Snapshot):
    """A snapshot whose frame buffers are read-only mmaps of store files.

    Behaves exactly like a built :class:`Snapshot` (the per-row identity
    tests assert it); additionally records where it came from.
    """

    store_path: Path
    store_version: int
    store_tenant: str


class FrameStore:
    """One durable store directory; every public method is self-contained.

    Connections are opened per operation (SQLite WAL handles concurrent
    readers); :meth:`persist` is additionally serialised in-process so a
    service's updater thread and control plane cannot interleave claims.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.catalog_path = self.root / "catalog.db"
        self.versions_root = self.root / "versions"
        #: test-only fault injection: set to a stage name to raise
        #: :class:`InjectedCrash` mid-persist (no cleanup runs — the
        #: point is to leave exactly what a kill would leave).
        self.crash_point: str | None = None
        self._persist_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path) -> "FrameStore":
        store = cls(root)
        store.root.mkdir(parents=True, exist_ok=True)
        store.versions_root.mkdir(exist_ok=True)
        with store._connect(init=True) as conn:
            cat.init_schema(conn)
        fsync_dir(store.root)
        return store

    @classmethod
    def open(cls, root: str | Path) -> "FrameStore":
        store = cls(root)
        if not store.root.is_dir() or not store.catalog_path.is_file():
            raise StoreError(f"store not found: {store.root}")
        with store._connect() as conn:
            store._recover(conn)
        return store

    @classmethod
    def open_or_create(cls, root: str | Path) -> "FrameStore":
        store = cls(root)
        if store.catalog_path.is_file():
            return cls.open(root)
        return cls.create(root)

    def _connect(self, init: bool = False) -> sqlite3.Connection:
        try:
            conn = cat.connect(str(self.catalog_path))
            if not init:
                if cat.catalog_format(conn) == 1:
                    # Migrate in place: move the single v1 stream's
                    # directories under the default tenant first (the
                    # move is idempotent, so a crash between the two
                    # steps re-runs it harmlessly), then rewrite the
                    # catalog in one transaction.
                    self._relocate_v1_dirs()
                    cat.migrate_v1_to_v2(conn)
                cat.check_format(conn)
            return conn
        except (sqlite3.DatabaseError, ValueError) as exc:
            raise StoreError(f"corrupt store catalog: {exc}") from exc

    def _relocate_v1_dirs(self) -> None:
        if not self.versions_root.is_dir():
            return
        target = self.versions_root / DEFAULT_TENANT
        moved = False
        for entry in list(self.versions_root.iterdir()):
            name = entry.name
            if entry.is_dir() and name.startswith("v") and name[1:].isdigit():
                target.mkdir(exist_ok=True)
                entry.rename(target / name)
                moved = True
        if moved:
            fsync_dir(target)
            fsync_dir(self.versions_root)

    def _recover(self, conn: sqlite3.Connection) -> None:
        """Purge staging carcasses left by a crash mid-persist."""
        staged = conn.execute(
            "SELECT tenant, version FROM versions WHERE state = 'staging'"
        ).fetchall()
        for tenant, version in staged:
            for table in cat.VERSIONED_TABLES:
                conn.execute(
                    f"DELETE FROM {table} WHERE tenant = ? AND version = ?",
                    (tenant, version),
                )
        conn.commit()
        known = {
            (tenant, version)
            for tenant, version in conn.execute("SELECT tenant, version FROM versions")
        }
        if self.versions_root.is_dir():
            for tenant_dir in self.versions_root.iterdir():
                if not tenant_dir.is_dir():
                    continue
                for entry in tenant_dir.iterdir():
                    name = entry.name
                    if not (name.startswith("v") and name[1:].isdigit()):
                        continue
                    if (tenant_dir.name, int(name[1:])) not in known:
                        shutil.rmtree(entry, ignore_errors=True)

    def version_dir(self, version: int, tenant: str = DEFAULT_TENANT) -> Path:
        return self.versions_root / tenant / f"v{version:08d}"

    def _maybe_crash(self, stage: str) -> None:
        if self.crash_point == stage:
            raise InjectedCrash(stage)

    # -- introspection --------------------------------------------------

    def versions(
        self, kind: str | None = None, tenant: str | None = None
    ) -> list[dict[str, Any]]:
        """Catalog rows for every version, oldest first per tenant."""
        query = (
            "SELECT tenant, version, state, kind, parent, generation, created_at,"
            " published_at, built_s, nodes, edges FROM versions"
        )
        clauses = []
        params: list[Any] = []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY tenant, version"
        with self._connect() as conn:
            rows = conn.execute(query, tuple(params)).fetchall()
        keys = (
            "tenant", "version", "state", "kind", "parent", "generation",
            "created_at", "published_at", "built_s", "nodes", "edges",
        )
        return [dict(zip(keys, row)) for row in rows]

    def tenants(self) -> list[str]:
        """Every tenant holding at least one version, sorted."""
        with self._connect() as conn:
            return [
                row[0]
                for row in conn.execute(
                    "SELECT DISTINCT tenant FROM versions ORDER BY tenant"
                )
            ]

    def published_versions(
        self, kind: str = "snapshot", tenant: str = DEFAULT_TENANT
    ) -> list[int]:
        with self._connect() as conn:
            return [
                row[0]
                for row in conn.execute(
                    "SELECT version FROM versions"
                    " WHERE state = 'published' AND kind = ? AND tenant = ?"
                    " ORDER BY version",
                    (kind, tenant),
                )
            ]

    def latest_version(
        self, kind: str = "snapshot", tenant: str = DEFAULT_TENANT
    ) -> int | None:
        published = self.published_versions(kind, tenant=tenant)
        return published[-1] if published else None

    # -- persist --------------------------------------------------------

    def persist(self, snapshot: Snapshot, tenant: str = DEFAULT_TENANT) -> int:
        """Write ``snapshot`` as a durable version of ``tenant``."""
        validate_tenant(tenant)
        with self._persist_lock:
            return self._persist(snapshot, tenant)

    def _persist(self, snapshot: Snapshot, tenant: str) -> int:
        frame = snapshot.frame
        if not frame.is_current(snapshot.graph):  # out-of-band mutation: re-pin
            frame = GraphFrame.of(snapshot.graph)
        buffers = dict(frame.buffers())
        row_buffers, classes = encode_rows(snapshot, frame)
        buffers.update(row_buffers)

        graph, augmented = snapshot.graph, snapshot.augmented
        meta = pickle.dumps(
            {
                "config": snapshot.config,
                "family_classes": classes,
                "weight_property": frame.weight_property,
                "created_at": snapshot.created_at,
                "warm": snapshot.warm,
                "incremental": snapshot.incremental,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

        version = snapshot.version
        conn = self._connect()
        try:
            # 1. claim: a staging row, committed on its own so concurrent
            #    persists of the same version fail before any file I/O.
            conn.execute("BEGIN IMMEDIATE")
            existing = conn.execute(
                "SELECT state FROM versions WHERE tenant = ? AND version = ?",
                (tenant, version),
            ).fetchone()
            if existing is not None:
                conn.rollback()
                raise StoreError(
                    f"version {version} already persisted (state={existing[0]})"
                )
            parent = conn.execute(
                "SELECT MAX(version) FROM versions"
                " WHERE state = 'published' AND kind = 'snapshot' AND tenant = ?",
                (tenant,),
            ).fetchone()[0]
            conn.execute(
                "INSERT INTO versions (tenant, version, state, kind, parent,"
                " generation, created_at, built_s, nodes, edges, graph_class,"
                " next_edge_id, aug_next_edge_id, meta)"
                " VALUES (?, ?, 'staging', 'snapshot', ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    tenant,
                    version,
                    parent,
                    graph.generation,
                    time.time(),
                    snapshot.built_s,
                    frame.node_count,
                    frame.edge_count,
                    type(graph).__name__,
                    graph._next_edge_id,
                    augmented._next_edge_id,
                    meta,
                ),
            )
            conn.commit()

            # 2. write: column files into a fresh version directory.
            vdir = self.version_dir(version, tenant)
            vdir.mkdir(parents=True, exist_ok=True)
            self._maybe_crash("before_files")
            manifest: list[tuple[str, int, str, str, int, int, int]] = []
            for i, name in enumerate(SNAPSHOT_COLUMNS):
                array = np.ascontiguousarray(buffers[name], dtype=SNAPSHOT_COLUMNS[name])
                crc = write_column(vdir / f"{name}.npy", array)
                manifest.append(
                    (
                        tenant,
                        version,
                        name,
                        array.dtype.str,
                        array.shape[0],
                        array.nbytes,
                        crc,
                    )
                )
                if i == 0:
                    self._maybe_crash("mid_files")
            self._maybe_crash("after_files")
            fsync_dir(vdir)
            fsync_dir(vdir.parent)
            fsync_dir(self.versions_root)

            # 3. manifest + graph model + the atomic flip, one transaction.
            conn.execute("BEGIN IMMEDIATE")
            conn.executemany(
                "INSERT INTO columns (tenant, version, name, dtype, length, nbytes,"
                " crc32) VALUES (?, ?, ?, ?, ?, ?, ?)",
                manifest,
            )
            self._write_graph_model(conn, tenant, version, graph, augmented, frame)
            self._maybe_crash("before_publish")
            conn.execute(
                "UPDATE versions SET state = 'published', published_at = ?"
                " WHERE tenant = ? AND version = ?",
                (time.time(), tenant, version),
            )
            conn.commit()
        finally:
            conn.close()
        return version

    def _write_graph_model(
        self,
        conn: sqlite3.Connection,
        tenant: str,
        version: int,
        graph: PropertyGraph,
        augmented: PropertyGraph,
        frame: GraphFrame,
    ) -> None:
        interner = cat.ValueInterner(conn)
        index = frame.index
        node_pos: dict[Any, int] = {}
        node_rows = []
        prop_rows = []
        for pos, node in enumerate(graph.nodes()):
            node_pos[node.id] = pos
            label_ref = None if node.label is None else interner.ref(node.label)
            node_rows.append(
                (tenant, version, pos, interner.ref(node.id), label_ref, index[node.id])
            )
            for ordinal, (name, value) in enumerate(node.properties.items()):
                prop_rows.append(
                    (
                        tenant,
                        version,
                        pos,
                        ordinal,
                        interner.ref(name),
                        interner.ref(value),
                    )
                )
        conn.executemany(
            "INSERT INTO nodes (tenant, version, pos, id_ref, label_ref, intern)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            node_rows,
        )
        conn.executemany(
            "INSERT INTO node_props (tenant, version, pos, ordinal, name_ref,"
            " value_ref) VALUES (?, ?, ?, ?, ?, ?)",
            prop_rows,
        )

        base_edge_ids = {edge.id for edge in graph.edges()}
        layers = [
            (0, list(graph.edges())),
            (1, [e for e in augmented.edges() if e.id not in base_edge_ids]),
        ]
        edge_rows = []
        edge_prop_rows = []
        for layer, edges in layers:
            for pos, edge in enumerate(edges):
                label_ref = None if edge.label is None else interner.ref(edge.label)
                edge_rows.append(
                    (
                        tenant,
                        version,
                        layer,
                        pos,
                        interner.ref(edge.id),
                        node_pos[edge.source],
                        node_pos[edge.target],
                        label_ref,
                    )
                )
                for ordinal, (name, value) in enumerate(edge.properties.items()):
                    edge_prop_rows.append(
                        (
                            tenant,
                            version,
                            layer,
                            pos,
                            ordinal,
                            interner.ref(name),
                            interner.ref(value),
                        )
                    )
        conn.executemany(
            "INSERT INTO edges (tenant, version, layer, pos, edge_id_ref, src_pos,"
            " dst_pos, label_ref) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            edge_rows,
        )
        conn.executemany(
            "INSERT INTO edge_props (tenant, version, layer, pos, ordinal, name_ref,"
            " value_ref) VALUES (?, ?, ?, ?, ?, ?, ?)",
            edge_prop_rows,
        )

    # -- attach ---------------------------------------------------------

    def attach(
        self,
        version: int | None = None,
        verify: bool = True,
        tenant: str = DEFAULT_TENANT,
    ) -> StoredSnapshot:
        """Rehydrate a published snapshot version as a serving snapshot.

        ``version=None`` attaches the tenant's newest published version.
        With ``verify`` every column file's data CRC-32 is checked
        against the catalog manifest before it is mapped.
        """
        conn = self._connect()
        try:
            if version is None:
                row = conn.execute(
                    "SELECT MAX(version) FROM versions"
                    " WHERE state = 'published' AND kind = 'snapshot' AND tenant = ?",
                    (tenant,),
                ).fetchone()
                if row[0] is None:
                    raise StoreError(
                        f"store has no published snapshot versions for tenant {tenant}"
                    )
                version = row[0]
            row = conn.execute(
                "SELECT state, kind, graph_class, next_edge_id, aug_next_edge_id,"
                " meta, built_s FROM versions WHERE tenant = ? AND version = ?",
                (tenant, version),
            ).fetchone()
            if row is None:
                published = ", ".join(
                    str(v)
                    for (v,) in conn.execute(
                        "SELECT version FROM versions WHERE state = 'published'"
                        " AND kind = 'snapshot' AND tenant = ? ORDER BY version",
                        (tenant,),
                    )
                ) or "none"
                raise StoreError(
                    f"version {version} not found in store (published: {published})"
                )
            state, kind, graph_class, next_edge_id, aug_next_edge_id, blob, built_s = row
            if state != "published":
                raise StoreError(f"version {version} is not published (state={state})")
            if kind != "snapshot":
                raise StoreError(
                    f"version {version} is a bare graph, not a servable snapshot"
                )
            meta = pickle.loads(blob)
            views = self._load_columns(
                conn, tenant, version, SNAPSHOT_COLUMNS, verify=verify
            )
            graph, augmented = self._rebuild_graphs(
                conn, tenant, version, graph_class, next_edge_id, aug_next_edge_id
            )
        finally:
            conn.close()

        frame = GraphFrame.attach(
            graph,
            {k: views[k] for k in EXPORT_DTYPES},
            weight_property=meta["weight_property"],
        )
        frame.adopt_as_cache_of(graph)
        control, close, family, ubo = decode_rows(
            views, frame.nodes, meta["family_classes"]
        )
        config = meta["config"]
        store = GraphStore(augmented)
        for prop in config.index_properties:
            store.ensure_index(prop)
        snapshot = StoredSnapshot(
            version=version,
            graph=graph,
            augmented=augmented,
            store=store,
            config=config,
            control=control,
            close_links=close,
            family_links=family,
            ubo=ubo,
            built_s=built_s,
            warm=meta["warm"],
            frame=frame,
            incremental=meta["incremental"],
        )
        snapshot.created_at = meta["created_at"]
        snapshot.store_path = self.root
        snapshot.store_version = version
        snapshot.store_tenant = tenant
        return snapshot

    def attach_latest(
        self, verify: bool = True, tenant: str = DEFAULT_TENANT
    ) -> StoredSnapshot:
        """Attach the newest version that survives verification.

        A candidate that fails (truncated file, checksum mismatch, bad
        metadata) is demoted to ``corrupt`` in the catalog and the next
        older published version is tried — the self-heal path after a
        torn write that somehow made it past publish.
        """
        candidates = self.published_versions("snapshot", tenant=tenant)
        last_error: StoreError | None = None
        for version in reversed(candidates):
            try:
                return self.attach(version, verify=verify, tenant=tenant)
            except StoreError as exc:
                last_error = exc
                with self._connect() as conn:
                    conn.execute(
                        "UPDATE versions SET state = 'corrupt'"
                        " WHERE tenant = ? AND version = ?",
                        (tenant, version),
                    )
                    conn.commit()
        if last_error is not None:
            raise StoreError(
                f"no attachable version (all candidates corrupt; last: {last_error})"
            )
        raise StoreError(
            f"store has no published snapshot versions for tenant {tenant}"
        )

    def _load_columns(
        self,
        conn: sqlite3.Connection,
        tenant: str,
        version: int,
        expected: dict[str, np.dtype],
        verify: bool,
    ) -> dict[str, np.ndarray]:
        manifest = {
            name: (dtype, length, nbytes, crc)
            for name, dtype, length, nbytes, crc in conn.execute(
                "SELECT name, dtype, length, nbytes, crc32 FROM columns"
                " WHERE tenant = ? AND version = ?",
                (tenant, version),
            )
        }
        missing = set(expected) - set(manifest)
        if missing:
            raise StoreError(
                f"version {version} manifest is incomplete (missing {sorted(missing)})"
            )
        vdir = self.version_dir(version, tenant)
        views: dict[str, np.ndarray] = {}
        for name, (dtype_str, length, nbytes, crc) in manifest.items():
            path = vdir / f"{name}.npy"
            if not path.is_file():
                raise StoreError(f"version {version} column file missing: {path.name}")
            if verify:
                try:
                    actual = data_crc32(path)
                except (OSError, ValueError) as exc:
                    raise StoreError(
                        f"version {version} column {name} unreadable: {exc}"
                    ) from exc
                if actual != crc:
                    raise StoreError(
                        f"checksum mismatch in version {version} column {name}"
                    )
            try:
                if length == 0:
                    view = np.empty(0, dtype=np.dtype(dtype_str))
                else:
                    view = np.load(path, mmap_mode="r")
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"version {version} column {name} unreadable: {exc}"
                ) from exc
            if view.dtype.str != dtype_str or view.shape != (length,):
                raise StoreError(
                    f"version {version} column {name} does not match its manifest"
                    f" (file {view.dtype.str}{view.shape},"
                    f" manifest {dtype_str}({length},))"
                )
            view.flags.writeable = False
            views[name] = view
        return views

    def _rebuild_graphs(
        self,
        conn: sqlite3.Connection,
        tenant: str,
        version: int,
        graph_class: str,
        next_edge_id: int,
        aug_next_edge_id: int,
    ) -> tuple[PropertyGraph, PropertyGraph]:
        cls = GRAPH_CLASSES.get(graph_class)
        if cls is None:
            raise StoreError(f"version {version} uses unknown graph class {graph_class}")
        loader = cat.ValueLoader(conn)

        node_rows = conn.execute(
            "SELECT pos, id_ref, label_ref FROM nodes"
            " WHERE tenant = ? AND version = ? ORDER BY pos",
            (tenant, version),
        ).fetchall()
        loader.prefetch(r for row in node_rows for r in row[1:] if r is not None)
        graph = cls()
        ids_by_pos: list[Any] = []
        for _pos, id_ref, label_ref in node_rows:
            node = graph.add_node(loader.get(id_ref), loader.get(label_ref))
            ids_by_pos.append(node.id)
        prop_rows = conn.execute(
            "SELECT pos, name_ref, value_ref FROM node_props"
            " WHERE tenant = ? AND version = ? ORDER BY pos, ordinal",
            (tenant, version),
        ).fetchall()
        loader.prefetch(r for row in prop_rows for r in row[1:])
        for pos, name_ref, value_ref in prop_rows:
            graph.node(ids_by_pos[pos]).properties[loader.get(name_ref)] = loader.get(
                value_ref
            )

        edge_rows = conn.execute(
            "SELECT layer, pos, edge_id_ref, src_pos, dst_pos, label_ref FROM edges"
            " WHERE tenant = ? AND version = ? ORDER BY layer, pos",
            (tenant, version),
        ).fetchall()
        loader.prefetch(
            r
            for row in edge_rows
            for r in (row[2], row[5])
            if r is not None
        )
        eprop_rows = conn.execute(
            "SELECT layer, pos, name_ref, value_ref FROM edge_props"
            " WHERE tenant = ? AND version = ? ORDER BY layer, pos, ordinal",
            (tenant, version),
        ).fetchall()
        loader.prefetch(r for row in eprop_rows for r in row[2:])
        eprops: dict[tuple[int, int], list[tuple[str, Any]]] = {}
        for layer, pos, name_ref, value_ref in eprop_rows:
            eprops.setdefault((layer, pos), []).append(
                (loader.get(name_ref), loader.get(value_ref))
            )

        def add_layer(target: PropertyGraph, layer: int) -> None:
            for row_layer, pos, edge_id_ref, src_pos, dst_pos, label_ref in edge_rows:
                if row_layer != layer:
                    continue
                edge = target.add_edge(
                    ids_by_pos[src_pos],
                    ids_by_pos[dst_pos],
                    loader.get(label_ref),
                    edge_id=loader.get(edge_id_ref),
                )
                for name, value in eprops.get((layer, pos), ()):
                    edge.properties[name] = value

        add_layer(graph, 0)
        graph._next_edge_id = next_edge_id
        augmented = graph.copy()
        add_layer(augmented, 1)
        augmented._next_edge_id = aug_next_edge_id
        return graph, augmented

    # -- garbage collection ---------------------------------------------

    def gc(
        self,
        keep: int,
        tenant: str | None = None,
        kind: str | None = None,
    ) -> list[dict[str, Any]]:
        """Prune old published versions beyond the newest ``keep``.

        Versions are grouped into ``(tenant, kind)`` streams; within each
        stream the newest ``keep`` published versions survive and every
        older published version is deleted from the catalog and disk.
        Staging rows and the latest published version of a stream are
        never pruned (``keep`` must be at least 1).  Restrict with
        ``tenant`` and/or ``kind``; returns one dict per pruned version.
        """
        if keep < 1:
            raise StoreError(
                "gc keep must be >= 1 (the latest published version always stays)"
            )
        query = "SELECT tenant, version, kind FROM versions WHERE state = 'published'"
        params: list[Any] = []
        if tenant is not None:
            query += " AND tenant = ?"
            params.append(tenant)
        if kind is not None:
            query += " AND kind = ?"
            params.append(kind)
        query += " ORDER BY tenant, kind, version"
        doomed: list[tuple[str, int, str]] = []
        conn = self._connect()
        try:
            streams: dict[tuple[str, str], list[int]] = {}
            for row_tenant, row_version, row_kind in conn.execute(
                query, tuple(params)
            ):
                streams.setdefault((row_tenant, row_kind), []).append(row_version)
            for (row_tenant, row_kind), stream in streams.items():
                for row_version in stream[:-keep]:
                    doomed.append((row_tenant, row_version, row_kind))
            if doomed:
                conn.execute("BEGIN IMMEDIATE")
                for row_tenant, row_version, _row_kind in doomed:
                    for table in cat.VERSIONED_TABLES:
                        conn.execute(
                            f"DELETE FROM {table} WHERE tenant = ? AND version = ?",
                            (row_tenant, row_version),
                        )
                conn.commit()
        finally:
            conn.close()
        # Directory removal happens after the catalog commit: a crash in
        # between leaves orphan directories, which open() purges.
        pruned = []
        for row_tenant, row_version, row_kind in doomed:
            shutil.rmtree(self.version_dir(row_version, row_tenant), ignore_errors=True)
            pruned.append(
                {"tenant": row_tenant, "version": row_version, "kind": row_kind}
            )
        return pruned
