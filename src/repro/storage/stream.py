"""Out-of-core graph construction: stream node/edge chunks into a store.

:class:`StreamingGraphWriter` duck-types the :class:`CompanyGraph`
construction surface (``add_person`` / ``add_company`` /
``add_shareholding`` / ``add_node`` / ``add_edge``) but never holds the
graph: node rows and properties flush to the store catalog in chunks,
edge endpoints stream to temporary position-indexed npy columns, and
memory stays bounded by the chunk size plus a capped id-position cache —
so ``generate_company_graph_into(writer, spec)`` emits 10M+-node graphs
that at no point reside in RAM.

:meth:`StreamingGraphWriter.finalize` turns the staged stream into a
published ``kind='graph'`` version whose columns use the **same names,
dtypes, and construction order as the in-memory**
:class:`~repro.graph.columnar.GraphFrame` — a frame built from the same
insertion sequence produces byte-identical ``edge_src`` / ``edge_dst`` /
CSR / CSC buffers (the parity tests assert it):

1. intern codes are assigned by sorting node ids **in SQLite** (the
   UTF-8 BLOB order of the intern table equals Python ``str`` order,
   which for all-string ids equals ``intern_sort_key`` order — hence the
   string-id requirement);
2. the temporary position-based edge columns are remapped chunkwise to
   intern codes through an on-disk position→code table;
3. CSR/CSC adjacency is built in two chunked passes over memory-mapped
   columns — a counting pass (``np.add.at`` into an indptr memmap,
   chunked cumsum) and a stable scatter pass that reproduces
   ``GraphFrame._build_adjacency_index``'s insertion-order-per-row
   semantics exactly (stable in-chunk argsort + per-row write cursors).

:class:`OutOfCoreGraph` then answers point queries (successors,
predecessors, direct share, node lookup) against the published columns
via mmap slices and catalog lookups, without loading the graph.
"""

from __future__ import annotations

import shutil
import time
from typing import Any, Iterator

import numpy as np

from ..graph.company_graph import COMPANY, PERSON, SHAREHOLDING
from ..graph.property_graph import GraphError
from . import catalog as cat
from ..service.snapshot import DEFAULT_TENANT
from .npyio import NpyColumnWriter, data_crc32, fsync_dir, read_header
from .store import FrameStore, StoreError

#: Columns a streamed ``kind='graph'`` version publishes.
GRAPH_COLUMNS: dict[str, np.dtype] = {
    "edge_src": np.dtype(np.int64),
    "edge_dst": np.dtype(np.int64),
    "edge_w": np.dtype(np.float64),
    "edge_label": np.dtype(np.int64),
    "csr_indptr": np.dtype(np.int64),
    "csr_targets": np.dtype(np.int64),
    "csr_positions": np.dtype(np.int64),
    "csc_indptr": np.dtype(np.int64),
    "csc_sources": np.dtype(np.int64),
    "csc_positions": np.dtype(np.int64),
}


class StreamingGraphWriter:
    """Build one ``kind='graph'`` store version without holding the graph.

    The writer claims a staging version on construction; nothing is
    visible to readers until :meth:`finalize` flips it to published, and
    a crash before that leaves only a staging carcass that
    :meth:`FrameStore.open` purges.  Node ids must be strings (the
    intern order guarantee above depends on it).
    """

    def __init__(
        self,
        store: FrameStore,
        version: int | None = None,
        chunk_rows: int = 1 << 16,
        pos_cache_limit: int = 1 << 20,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.store = store
        self.tenant = tenant
        self.chunk_rows = chunk_rows
        self.pos_cache_limit = pos_cache_limit
        self._conn = store._connect()
        self._interner = cat.ValueInterner(self._conn)
        self._finalized = False
        self._node_count = 0
        self._edge_count = 0
        self._next_edge_id = 0
        self._pos_cache: dict[str, int] = {}
        self._pending_nodes: list[tuple] = []
        self._pending_node_props: list[tuple] = []
        self._pending_edges: list[tuple] = []
        self._pending_edge_props: list[tuple] = []
        self._edge_chunk: list[tuple[int, int, float, int]] = []  # src, dst, w, label

        self._conn.execute("BEGIN IMMEDIATE")
        if version is None:
            row = self._conn.execute(
                "SELECT MAX(version) FROM versions WHERE tenant = ?", (tenant,)
            ).fetchone()
            version = (row[0] or 0) + 1
        elif self._conn.execute(
            "SELECT 1 FROM versions WHERE tenant = ? AND version = ?",
            (tenant, version),
        ).fetchone():
            self._conn.rollback()
            raise StoreError(f"version {version} already persisted")
        self.version = version
        self._conn.execute(
            "INSERT INTO versions (tenant, version, state, kind, created_at,"
            " graph_class) VALUES (?, ?, 'staging', 'graph', ?, 'CompanyGraph')",
            (tenant, version, time.time()),
        )
        self._conn.commit()
        # one transaction stays open across the whole add phase: every
        # intern INSERT would otherwise autocommit (and fsync) on its
        # own; chunk flushes commit it and immediately reopen it
        self._conn.execute("BEGIN")
        self._vdir = store.version_dir(version, tenant)
        self._vdir.mkdir(parents=True, exist_ok=True)
        self._tmp_src = NpyColumnWriter(self._vdir / "_tmp_src_pos.npy", np.int64)
        self._tmp_dst = NpyColumnWriter(self._vdir / "_tmp_dst_pos.npy", np.int64)
        self._w_writer = NpyColumnWriter(self._vdir / "edge_w.npy", np.float64)
        self._label_writer = NpyColumnWriter(self._vdir / "edge_label.npy", np.int64)

    # -- CompanyGraph construction surface ------------------------------

    def add_person(self, person_id: str, **properties: Any) -> None:
        self.add_node(person_id, PERSON, **properties)

    def add_company(self, company_id: str, **properties: Any) -> None:
        self.add_node(company_id, COMPANY, **properties)

    def add_shareholding(
        self,
        owner: str,
        company: str,
        share: float,
        edge_id: Any = None,
        **properties: Any,
    ) -> None:
        if not 0 < share <= 1:
            raise GraphError(f"share amount must be in (0, 1], got {share}")
        self.add_edge(
            owner, company, SHAREHOLDING, edge_id=edge_id, w=share, **properties
        )

    def add_node(self, node_id: str, label: str | None = None, **properties: Any) -> None:
        if not isinstance(node_id, str):
            raise StoreError(
                f"streaming writer requires string node ids, got {type(node_id).__name__}"
            )
        if self._pos_of(node_id, missing_ok=True) is not None:
            raise GraphError(f"node {node_id!r} already exists")
        pos = self._node_count
        self._node_count += 1
        label_ref = None if label is None else self._interner.ref(label)
        self._pending_nodes.append(
            (self.tenant, self.version, pos, self._interner.ref(node_id), label_ref)
        )
        for ordinal, (name, value) in enumerate(properties.items()):
            self._pending_node_props.append(
                (
                    self.tenant,
                    self.version,
                    pos,
                    ordinal,
                    self._interner.ref(name),
                    self._interner.ref(value),
                )
            )
        self._cache_pos(node_id, pos)
        if len(self._pending_nodes) >= self.chunk_rows:
            self._flush_nodes()

    def add_edge(
        self,
        source: str,
        target: str,
        label: str | None = None,
        edge_id: Any = None,
        **properties: Any,
    ) -> None:
        src_pos = self._pos_of(source)
        dst_pos = self._pos_of(target)
        if edge_id is None:
            edge_id = f"e{self._next_edge_id}"
            self._next_edge_id += 1
        pos = self._edge_count
        self._edge_count += 1
        label_ref = None if label is None else self._interner.ref(label)
        self._pending_edges.append(
            (
                self.tenant,
                self.version,
                0,
                pos,
                self._interner.ref(edge_id),
                src_pos,
                dst_pos,
                label_ref,
            )
        )
        for ordinal, (name, value) in enumerate(properties.items()):
            self._pending_edge_props.append(
                (
                    self.tenant,
                    self.version,
                    0,
                    pos,
                    ordinal,
                    self._interner.ref(name),
                    self._interner.ref(value),
                )
            )
        self._edge_chunk.append(
            (
                src_pos,
                dst_pos,
                float(properties.get("w", np.nan)),
                -1 if label_ref is None else label_ref,
            )
        )
        if len(self._edge_chunk) >= self.chunk_rows:
            self._flush_edges()

    # -- internals ------------------------------------------------------

    def _cache_pos(self, node_id: str, pos: int) -> None:
        if len(self._pos_cache) >= self.pos_cache_limit:
            # flush first so evicted entries remain resolvable via SQL
            self._flush_nodes()
            self._pos_cache.clear()
        self._pos_cache[node_id] = pos

    def _pos_of(self, node_id: str, missing_ok: bool = False) -> int | None:
        pos = self._pos_cache.get(node_id)
        if pos is not None:
            return pos
        row = self._conn.execute(
            "SELECT n.pos FROM nodes n JOIN vals v ON v.id = n.id_ref"
            " WHERE n.tenant = ? AND n.version = ? AND v.kind = 's' AND v.value = ?",
            (self.tenant, self.version, node_id.encode("utf-8")),
        ).fetchone()
        if row is None:
            if missing_ok:
                return None
            raise GraphError(f"node {node_id!r} does not exist")
        self._cache_pos(node_id, row[0])
        return row[0]

    def _flush_nodes(self) -> None:
        if not self._pending_nodes and not self._pending_node_props:
            return
        self._conn.executemany(
            "INSERT INTO nodes (tenant, version, pos, id_ref, label_ref)"
            " VALUES (?, ?, ?, ?, ?)",
            self._pending_nodes,
        )
        self._conn.executemany(
            "INSERT INTO node_props (tenant, version, pos, ordinal, name_ref,"
            " value_ref) VALUES (?, ?, ?, ?, ?, ?)",
            self._pending_node_props,
        )
        self._conn.commit()
        self._conn.execute("BEGIN")
        self._pending_nodes.clear()
        self._pending_node_props.clear()

    def _flush_edges(self) -> None:
        if self._pending_edges:
            self._conn.executemany(
                "INSERT INTO edges (tenant, version, layer, pos, edge_id_ref,"
                " src_pos, dst_pos, label_ref) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                self._pending_edges,
            )
            self._conn.executemany(
                "INSERT INTO edge_props (tenant, version, layer, pos, ordinal,"
                " name_ref, value_ref) VALUES (?, ?, ?, ?, ?, ?, ?)",
                self._pending_edge_props,
            )
            self._conn.commit()
            self._conn.execute("BEGIN")
            self._pending_edges.clear()
            self._pending_edge_props.clear()
        if self._edge_chunk:
            chunk = np.asarray(self._edge_chunk, dtype=np.float64)
            self._tmp_src.append(chunk[:, 0].astype(np.int64))
            self._tmp_dst.append(chunk[:, 1].astype(np.int64))
            self._w_writer.append(chunk[:, 2])
            self._label_writer.append(chunk[:, 3].astype(np.int64))
            self._edge_chunk.clear()

    # -- finalize -------------------------------------------------------

    def finalize(self) -> int:
        """Intern, remap, index, and publish; returns the version."""
        if self._finalized:
            raise StoreError("writer already finalized")
        self._finalized = True
        self._flush_nodes()
        self._flush_edges()
        self._conn.commit()  # close the standing add-phase transaction
        for writer in (self._tmp_src, self._tmp_dst, self._w_writer, self._label_writer):
            writer.close()

        n, m = self._node_count, self._edge_count
        conn, vdir, version = self._conn, self._vdir, self.version
        chunk = self.chunk_rows

        # 1. intern codes: sorted id order, assigned via a disk-backed
        #    SQLite sort; code_of_pos maps insertion position -> code.
        #    Two passes — the scan must finish before the table is
        #    updated (same-connection write-under-read is undefined).
        code_of_pos = np.lib.format.open_memmap(
            vdir / "_tmp_code_of_pos.npy", mode="w+", dtype=np.int64, shape=(n,)
        )
        cursor = conn.execute(
            "SELECT n.pos FROM nodes n JOIN vals v ON v.id = n.id_ref"
            " WHERE n.tenant = ? AND n.version = ? ORDER BY v.value",
            (self.tenant, version),
        )
        code = 0
        while True:
            rows = cursor.fetchmany(chunk)
            if not rows:
                break
            for (pos,) in rows:
                code_of_pos[pos] = code
                code += 1
        code_of_pos.flush()
        for start in range(0, n, chunk):
            block = np.asarray(code_of_pos[start : start + chunk]).tolist()
            conn.execute("BEGIN")
            conn.executemany(
                "UPDATE nodes SET intern = ?"
                " WHERE tenant = ? AND version = ? AND pos = ?",
                ((c, self.tenant, version, start + i) for i, c in enumerate(block)),
            )
            conn.commit()

        # 2. remap the temporary position-based edge endpoints to codes.
        for tmp_name, out_name in (
            ("_tmp_src_pos.npy", "edge_src.npy"),
            ("_tmp_dst_pos.npy", "edge_dst.npy"),
        ):
            tmp = np.load(vdir / tmp_name, mmap_mode="r")
            writer = NpyColumnWriter(vdir / out_name, np.int64)
            for start in range(0, m, chunk):
                writer.append(code_of_pos[np.asarray(tmp[start : start + chunk])])
            writer.close()
            del tmp

        # 3. CSR over edge_src, CSC over edge_dst — chunked two-pass.
        edge_src = np.load(vdir / "edge_src.npy", mmap_mode="r")
        edge_dst = np.load(vdir / "edge_dst.npy", mmap_mode="r")
        self._build_adjacency(edge_src, edge_dst, n, "csr_indptr", "csr_targets", "csr_positions")
        self._build_adjacency(edge_dst, edge_src, n, "csc_indptr", "csc_sources", "csc_positions")
        del edge_src, edge_dst

        for tmp in vdir.glob("_tmp_*.npy"):
            tmp.unlink()
        fsync_dir(vdir)
        fsync_dir(vdir.parent)
        fsync_dir(self.store.versions_root)

        # 4. manifest + publish flip.
        manifest = []
        for name, dtype in GRAPH_COLUMNS.items():
            path = vdir / f"{name}.npy"
            file_dtype, length = read_header(path)
            if file_dtype != dtype:
                raise StoreError(f"column {name} built with dtype {file_dtype}")
            manifest.append(
                (
                    self.tenant,
                    version,
                    name,
                    file_dtype.str,
                    length,
                    length * file_dtype.itemsize,
                    data_crc32(path),
                )
            )
        conn.execute("BEGIN IMMEDIATE")
        conn.executemany(
            "INSERT INTO columns (tenant, version, name, dtype, length, nbytes,"
            " crc32) VALUES (?, ?, ?, ?, ?, ?, ?)",
            manifest,
        )
        conn.execute(
            "UPDATE versions SET state = 'published', published_at = ?, nodes = ?,"
            " edges = ?, next_edge_id = ? WHERE tenant = ? AND version = ?",
            (time.time(), n, m, self._next_edge_id, self.tenant, version),
        )
        conn.commit()
        conn.close()
        return version

    def _build_adjacency(
        self, major: np.ndarray, minor: np.ndarray, n: int,
        indptr_name: str, minor_name: str, pos_name: str,
    ) -> None:
        """Chunked equivalent of ``GraphFrame._build_adjacency_index``.

        Pass 1 counts into an ``(n+1,)`` indptr memmap; pass 2 scatters
        each chunk through per-row write cursors, using a stable in-chunk
        argsort so within-row order stays edge-insertion order — chunk k
        rows always precede chunk k+1 rows, matching the stable argsort
        over the full array.
        """
        m = major.shape[0]
        chunk = self.chunk_rows
        vdir = self._vdir
        indptr = np.lib.format.open_memmap(
            vdir / f"{indptr_name}.npy", mode="w+", dtype=np.int64, shape=(n + 1,)
        )
        indptr[:] = 0
        for start in range(0, m, chunk):
            np.add.at(indptr, np.asarray(major[start : start + chunk]) + 1, 1)
        running = 0
        for start in range(0, n + 1, chunk):
            block = np.cumsum(np.asarray(indptr[start : start + chunk])) + running
            indptr[start : start + chunk] = block
            running = int(block[-1]) if block.size else running
        indptr.flush()

        write_cursor = np.lib.format.open_memmap(
            vdir / "_tmp_cursor.npy", mode="w+", dtype=np.int64, shape=(n,)
        )
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            write_cursor[start:stop] = indptr[start:stop]
        out_minor = np.lib.format.open_memmap(
            vdir / f"{minor_name}.npy", mode="w+", dtype=np.int64, shape=(m,)
        )
        out_pos = np.lib.format.open_memmap(
            vdir / f"{pos_name}.npy", mode="w+", dtype=np.int64, shape=(m,)
        )
        for start in range(0, m, chunk):
            maj = np.asarray(major[start : start + chunk])
            mino = np.asarray(minor[start : start + chunk])
            order = np.argsort(maj, kind="stable")
            smaj = maj[order]
            # rank of each entry within its run of equal rows
            starts = np.flatnonzero(np.r_[True, smaj[1:] != smaj[:-1]])
            run_lengths = np.diff(np.r_[starts, smaj.shape[0]])
            ranks = np.arange(smaj.shape[0]) - np.repeat(starts, run_lengths)
            dest = write_cursor[smaj] + ranks
            out_minor[dest] = mino[order]
            out_pos[dest] = start + order
            uniq = smaj[starts]
            write_cursor[uniq] += run_lengths
        out_minor.flush()
        out_pos.flush()
        del indptr, write_cursor, out_minor, out_pos
        (vdir / "_tmp_cursor.npy").unlink()

    def abort(self) -> None:
        """Drop the staging claim (used on generator failure)."""
        if self._finalized:
            return
        self._finalized = True
        self._conn.rollback()  # discard the open add-phase transaction
        for writer in (self._tmp_src, self._tmp_dst, self._w_writer, self._label_writer):
            writer.abort()
        for table in cat.VERSIONED_TABLES:
            self._conn.execute(
                f"DELETE FROM {table} WHERE tenant = ? AND version = ?",
                (self.tenant, self.version),
            )
        self._conn.commit()
        self._conn.close()
        shutil.rmtree(self._vdir, ignore_errors=True)


class OutOfCoreGraph:
    """Point queries over a published ``kind='graph'`` version.

    Columns are memory-mapped read-only; node ids and properties resolve
    through the catalog.  Nothing scales with graph size except the
    kernel page cache.
    """

    def __init__(
        self,
        store: FrameStore,
        version: int | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.store = store
        self.tenant = tenant
        if version is None:
            version = store.latest_version("graph", tenant=tenant)
            if version is None:
                raise StoreError("store has no published graph versions")
        self.version = version
        self._conn = store._connect()
        row = self._conn.execute(
            "SELECT state, kind, nodes, edges FROM versions"
            " WHERE tenant = ? AND version = ?",
            (tenant, version),
        ).fetchone()
        if row is None:
            raise StoreError(f"version {version} not found in store")
        state, kind, self.node_count, self.edge_count = row
        if state != "published" or kind != "graph":
            raise StoreError(
                f"version {version} is not a published graph (state={state}, kind={kind})"
            )
        self._loader = cat.ValueLoader(self._conn)
        vdir = store.version_dir(version, tenant)
        self._cols: dict[str, np.ndarray] = {}
        for name in GRAPH_COLUMNS:
            path = vdir / f"{name}.npy"
            if not path.is_file():
                raise StoreError(f"version {version} column file missing: {path.name}")
            arr = np.load(path, mmap_mode="r")
            arr.flags.writeable = False
            self._cols[name] = arr

    def close(self) -> None:
        self._conn.close()
        self._cols.clear()

    # -- id <-> code ----------------------------------------------------

    def code_of(self, node_id: str) -> int:
        row = self._conn.execute(
            "SELECT n.intern FROM nodes n JOIN vals v ON v.id = n.id_ref"
            " WHERE n.tenant = ? AND n.version = ? AND v.kind = 's' AND v.value = ?",
            (self.tenant, self.version, node_id.encode("utf-8")),
        ).fetchone()
        if row is None:
            raise GraphError(f"node {node_id!r} does not exist")
        return row[0]

    def id_of(self, code: int) -> str:
        row = self._conn.execute(
            "SELECT v.value FROM nodes n JOIN vals v ON v.id = n.id_ref"
            " WHERE n.tenant = ? AND n.version = ? AND n.intern = ?",
            (self.tenant, self.version, code),
        ).fetchone()
        if row is None:
            raise GraphError(f"no node with intern code {code}")
        return row[0].decode("utf-8")

    def node(self, node_id: str) -> dict[str, Any]:
        """Label and properties of one node."""
        row = self._conn.execute(
            "SELECT n.pos, n.label_ref FROM nodes n JOIN vals v ON v.id = n.id_ref"
            " WHERE n.tenant = ? AND n.version = ? AND v.kind = 's' AND v.value = ?",
            (self.tenant, self.version, node_id.encode("utf-8")),
        ).fetchone()
        if row is None:
            raise GraphError(f"node {node_id!r} does not exist")
        pos, label_ref = row
        props = {}
        for name_ref, value_ref in self._conn.execute(
            "SELECT name_ref, value_ref FROM node_props"
            " WHERE tenant = ? AND version = ? AND pos = ? ORDER BY ordinal",
            (self.tenant, self.version, pos),
        ):
            props[self._loader.get(name_ref)] = self._loader.get(value_ref)
        return {"id": node_id, "label": self._loader.get(label_ref), "properties": props}

    # -- traversal ------------------------------------------------------

    def _edges_at(
        self, code: int, indptr_name: str, minor_name: str, pos_name: str
    ) -> Iterator[tuple[str, str | None, float | None]]:
        indptr = self._cols[indptr_name]
        lo, hi = int(indptr[code]), int(indptr[code + 1])
        minors = self._cols[minor_name][lo:hi]
        positions = self._cols[pos_name][lo:hi]
        labels = self._cols["edge_label"]
        weights = self._cols["edge_w"]
        for other, pos in zip(minors.tolist(), positions.tolist()):
            label_ref = int(labels[pos])
            label = None if label_ref < 0 else self._loader.get(label_ref)
            weight = float(weights[pos])  # NaN marks "no w property"
            yield self.id_of(other), label, None if weight != weight else weight

    def successors(self, node_id: str) -> list[tuple[str, str | None, float | None]]:
        """``(target_id, label, w)`` per out-edge, insertion order."""
        return list(
            self._edges_at(self.code_of(node_id), "csr_indptr", "csr_targets", "csr_positions")
        )

    def predecessors(self, node_id: str) -> list[tuple[str, str | None, float | None]]:
        """``(source_id, label, w)`` per in-edge, insertion order."""
        return list(
            self._edges_at(self.code_of(node_id), "csc_indptr", "csc_sources", "csc_positions")
        )

    def share(self, owner: str, company: str) -> float:
        """Direct shareholding fraction, parallel edges summed."""
        total = 0.0
        for target, label, w in self.successors(owner):
            if target == company and label == SHAREHOLDING:
                total += w
        return total


def generate_company_graph_stream(spec, store: FrameStore, **writer_kwargs):
    """Stream a synthetic company graph straight into ``store``.

    RNG-identical to ``generate_company_graph`` with the same spec (both
    call ``generate_company_graph_into``); returns
    ``(version, ground_truth)``.
    """
    from ..datagen.company_generator import generate_company_graph_into

    writer = StreamingGraphWriter(store, **writer_kwargs)
    try:
        truth = generate_company_graph_into(writer, spec)
    except BaseException:
        writer.abort()
        raise
    return writer.finalize(), truth
