"""Durable columnar storage for graphs and snapshots.

The subsystem splits dual-layer, mirroring the in-memory design: numeric
columns live as per-version ``.npy`` files attached read-only via mmap
(:mod:`~repro.storage.npyio`, :mod:`~repro.storage.store`), while the
object side — node/edge properties, value interning, version metadata
and the atomic-publish manifest — lives in a SQLite catalog
(:mod:`~repro.storage.catalog`).  :mod:`~repro.storage.layout` is the
buffer-layout contract shared with the shared-memory codec
(``repro.service.shm``) so the two serialisation paths cannot drift, and
:mod:`~repro.storage.stream` adds out-of-core graph construction plus
point queries over stores bigger than RAM.

``store``/``stream`` symbols are re-exported lazily: they import
``repro.service`` (which itself imports :mod:`~repro.storage.layout`),
and the deferral keeps either import order acyclic.
"""

from . import catalog, layout, npyio  # noqa: F401
from .layout import ROW_DTYPES, decode_rows, encode_rows  # noqa: F401

_LAZY = {
    "FrameStore": "store",
    "StoreError": "store",
    "StoredSnapshot": "store",
    "InjectedCrash": "store",
    "GRAPH_CLASSES": "store",
    "SNAPSHOT_COLUMNS": "store",
    "StreamingGraphWriter": "stream",
    "OutOfCoreGraph": "stream",
    "GRAPH_COLUMNS": "stream",
    "generate_company_graph_stream": "stream",
}

__all__ = [
    "ROW_DTYPES",
    "decode_rows",
    "encode_rows",
    "catalog",
    "layout",
    "npyio",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
