"""The one buffer layout shared by every snapshot serialisation path.

Two codecs lay a :class:`~repro.service.snapshot.Snapshot` into flat
buffers: the shared-memory segment codec (:mod:`repro.service.shm`,
process fan-out) and the durable frame store (:mod:`repro.storage.store`,
disk persistence).  Both must agree — bit for bit — on how the snapshot's
precomputed row state becomes numeric columns, or a snapshot persisted by
one path would decode differently through the other.  This module is that
agreement: the row-state dtype table and the encode/decode pair both
codecs import, next to the frame buffers described by
:data:`~repro.graph.columnar.EXPORT_DTYPES`.

Row-state layout (all arrays parallel within their group):

* ``control_x`` / ``control_y`` — control pairs as intern codes, sorted
  by ``(str(x), str(y))``;
* ``close_x`` / ``close_y`` — close-link pairs, same ordering;
* ``family_x`` / ``family_y`` / ``family_class`` — family links with the
  link class interned against a sorted side table (returned by
  :func:`encode_rows`, carried in the codec's metadata);
* ``ubo_company`` / ``ubo_person`` / ``ubo_share`` / ``ubo_controls`` —
  the beneficial-owner index flattened company-major in intern-code
  order, preserving each company's owner ranking.
"""

from __future__ import annotations

import numpy as np

from ..graph.columnar import GraphFrame
from ..graph.property_graph import NodeId
from ..ownership.ubo import BeneficialOwner

#: dtypes of the row-state arrays (the frame buffers use
#: :data:`~repro.graph.columnar.EXPORT_DTYPES`)
ROW_DTYPES: dict[str, np.dtype] = {
    "control_x": np.dtype(np.int64),
    "control_y": np.dtype(np.int64),
    "close_x": np.dtype(np.int64),
    "close_y": np.dtype(np.int64),
    "family_x": np.dtype(np.int64),
    "family_y": np.dtype(np.int64),
    "family_class": np.dtype(np.int64),
    "ubo_company": np.dtype(np.int64),
    "ubo_person": np.dtype(np.int64),
    "ubo_share": np.dtype(np.float64),
    "ubo_controls": np.dtype(np.uint8),
}


def codes(frame: GraphFrame, ids: list[NodeId]) -> np.ndarray:
    """Intern codes of ``ids`` under ``frame``'s interning, as int64."""
    index = frame.index
    return np.fromiter((index[i] for i in ids), dtype=np.int64, count=len(ids))


def encode_rows(
    snapshot, frame: GraphFrame
) -> tuple[dict[str, np.ndarray], list[str]]:
    """The snapshot's row state as code arrays.

    Returns ``(buffers, family_classes)``: one array per
    :data:`ROW_DTYPES` key, plus the sorted family-class side table the
    ``family_class`` column indexes into (the codec stores it in its
    object metadata and hands it back to :func:`decode_rows`).
    """
    buffers: dict[str, np.ndarray] = {}
    control = sorted(snapshot.control, key=lambda p: (str(p[0]), str(p[1])))
    buffers["control_x"] = codes(frame, [x for x, _ in control])
    buffers["control_y"] = codes(frame, [y for _, y in control])
    close = sorted(snapshot.close_links, key=lambda p: (str(p[0]), str(p[1])))
    buffers["close_x"] = codes(frame, [x for x, _ in close])
    buffers["close_y"] = codes(frame, [y for _, y in close])
    family = sorted(snapshot.family_links, key=lambda l: (str(l[0]), str(l[1]), l[2]))
    classes = sorted({cls for _, _, cls in family})
    class_code = {cls: i for i, cls in enumerate(classes)}
    buffers["family_x"] = codes(frame, [x for x, _, _ in family])
    buffers["family_y"] = codes(frame, [y for _, y, _ in family])
    buffers["family_class"] = np.fromiter(
        (class_code[cls] for _, _, cls in family), dtype=np.int64, count=len(family)
    )
    flat: list[tuple[int, int, float, int]] = []
    index = frame.index
    for company in sorted(snapshot.ubo, key=lambda c: index[c]):
        for owner in snapshot.ubo[company]:
            flat.append(
                (
                    index[company],
                    index[owner.person],
                    owner.integrated_share,
                    1 if owner.controls else 0,
                )
            )
    buffers["ubo_company"] = np.asarray([f[0] for f in flat], dtype=np.int64)
    buffers["ubo_person"] = np.asarray([f[1] for f in flat], dtype=np.int64)
    buffers["ubo_share"] = np.asarray([f[2] for f in flat], dtype=np.float64)
    buffers["ubo_controls"] = np.asarray([f[3] for f in flat], dtype=np.uint8)
    return buffers, classes


def decode_rows(
    buffers: dict[str, np.ndarray],
    nodes: list[NodeId],
    family_classes: list[str],
) -> tuple[
    set[tuple[NodeId, NodeId]],
    set[tuple[NodeId, NodeId]],
    set[tuple[NodeId, NodeId, str]],
    dict[NodeId, list[BeneficialOwner]],
]:
    """Inverse of :func:`encode_rows`.

    ``nodes`` is the intern-ordered node-id table of the attached frame;
    ``buffers`` may hold any array-likes (shared-memory views, disk
    memmaps, plain arrays).  Returns
    ``(control, close_links, family_links, ubo)`` in the exact shapes
    :class:`~repro.service.snapshot.Snapshot` expects.
    """
    control = {
        (nodes[x], nodes[y])
        for x, y in zip(buffers["control_x"].tolist(), buffers["control_y"].tolist())
    }
    close = {
        (nodes[x], nodes[y])
        for x, y in zip(buffers["close_x"].tolist(), buffers["close_y"].tolist())
    }
    family = {
        (nodes[x], nodes[y], family_classes[c])
        for x, y, c in zip(
            buffers["family_x"].tolist(),
            buffers["family_y"].tolist(),
            buffers["family_class"].tolist(),
        )
    }
    ubo: dict[NodeId, list[BeneficialOwner]] = {}
    for company_code, person_code, share, controls in zip(
        buffers["ubo_company"].tolist(),
        buffers["ubo_person"].tolist(),
        buffers["ubo_share"].tolist(),
        buffers["ubo_controls"].tolist(),
    ):
        company = nodes[company_code]
        ubo.setdefault(company, []).append(
            BeneficialOwner(nodes[person_code], company, share, bool(controls))
        )
    return control, close, family, ubo
