"""Plain ``.npy`` column files with append, checksum, and fsync support.

The durable store keeps every numeric column as one standard npy-1.0
file — readable by any numpy (``np.load``), mmap-attachable with
``mmap_mode="r"``, and dead simple to inspect.  What numpy's own writer
lacks is a *streaming* path: :class:`NpyColumnWriter` reserves a fixed
128-byte header, appends raw chunks while accumulating a CRC-32, and
patches the true length into the header on close, so out-of-core
producers (the streaming graph writer) can emit columns whose final
length they do not know up front.

Checksums always cover the **data region only** (everything after the
header), never the header itself: the attach path verifies a memory-map
of the data (`zlib.crc32(view)`), and the persist path checksums the
array it just wrote — both see the same bytes regardless of how the
header was produced.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

_MAGIC = b"\x93NUMPY\x01\x00"
#: Total header size (magic + length word + padded dict); data starts here.
HEADER_SIZE = 128


def _header_bytes(dtype: np.dtype, length: int) -> bytes:
    """A fixed-size npy-1.0 header for a 1-D C-order array."""
    descr = dtype.str
    dict_str = f"{{'descr': '{descr}', 'fortran_order': False, 'shape': ({length},), }}"
    payload = dict_str.encode("latin1")
    space = HEADER_SIZE - len(_MAGIC) - 2  # 2 bytes of little-endian dict length
    if len(payload) + 1 > space:
        raise ValueError(f"npy header overflow for dtype={descr} length={length}")
    payload = payload + b" " * (space - len(payload) - 1) + b"\n"
    return _MAGIC + len(payload).to_bytes(2, "little") + payload


class NpyColumnWriter:
    """Append-only writer for one npy column of a fixed dtype.

    The header is written up front with a zero length and rewritten with
    the final element count on :meth:`close`; until then the file is a
    valid (empty) npy followed by untracked bytes, so a crash mid-append
    never yields a file that silently decodes to partial data.
    """

    def __init__(self, path: str | Path, dtype: np.dtype | str) -> None:
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.length = 0
        self.crc32 = 0
        self._fh = open(self.path, "wb")
        self._fh.write(_header_bytes(self.dtype, 0))

    def append(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=self.dtype)
        data = array.tobytes()
        self._fh.write(data)
        self.crc32 = zlib.crc32(data, self.crc32)
        self.length += array.shape[0]

    @property
    def nbytes(self) -> int:
        return self.length * self.dtype.itemsize

    def close(self, sync: bool = True) -> None:
        self._fh.seek(0)
        self._fh.write(_header_bytes(self.dtype, self.length))
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())
        self._fh.close()

    def abort(self) -> None:
        """Close the handle without finalising (leaves a zero-length npy)."""
        self._fh.close()


def write_column(path: str | Path, array: np.ndarray) -> int:
    """Write ``array`` as an npy column file; returns the data CRC-32."""
    writer = NpyColumnWriter(path, array.dtype)
    try:
        writer.append(array)
    except BaseException:
        writer.abort()
        raise
    writer.close()
    return writer.crc32


def read_header(path: str | Path) -> tuple[np.dtype, int]:
    """``(dtype, length)`` of a 1-D npy column, without touching the data."""
    with open(path, "rb") as fh:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            raise ValueError(f"unsupported npy version {version} in {path}")
    if len(shape) != 1 or fortran:
        raise ValueError(f"not a 1-D C-order column: {path} (shape={shape})")
    return dtype, shape[0]


def data_crc32(path: str | Path, chunk_bytes: int = 1 << 22) -> int:
    """CRC-32 of the data region of an npy file (header skipped)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"not an npy-1.0 file: {path}")
        hlen = int.from_bytes(fh.read(2), "little")
        fh.seek(len(_MAGIC) + 2 + hlen)
        crc = 0
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so freshly created entries survive a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
