"""The SQLite catalog behind the durable frame store.

One ``catalog.db`` per store holds everything that is not a numeric
column: version metadata (state machine, lineage, checksum manifest) and
the full node/edge property model, value-interned so a property value is
stored once no matter how many rows carry it.

Schema overview (all tables keyed by ``(tenant, version)`` where
versioned — format 2 added the tenant dimension so one store root holds
per-tenant version streams):

``store_meta``
    key/value pairs for the store itself — format version, creation time.
``versions``
    one row per persisted version of one tenant.  ``state`` is the
    publish state machine: rows are born ``staging``, flip to
    ``published`` in a single ``UPDATE`` (the atomic-publish instant),
    and can be demoted to ``corrupt`` by the self-heal path when an
    attach fails verification.  ``kind`` distinguishes full service
    snapshots from bare streamed graphs.  Version numbers are
    per-tenant: two tenants may both hold a version 3.
``columns``
    the per-version manifest: one row per npy column file with dtype,
    length, byte size, and data CRC-32.  Attach refuses any column whose
    on-disk bytes disagree with this manifest.
``vals``
    the value-intern table.  Every node id, label, property name, and
    property value is one row, referenced by integer id from the graph
    tables.  ``kind`` is a one-byte type tag (see :func:`encode_value`);
    ``value`` is the encoded BLOB.  For strings the BLOB is UTF-8, whose
    bytewise order equals Python ``str`` order — the streaming writer's
    disk-backed sort relies on that.
``nodes`` / ``node_props`` / ``edges`` / ``edge_props``
    the property-graph model in insertion order (``pos``), with
    ``intern`` carrying the frame's intern code per node and ``layer``
    separating base-graph edges (0) from snapshot-derived augmented
    edges (1).
"""

from __future__ import annotations

import json
import pickle
import sqlite3
from typing import Any, Iterable

#: Bump on incompatible schema changes; open rejects mismatches (after
#: attempting the supported in-place migrations, currently 1 -> 2).
CATALOG_FORMAT = 2

SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS versions (
    tenant        TEXT NOT NULL DEFAULT 'default',
    version       INTEGER NOT NULL,
    state         TEXT NOT NULL CHECK (state IN ('staging', 'published', 'corrupt')),
    kind          TEXT NOT NULL CHECK (kind IN ('snapshot', 'graph')),
    parent        INTEGER,
    generation    INTEGER,
    created_at    REAL NOT NULL,
    published_at  REAL,
    built_s       REAL,
    nodes         INTEGER,
    edges         INTEGER,
    graph_class   TEXT,
    next_edge_id  INTEGER,
    aug_next_edge_id INTEGER,
    meta          BLOB,
    PRIMARY KEY (tenant, version)
);
CREATE TABLE IF NOT EXISTS columns (
    tenant  TEXT NOT NULL DEFAULT 'default',
    version INTEGER NOT NULL,
    name    TEXT NOT NULL,
    dtype   TEXT NOT NULL,
    length  INTEGER NOT NULL,
    nbytes  INTEGER NOT NULL,
    crc32   INTEGER NOT NULL,
    PRIMARY KEY (tenant, version, name)
);
CREATE TABLE IF NOT EXISTS vals (
    id    INTEGER PRIMARY KEY,
    kind  TEXT NOT NULL,
    value BLOB NOT NULL,
    UNIQUE (kind, value)
);
CREATE TABLE IF NOT EXISTS nodes (
    tenant    TEXT NOT NULL DEFAULT 'default',
    version   INTEGER NOT NULL,
    pos       INTEGER NOT NULL,
    id_ref    INTEGER NOT NULL,
    label_ref INTEGER,
    intern    INTEGER,
    PRIMARY KEY (tenant, version, pos)
);
CREATE INDEX IF NOT EXISTS nodes_by_id ON nodes (tenant, version, id_ref);
CREATE INDEX IF NOT EXISTS nodes_by_intern ON nodes (tenant, version, intern);
CREATE TABLE IF NOT EXISTS node_props (
    tenant    TEXT NOT NULL DEFAULT 'default',
    version   INTEGER NOT NULL,
    pos       INTEGER NOT NULL,
    ordinal   INTEGER NOT NULL,
    name_ref  INTEGER NOT NULL,
    value_ref INTEGER NOT NULL,
    PRIMARY KEY (tenant, version, pos, ordinal)
);
CREATE TABLE IF NOT EXISTS edges (
    tenant      TEXT NOT NULL DEFAULT 'default',
    version     INTEGER NOT NULL,
    layer       INTEGER NOT NULL,
    pos         INTEGER NOT NULL,
    edge_id_ref INTEGER NOT NULL,
    src_pos     INTEGER NOT NULL,
    dst_pos     INTEGER NOT NULL,
    label_ref   INTEGER,
    PRIMARY KEY (tenant, version, layer, pos)
);
CREATE TABLE IF NOT EXISTS edge_props (
    tenant    TEXT NOT NULL DEFAULT 'default',
    version   INTEGER NOT NULL,
    layer     INTEGER NOT NULL,
    pos       INTEGER NOT NULL,
    ordinal   INTEGER NOT NULL,
    name_ref  INTEGER NOT NULL,
    value_ref INTEGER NOT NULL,
    PRIMARY KEY (tenant, version, layer, pos, ordinal)
);
"""

#: Plain (non-key) columns of each versioned table, used verbatim by the
#: v1 -> v2 migration's column-list copies.
_V1_COLUMNS = {
    "versions": (
        "version, state, kind, parent, generation, created_at, published_at,"
        " built_s, nodes, edges, graph_class, next_edge_id, aug_next_edge_id, meta"
    ),
    "columns": "version, name, dtype, length, nbytes, crc32",
    "nodes": "version, pos, id_ref, label_ref, intern",
    "node_props": "version, pos, ordinal, name_ref, value_ref",
    "edges": "version, layer, pos, edge_id_ref, src_pos, dst_pos, label_ref",
    "edge_props": "version, layer, pos, ordinal, name_ref, value_ref",
}

#: Tables carrying per-version rows, in a purge-safe order.
VERSIONED_TABLES = (
    "edge_props",
    "edges",
    "node_props",
    "nodes",
    "columns",
    "versions",
)


def connect(path: str) -> sqlite3.Connection:
    # isolation_level=None puts the driver in autocommit so transaction
    # boundaries are exactly the explicit BEGIN/COMMIT the store issues —
    # the publish-flip atomicity depends on owning those boundaries.
    conn = sqlite3.connect(path, isolation_level=None)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=FULL")
    conn.execute("PRAGMA foreign_keys=ON")
    return conn


def init_schema(conn: sqlite3.Connection) -> None:
    conn.executescript(SCHEMA)
    conn.execute(
        "INSERT OR IGNORE INTO store_meta (key, value) VALUES ('format', ?)",
        (str(CATALOG_FORMAT),),
    )
    conn.commit()


def check_format(conn: sqlite3.Connection) -> None:
    if catalog_format(conn) != CATALOG_FORMAT:
        row = conn.execute(
            "SELECT value FROM store_meta WHERE key = 'format'"
        ).fetchone()
        raise ValueError(
            f"catalog format {row[0]} unsupported (this build reads {CATALOG_FORMAT})"
        )


def catalog_format(conn: sqlite3.Connection) -> int:
    row = conn.execute(
        "SELECT value FROM store_meta WHERE key = 'format'"
    ).fetchone()
    if row is None:
        raise ValueError("catalog carries no format marker")
    return int(row[0])


def migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """Rewrite a format-1 catalog in place, adding the tenant dimension.

    Every versioned table is renamed aside, recreated with the
    tenant-leading primary key, and refilled with ``tenant='default'`` —
    a v1 store holds exactly one version stream, which becomes the
    default tenant's.  Runs as one transaction: a crash mid-migration
    rolls back to an intact v1 catalog.
    """
    conn.execute("BEGIN IMMEDIATE")
    try:
        # Index names are database-global; drop before recreating.
        conn.execute("DROP INDEX IF EXISTS nodes_by_id")
        conn.execute("DROP INDEX IF EXISTS nodes_by_intern")
        for table in _V1_COLUMNS:
            conn.execute(f"ALTER TABLE {table} RENAME TO {table}_v1")
        # executescript would auto-commit; run each statement ourselves.
        # The schema holds no embedded semicolons, so a plain split works.
        for statement in SCHEMA.split(";"):
            if statement.strip():
                conn.execute(statement)
        for table, cols in _V1_COLUMNS.items():
            conn.execute(
                f"INSERT INTO {table} (tenant, {cols})"
                f" SELECT 'default', {cols} FROM {table}_v1"
            )
            conn.execute(f"DROP TABLE {table}_v1")
        conn.execute("UPDATE store_meta SET value = '2' WHERE key = 'format'")
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise


# -- value codec ------------------------------------------------------
#
# One-byte kind tag + BLOB, chosen so the common cases (strings, ints,
# floats) are human-readable in the sqlite shell and strings sort
# bytewise in Python str order.  bool is checked before int (bool is an
# int subclass); json containers must survive an exact round-trip or
# they fall back to pickle (tuples, non-string dict keys).


def encode_value(value: Any) -> tuple[str, bytes]:
    if value is None:
        return "n", b""
    if isinstance(value, bool):
        return "b", b"1" if value else b"0"
    if isinstance(value, int):
        return "i", str(value).encode("ascii")
    if isinstance(value, float):
        return "f", repr(value).encode("ascii")
    if isinstance(value, str):
        return "s", value.encode("utf-8")
    if isinstance(value, (list, dict)):
        try:
            payload = json.dumps(value, separators=(",", ":"))
            if json.loads(payload) == value:
                return "j", payload.encode("utf-8")
        except (TypeError, ValueError):
            pass
    return "p", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_value(kind: str, blob: bytes) -> Any:
    if kind == "n":
        return None
    if kind == "b":
        return blob == b"1"
    if kind == "i":
        return int(blob)
    if kind == "f":
        return float(blob)
    if kind == "s":
        return blob.decode("utf-8")
    if kind == "j":
        return json.loads(blob)
    if kind == "p":
        return pickle.loads(blob)
    raise ValueError(f"unknown value kind {kind!r}")


class ValueInterner:
    """Write-side intern cache over the ``vals`` table.

    The cache is bounded: mostly-unique value streams (every node id,
    every birth date) would otherwise grow it linearly with graph size,
    which is exactly what the out-of-core writer must not do.  On
    overflow it is simply cleared — the table stays authoritative.
    """

    def __init__(self, conn: sqlite3.Connection, cache_limit: int = 1 << 17) -> None:
        self._conn = conn
        self._cache: dict[tuple[str, bytes], int] = {}
        self._cache_limit = cache_limit

    def ref(self, value: Any) -> int:
        key = encode_value(value)
        ref = self._cache.get(key)
        if ref is None:
            kind, blob = key
            self._conn.execute(
                "INSERT OR IGNORE INTO vals (kind, value) VALUES (?, ?)", (kind, blob)
            )
            ref = self._conn.execute(
                "SELECT id FROM vals WHERE kind = ? AND value = ?", (kind, blob)
            ).fetchone()[0]
            if len(self._cache) >= self._cache_limit:
                self._cache.clear()
            self._cache[key] = ref
        return ref


class ValueLoader:
    """Read-side decode cache; prefetch in batches to cut round trips."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn
        self._cache: dict[int, Any] = {}

    def prefetch(self, refs: Iterable[int]) -> None:
        missing = [r for r in set(refs) if r is not None and r not in self._cache]
        for start in range(0, len(missing), 500):
            chunk = missing[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for ref, kind, blob in self._conn.execute(
                f"SELECT id, kind, value FROM vals WHERE id IN ({marks})", chunk
            ):
                self._cache[ref] = decode_value(kind, blob)

    def get(self, ref: int | None) -> Any:
        if ref is None:
            return None
        if ref not in self._cache:
            self.prefetch([ref])
        return self._cache[ref]
