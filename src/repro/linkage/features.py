"""Feature specifications for personal-link detection.

A :class:`FeatureSpec` pairs a person feature with a distance function
and a threshold ``T_f``: the binary comparison "d(f_x, f_y) < T_f" is the
evidence the Bayesian classifier consumes (Section 2 of the paper).  The
default specs per link class reflect the usual demographic signals:
partners share an address and have close ages; siblings share surname and
birth place; parent/child pairs share surname and an address with a
generation-sized age gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .similarity import absolute_difference, equality_distance, levenshtein, year_of

#: Link classes handled by the family detector.
PARTNER_OF = "partner_of"
SIBLING_OF = "sibling_of"
PARENT_OF = "parent_of"

LINK_CLASSES = (PARTNER_OF, SIBLING_OF, PARENT_OF)


@dataclass(frozen=True)
class FeatureSpec:
    """One comparison: feature name, distance and match threshold ``T_f``.

    ``m_default`` / ``u_default`` are the untrained estimates of
    ``P(d < T | link)`` and ``P(d < T | no link)``; training replaces
    them.  A feature whose *match* is evidence against the link (e.g.
    equal sex for partners) sets ``m_default < u_default``.
    """

    name: str
    distance: Callable[[Any, Any], float]
    threshold: float
    m_default: float = 0.95
    u_default: float = 0.05
    #: compare left's ``name`` against a *different* feature of the right
    #: person (e.g. parent's first name vs child's recorded father name)
    right_feature: str | None = None
    #: full custom comparison over both feature dicts (for composite
    #: evidence like paternity); overrides name/distance when set
    pair_compare: Callable[[dict[str, Any], dict[str, Any]], bool | None] | None = None

    def matches(self, left: dict[str, Any], right: dict[str, Any]) -> bool | None:
        """Evaluate ``d(f_x, f_y) < T_f``; None when either value is missing."""
        if self.pair_compare is not None:
            return self.pair_compare(left, right)
        value_left = left.get(self.name)
        value_right = right.get(self.right_feature or self.name)
        if value_left is None or value_right is None:
            return None
        return self.distance(value_left, value_right) < self.threshold


def _surname_distance(a: str, b: str) -> float:
    return float(levenshtein(str(a).lower(), str(b).lower()))


def _age_gap(a: Any, b: Any) -> float:
    return absolute_difference(year_of(a), year_of(b))


def partner_features() -> tuple[FeatureSpec, ...]:
    """Evidence for a PartnerOf link: cohabitation and close ages.

    The sex comparison *matches when the sexes are equal*, which for
    partners is evidence against — hence the inverted m/u defaults.
    """
    return (
        FeatureSpec("address", equality_distance, 0.5),
        FeatureSpec("birth_date", _age_gap, 12.0),
        FeatureSpec("sex", equality_distance, 0.5, m_default=0.05, u_default=0.5),
    )


def sibling_features() -> tuple[FeatureSpec, ...]:
    """Evidence for a SiblingOf link: shared surname, origin, household, ages.

    Birth place and address are individually weak (siblings move out, may
    be born in different cities); the Bayesian combination weighs each by
    its trained m/u probabilities so either can carry the decision.
    """
    return (
        # siblings share the family surname almost surely: a mismatch is
        # near-conclusive evidence against (distinguishes cohabiting
        # partners with different surnames from siblings)
        FeatureSpec("surname", _surname_distance, 2.0, m_default=0.98, u_default=0.05),
        FeatureSpec("birth_place", equality_distance, 0.5, m_default=0.8, u_default=0.1),
        FeatureSpec("address", equality_distance, 0.5, m_default=0.6, u_default=0.02),
        FeatureSpec("birth_date", _age_gap, 16.0),
        # Italian civil records include paternity: siblings share the
        # recorded father's first name — the discriminator that separates
        # true siblings from unrelated same-surname same-city pairs
        FeatureSpec("father_name", equality_distance, 0.5, m_default=0.9, u_default=0.02),
    )


def parent_features() -> tuple[FeatureSpec, ...]:
    """Evidence for a ParentOf link: shared surname/household, generation gap."""
    return (
        FeatureSpec("surname", _surname_distance, 2.0),
        FeatureSpec("address", equality_distance, 0.5, m_default=0.7, u_default=0.02),
        FeatureSpec("birth_place", equality_distance, 0.5, m_default=0.4, u_default=0.1),
        FeatureSpec("birth_date", lambda a, b: abs(_age_gap(a, b) - 30.0), 14.0),
        # paternity check: the candidate parent's own first name AND surname
        # match the child's recorded father name and inherited surname
        # (matches for fathers, not mothers — hence the moderate m; the
        # composite keeps a stray shared first name from faking paternity)
        FeatureSpec("paternity", equality_distance, 0.5,
                    m_default=0.45, u_default=0.004, pair_compare=_paternity_match),
    )


def _paternity_match(left: dict[str, Any], right: dict[str, Any]) -> bool | None:
    """Does ``left`` look like ``right``'s recorded father?

    Requires the father's first name *and* the inherited surname to agree
    — a shared first name alone is far too common to imply paternity.
    """
    name = left.get("name")
    father_name = right.get("father_name")
    left_surname = left.get("surname")
    right_surname = right.get("surname")
    if None in (name, father_name, left_surname, right_surname):
        return None
    return (
        str(name).lower() == str(father_name).lower()
        and str(left_surname).lower() == str(right_surname).lower()
    )


def parent_direction(left: dict[str, Any], right: dict[str, Any]) -> bool:
    """ParentOf is directional: the parent is at least 15 years older."""
    left_birth = left.get("birth_date")
    right_birth = right.get("birth_date")
    if left_birth is None or right_birth is None:
        return False
    return year_of(left_birth) + 15 <= year_of(right_birth)


def default_feature_specs() -> dict[str, tuple[FeatureSpec, ...]]:
    """Link class -> feature specs, the detector's default configuration."""
    return {
        PARTNER_OF: partner_features(),
        SIBLING_OF: sibling_features(),
        PARENT_OF: parent_features(),
    }
