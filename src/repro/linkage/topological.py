"""Classic topological link-prediction baselines.

The paper positions KG augmentation against *link prediction* [29]: the
usual predictors score a candidate pair by its graph neighbourhood —
common neighbours, Jaccard, Adamic-Adar, preferential attachment.  We
implement them as the comparison baseline: on company ownership graphs
the personal links Vada-Link derives connect people who are often in
*different weakly connected components*, so neighbourhood scores carry
no signal — exactly the paper's argument for combining extensional data
with domain knowledge instead of guessing from topology.
"""

from __future__ import annotations

import math
from typing import Hashable

from ..graph.property_graph import PropertyGraph

NodeId = Hashable


def _neighbor_sets(graph: PropertyGraph) -> dict[NodeId, set[NodeId]]:
    return {node: set(graph.neighbors(node)) for node in graph.node_ids()}


def common_neighbors(graph: PropertyGraph, x: NodeId, y: NodeId) -> int:
    """|N(x) ∩ N(y)| on the undirected projection."""
    neighbors_x = set(graph.neighbors(x))
    neighbors_y = set(graph.neighbors(y))
    return len(neighbors_x & neighbors_y)


def jaccard_coefficient(graph: PropertyGraph, x: NodeId, y: NodeId) -> float:
    """|N(x) ∩ N(y)| / |N(x) ∪ N(y)| (0 for two isolated nodes)."""
    neighbors_x = set(graph.neighbors(x))
    neighbors_y = set(graph.neighbors(y))
    union = neighbors_x | neighbors_y
    if not union:
        return 0.0
    return len(neighbors_x & neighbors_y) / len(union)


def adamic_adar(graph: PropertyGraph, x: NodeId, y: NodeId) -> float:
    """Sum over common neighbours z of 1 / log |N(z)|."""
    neighbors_x = set(graph.neighbors(x))
    neighbors_y = set(graph.neighbors(y))
    score = 0.0
    for z in neighbors_x & neighbors_y:
        degree = sum(1 for _ in graph.neighbors(z))
        if degree > 1:
            score += 1.0 / math.log(degree)
    return score


def preferential_attachment(graph: PropertyGraph, x: NodeId, y: NodeId) -> int:
    """|N(x)| * |N(y)| — hubs attract."""
    return sum(1 for _ in graph.neighbors(x)) * sum(1 for _ in graph.neighbors(y))


SCORERS = {
    "common_neighbors": common_neighbors,
    "jaccard": jaccard_coefficient,
    "adamic_adar": adamic_adar,
    "preferential_attachment": preferential_attachment,
}


def score_pairs(
    graph: PropertyGraph,
    pairs: list[tuple[NodeId, NodeId]],
    method: str = "adamic_adar",
) -> list[tuple[NodeId, NodeId, float]]:
    """Score candidate pairs with the chosen predictor, best first."""
    scorer = SCORERS[method]
    scored = [(x, y, float(scorer(graph, x, y))) for x, y in pairs]
    return sorted(scored, key=lambda item: -item[2])


def top_predictions(
    graph: PropertyGraph,
    candidate_pairs: list[tuple[NodeId, NodeId]],
    k: int,
    method: str = "adamic_adar",
) -> set[tuple[NodeId, NodeId]]:
    """The k best-scoring pairs with a strictly positive score."""
    result: set[tuple[NodeId, NodeId]] = set()
    for x, y, score in score_pairs(graph, candidate_pairs, method):
        if score <= 0 or len(result) >= k:
            break
        result.add((x, y))
    return result


def recall_against(
    graph: PropertyGraph,
    true_pairs: set[tuple[NodeId, NodeId]],
    candidate_pairs: list[tuple[NodeId, NodeId]],
    method: str = "adamic_adar",
) -> float:
    """Recall of the top-|true| predictions against a truth set.

    The standard link-prediction evaluation: rank candidates, keep as
    many as there are true pairs, measure the overlap.
    """
    if not true_pairs:
        return 1.0
    predictions = top_predictions(graph, candidate_pairs, len(true_pairs), method)
    return len(predictions & true_pairs) / len(true_pairs)
