"""Classifier construction and training helpers.

The paper estimates the per-feature probabilities "by observing
P(d(f_x, f_y) < T_f | L) from training data".  Our surrogate database
comes with planted ground truth, so training data is free:
:func:`training_pairs` samples positive pairs from the truth and *hard*
negatives from the same surname blocks (random negatives would be too
easy and yield over-confident u-probabilities).
"""

from __future__ import annotations

import random
from typing import Any, Iterable

from .bayes import BayesianLinkClassifier
from .features import (
    LINK_CLASSES,
    PARENT_OF,
    default_feature_specs,
    parent_direction,
)

PersonFeatures = dict[str, Any]
LabelledPair = tuple[tuple[PersonFeatures, PersonFeatures], bool]


def default_classifiers(prior: float = 0.1) -> list[BayesianLinkClassifier]:
    """Untrained classifiers for every family link class (with directions)."""
    classifiers = []
    for link_class, specs in default_feature_specs().items():
        direction = parent_direction if link_class == PARENT_OF else None
        classifiers.append(
            BayesianLinkClassifier(link_class, specs, prior=prior, direction=direction)
        )
    return classifiers


def training_pairs(
    persons: dict[str, PersonFeatures],
    true_links: set[tuple[str, str, str]],
    link_class: str,
    negatives_per_positive: int = 3,
    seed: int = 0,
) -> list[LabelledPair]:
    """Labelled (pair, is_link) examples for one link class.

    Positives are the ground-truth pairs of the class; negatives are
    mostly uniform random pairs (so the u-probabilities reflect the
    population, as in Fellegi-Sunter estimation) with a minority of
    same-surname hard negatives.
    """
    rng = random.Random(seed)
    positives = [(x, y) for x, y, c in true_links if c == link_class]
    linked_pairs = {(x, y) for x, y, _ in true_links}
    person_ids = sorted(persons)
    by_surname: dict[str, list[str]] = {}
    for person_id, features in persons.items():
        surname = str(features.get("surname") or "").lower()
        by_surname.setdefault(surname, []).append(person_id)

    examples: list[LabelledPair] = []
    for x, y in positives:
        if x in persons and y in persons:
            examples.append(((persons[x], persons[y]), True))

    wanted_negatives = len(examples) * negatives_per_positive
    attempts = 0
    negatives = 0
    while negatives < wanted_negatives and attempts < wanted_negatives * 20:
        attempts += 1
        if rng.random() < 0.2 and by_surname:
            bucket = by_surname[rng.choice(list(by_surname))]
            if len(bucket) < 2:
                continue
            x, y = rng.sample(bucket, 2)
        else:
            if len(person_ids) < 2:
                break
            x, y = rng.sample(person_ids, 2)
        if (x, y) in linked_pairs or (y, x) in linked_pairs:
            continue
        examples.append(((persons[x], persons[y]), False))
        negatives += 1
    return examples


def train_classifiers(
    persons: dict[str, PersonFeatures],
    true_links: set[tuple[str, str, str]],
    link_classes: Iterable[str] = LINK_CLASSES,
    prior: float = 0.1,
    negatives_per_positive: int = 3,
    seed: int = 0,
) -> list[BayesianLinkClassifier]:
    """Build and fit one classifier per link class from planted ground truth."""
    classifiers = []
    specs_by_class = default_feature_specs()
    for link_class in link_classes:
        direction = parent_direction if link_class == PARENT_OF else None
        classifier = BayesianLinkClassifier(
            link_class, specs_by_class[link_class], prior=prior, direction=direction
        )
        examples = training_pairs(
            persons, true_links, link_class, negatives_per_positive, seed
        )
        if examples:
            pairs = [pair for pair, _ in examples]
            labels = [label for _, label in examples]
            classifier.fit(pairs, labels, prior=prior)
        classifiers.append(classifier)
    return classifiers


def persons_of(graph) -> dict[str, PersonFeatures]:
    """Convenience: person id -> feature dict for a company graph."""
    return {node.id: node.properties for node in graph.persons()}
