"""Bayesian personal-link classifier with Graham combination.

Following the paper's Section 2 model: for each feature ``f_i`` we need
``p_i = P(L_xy | d(f_i^x, f_i^y) < T_f)`` — the probability of a link
given the feature matches.  By Bayes::

    p_i = P(d < T | L) * P(L) / P(d < T)

where ``P(d < T | L)`` (the *m-probability* in record-linkage jargon) and
the marginal ``P(d < T)`` are estimated from training data, and ``P(L)``
is the prior likelihood of a link.  When a feature does *not* match we
use the complementary evidence ``P(L | d >= T)`` the same way.

The per-feature posteriors combine via Graham's formula (from Bayesian
spam filtering, cited as [25] in the paper)::

    p = (p_1 ... p_n) / (p_1 ... p_n + (1 - p_1) ... (1 - p_n))

A pair is a link candidate when ``p > 0.5`` (Algorithm 7's threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .features import FeatureSpec

#: Laplace-style smoothing applied to estimated probabilities.
_SMOOTHING = 0.5
#: Posteriors are clamped away from 0/1 so one feature cannot veto the rest.
_CLAMP = 1e-4


def graham_combination(probabilities: Sequence[float]) -> float:
    """Combine per-feature posteriors into a single link probability."""
    if not probabilities:
        return 0.0
    product = 1.0
    complement = 1.0
    for p in probabilities:
        p = min(max(p, _CLAMP), 1.0 - _CLAMP)
        product *= p
        complement *= 1.0 - p
    return product / (product + complement)


@dataclass
class FeatureEstimate:
    """Estimated match probabilities of one feature."""

    m: float  # P(d < T | link)
    u: float  # P(d < T | no link)

    def posterior(self, matched: bool, prior: float) -> float:
        """P(link | evidence) for this feature alone."""
        if matched:
            likelihood_link, likelihood_nolink = self.m, self.u
        else:
            likelihood_link, likelihood_nolink = 1.0 - self.m, 1.0 - self.u
        numerator = likelihood_link * prior
        denominator = numerator + likelihood_nolink * (1.0 - prior)
        if denominator == 0.0:
            return 0.5
        return numerator / denominator


@dataclass
class BayesianLinkClassifier:
    """Multi-feature Bayesian classifier for one link class."""

    link_class: str
    features: tuple[FeatureSpec, ...]
    prior: float = 0.1
    estimates: dict[str, FeatureEstimate] = field(default_factory=dict)
    #: Optional asymmetry constraint (e.g. ParentOf requires left older);
    #: pairs violating it get probability 0 regardless of the features.
    direction: Callable[[dict[str, Any], dict[str, Any]], bool] | None = None

    def __post_init__(self) -> None:
        # untrained defaults come from the feature specs (training replaces them)
        for spec in self.features:
            self.estimates.setdefault(
                spec.name, FeatureEstimate(m=spec.m_default, u=spec.u_default)
            )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def fit(
        self,
        pairs: Iterable[tuple[dict[str, Any], dict[str, Any]]],
        labels: Iterable[bool],
        prior: float | None = None,
    ) -> "BayesianLinkClassifier":
        """Estimate m/u probabilities (and the prior) from labelled pairs.

        Pass ``prior`` explicitly when the training sample is balanced
        rather than population-representative — the label frequency of a
        balanced sample is not the a-priori link likelihood.
        """
        match_counts = {spec.name: [0, 0] for spec in self.features}   # matched among links
        unmatch_counts = {spec.name: [0, 0] for spec in self.features}  # matched among non-links
        links = 0
        total = 0
        for (left, right), label in zip(pairs, labels):
            total += 1
            if label:
                links += 1
            for spec in self.features:
                matched = spec.matches(left, right)
                if matched is None:
                    continue
                bucket = match_counts if label else unmatch_counts
                bucket[spec.name][1] += 1
                if matched:
                    bucket[spec.name][0] += 1
        if prior is not None:
            self.prior = prior
        elif total:
            self.prior = (links + _SMOOTHING) / (total + 2 * _SMOOTHING)
        for spec in self.features:
            matched_links, seen_links = match_counts[spec.name]
            matched_nolinks, seen_nolinks = unmatch_counts[spec.name]
            m = (matched_links + _SMOOTHING) / (seen_links + 2 * _SMOOTHING)
            u = (matched_nolinks + _SMOOTHING) / (seen_nolinks + 2 * _SMOOTHING)
            self.estimates[spec.name] = FeatureEstimate(m=m, u=u)
        return self

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def probability(self, left: dict[str, Any], right: dict[str, Any]) -> float:
        """Link probability for a pair of person feature dicts.

        Per-feature evidence is combined with Graham's formula over the
        *likelihood* posteriors (prior 1/2 — Graham combination is
        exactly naive Bayes with an even prior, so 0.5 is its neutral
        point), and the class prior is folded in once at the end.
        Folding the prior into every p_i instead would shift the neutral
        point and make weak positive evidence count as negative.
        """
        if self.direction is not None and not self.direction(left, right):
            return 0.0
        posteriors: list[float] = []
        for spec in self.features:
            matched = spec.matches(left, right)
            if matched is None:
                continue  # missing data contributes no evidence
            posteriors.append(self.estimates[spec.name].posterior(matched, 0.5))
        if not posteriors:
            return 0.0
        evidence = graham_combination(posteriors)
        evidence = min(max(evidence, _CLAMP), 1.0 - _CLAMP)
        prior = min(max(self.prior, _CLAMP), 1.0 - _CLAMP)
        odds = (evidence / (1.0 - evidence)) * (prior / (1.0 - prior))
        return odds / (1.0 + odds)

    def predict(
        self, left: dict[str, Any], right: dict[str, Any], threshold: float = 0.5
    ) -> bool:
        """Algorithm 7's decision: probability strictly above the threshold."""
        return self.probability(left, right) > threshold
