"""String and value similarity measures used for personal-link detection.

The paper's family-link classifier compares person features with
per-feature distances (it names Levenshtein for strings); this module
provides those distances plus the usual record-linkage companions
(Jaro, Jaro-Winkler) and numeric/date helpers.
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Edit distance (insert/delete/substitute), O(len(a)*len(b)) two rows."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost  # substitution
            ))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalised edit distance, in [0, 1]; empty-vs-empty is 1."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matches_a = [False] * len_a
    matches_b = [False] * len_b
    matches = 0
    for i, char in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if matches_b[j] or b[j] != char:
                continue
            matches_a[i] = matches_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if not matches_a[i]:
            continue
        while not matches_b[k]:
            k += 1
        if a[i] != b[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def absolute_difference(a: float | int, b: float | int) -> float:
    """|a - b| for numeric features (ages, years)."""
    return abs(float(a) - float(b))


def equality_distance(a: object, b: object) -> float:
    """0.0 when equal, 1.0 otherwise (categorical features: sex, city code)."""
    return 0.0 if a == b else 1.0


def year_of(date: str | int) -> int:
    """Extract the year from an ISO date string or pass an int through."""
    if isinstance(date, int):
        return date
    return int(str(date)[:4])


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code (e.g. 'Rossi' -> 'R200').

    Useful as a typo-robust blocking key: surnames differing by a vowel
    substitution or doubled consonant map to the same code.
    """
    cleaned = [c for c in word.lower() if c.isalpha()]
    if not cleaned:
        return "0000"
    first = cleaned[0]
    encoded = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for char in cleaned[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if code and code != previous:
            encoded.append(code)
            if len(encoded) == 4:
                break
        if char not in "hw":  # h/w do not reset the previous code
            previous = code
    return "".join(encoded).ljust(4, "0")


def soundex_distance(a: str, b: str) -> float:
    """0.0 when the Soundex codes agree, 1.0 otherwise."""
    return 0.0 if soundex(str(a)) == soundex(str(b)) else 1.0
