"""Record-linkage machinery: similarities, feature specs, Bayesian classifier."""

from .bayes import (
    BayesianLinkClassifier,
    FeatureEstimate,
    graham_combination,
)
from .features import (
    LINK_CLASSES,
    PARENT_OF,
    PARTNER_OF,
    SIBLING_OF,
    FeatureSpec,
    default_feature_specs,
    parent_direction,
    parent_features,
    partner_features,
    sibling_features,
)
from .topological import (
    adamic_adar,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
    score_pairs,
    top_predictions,
)
from .training import (
    default_classifiers,
    persons_of,
    train_classifiers,
    training_pairs,
)
from .similarity import (
    absolute_difference,
    equality_distance,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    soundex,
    soundex_distance,
    year_of,
)

__all__ = [
    "BayesianLinkClassifier",
    "FeatureEstimate",
    "FeatureSpec",
    "LINK_CLASSES",
    "PARENT_OF",
    "PARTNER_OF",
    "SIBLING_OF",
    "absolute_difference",
    "default_feature_specs",
    "equality_distance",
    "graham_combination",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "soundex",
    "soundex_distance",
    "parent_features",
    "partner_features",
    "sibling_features",
    "year_of",
    "default_classifiers",
    "persons_of",
    "train_classifiers",
    "training_pairs",
    "parent_direction",
    "adamic_adar",
    "common_neighbors",
    "jaccard_coefficient",
    "preferential_attachment",
    "score_pairs",
    "top_predictions",
]
