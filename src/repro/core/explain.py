"""Business-facing explanations of derived links.

The paper sells Vada-Link on explainability: "decisions are explainable
and unambiguous, as the semantics of Vadalog is based on that of
Datalog".  The engine's provenance gives rule-level derivation trees;
this module turns them — together with the domain algorithms — into the
narratives an analyst reads:

* why does x control y? (the absorption chain with running vote tallies);
* why are x and y closely linked? (the paths behind the accumulated
  ownership, or the common third party);
* why were these two people linked? (the per-feature Bayesian evidence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import NodeId
from ..linkage.bayes import BayesianLinkClassifier
from ..ownership.close_links import (
    CLOSE_LINK_THRESHOLD,
    accumulated_ownership_from,
)
from ..ownership.control import CONTROL_THRESHOLD, control_chain
from ..ownership.paths import path_weight, simple_paths


@dataclass
class Explanation:
    """A structured justification: verdict + human-readable steps."""

    question: str
    verdict: bool
    steps: list[str] = field(default_factory=list)

    def render(self) -> str:
        answer = "YES" if self.verdict else "NO"
        lines = [f"{self.question}  ->  {answer}"]
        lines.extend(f"  - {step}" for step in self.steps)
        return "\n".join(lines)


def explain_control(
    graph: CompanyGraph,
    controller: NodeId,
    company: NodeId,
    threshold: float = CONTROL_THRESHOLD,
) -> Explanation:
    """Why (not) does ``controller`` control ``company``? (Definition 2.3)."""
    question = f"does {controller} control {company}?"
    chain = control_chain(graph, controller, company, threshold)
    if chain is None:
        direct = graph.share(controller, company)
        steps = [
            f"{controller} directly holds {direct:.1%} of {company}"
            if direct else f"{controller} holds no direct stake in {company}",
            f"no set of companies controlled by {controller} accumulates "
            f"more than {threshold:.0%} of {company}'s shares",
        ]
        return Explanation(question, False, steps)
    steps = []
    for absorbed, tally in chain:
        if absorbed == company:
            steps.append(
                f"the controlled set's combined stake in {company} reaches "
                f"{tally:.1%} > {threshold:.0%} — control established"
            )
        else:
            steps.append(
                f"{controller}'s controlled set absorbs {absorbed} "
                f"(tallied {tally:.1%} of its votes)"
            )
    return Explanation(question, True, steps)


def explain_close_link(
    graph: CompanyGraph,
    x: NodeId,
    y: NodeId,
    threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = 10,
) -> Explanation:
    """Why (not) are ``x`` and ``y`` closely linked? (Definition 2.6)."""
    question = f"are {x} and {y} closely linked (t = {threshold:.0%})?"
    steps: list[str] = []
    verdict = False

    for source, target, tag in ((x, y, "i"), (y, x, "ii")):
        paths = list(
            simple_paths(graph, source, target, max_depth=max_depth, max_paths=50)
        )
        if not paths:
            continue
        total = sum(path_weight(graph, p) for p in paths)
        if total >= threshold:
            verdict = True
            steps.append(
                f"condition ({tag}): Phi({source}, {target}) = {total:.1%} "
                f">= {threshold:.0%} via {len(paths)} path(s), e.g. "
                + " -> ".join(str(n) for n in paths[0])
            )
        else:
            steps.append(
                f"Phi({source}, {target}) = {total:.1%} < {threshold:.0%}"
            )

    # condition (iii): common third party
    witnesses = []
    for node in graph.node_ids():
        if node in (x, y):
            continue
        phi = accumulated_ownership_from(graph, node, max_depth=max_depth)
        phi_x, phi_y = phi.get(x, 0.0), phi.get(y, 0.0)
        if phi_x >= threshold and phi_y >= threshold:
            witnesses.append((node, phi_x, phi_y))
    if witnesses:
        verdict = True
        witness, phi_x, phi_y = max(witnesses, key=lambda w: min(w[1], w[2]))
        steps.append(
            f"condition (iii): {witness} holds Phi = {phi_x:.1%} of {x} and "
            f"{phi_y:.1%} of {y} (common third party)"
        )
    elif not verdict:
        steps.append("no third party holds the threshold share of both")
    return Explanation(question, verdict, steps)


def explain_family_link(
    classifier: BayesianLinkClassifier,
    left: dict,
    right: dict,
    threshold: float = 0.5,
) -> Explanation:
    """Why (not) did the Bayesian classifier link these two persons?"""
    question = f"is this pair a {classifier.link_class} link?"
    steps: list[str] = []
    if classifier.direction is not None and not classifier.direction(left, right):
        steps.append("direction constraint failed (e.g. parent must be older)")
        return Explanation(question, False, steps)
    for spec in classifier.features:
        matched = spec.matches(left, right)
        estimate = classifier.estimates[spec.name]
        if matched is None:
            steps.append(f"{spec.name}: missing value — no evidence")
            continue
        posterior = estimate.posterior(matched, 0.5)
        direction = "for" if posterior > 0.5 else "against"
        steps.append(
            f"{spec.name}: {'match' if matched else 'no match'} "
            f"(m={estimate.m:.2f}, u={estimate.u:.2f}) — evidence {direction} "
            f"({posterior:.2f})"
        )
    probability = classifier.probability(left, right)
    verdict = probability > threshold
    steps.append(
        f"combined probability {probability:.3f} "
        f"{'>' if verdict else '<='} threshold {threshold}"
    )
    return Explanation(question, verdict, steps)
