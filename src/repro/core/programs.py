"""The paper's Vadalog programs (Algorithms 2-9), runnable on our engine.

Vocabulary.  The extensional relations follow the relational PG mapping
of Section 3 (see :data:`repro.graph.relational.COMPANY_SCHEMA`)::

    company(Id, Name, Address, IncorporationDate, LegalForm)
    person(Id, Name, Surname, BirthDate, BirthPlace, Sex, Address)
    own(Owner, Company, W, Right)
    family_member(PersonId, FamilyId)        (optional, for Algorithms 8/9)

The input mapping (Algorithm 2) promotes them to generic constructs::

    node(Z), node_type(Z, Type), feature(Z, Name, Value), id_of(Z, ExternalId)
    link(E, X, Y, W)  + edge_type(E, Type)     -- weighted (shareholding) links
    link(E, X, Y)     + edge_type(E, Type)     -- unweighted (family, predicted)

Node identifiers ``Z`` are invented with Skolem functions (``#sk_c``,
``#sk_p``, ``#sk_f``) exactly as the paper prescribes — deterministic,
injective, disjoint ranges.  The arity distinction between weighted and
unweighted ``link`` facts mirrors the paper's variadic atoms.

Engine-vs-paper notes (also in DESIGN.md):

* Algorithm 5's ``msum(w, <z>)`` is written ``msum(W, <Z, E>)`` so that
  *parallel* shareholding edges sum instead of collapsing to their max.
* Algorithm 6 computes accumulated ownership by last-hop decomposition
  where the base case (the direct edge) lives in a separate fact from the
  recursive sums, so the two are never added together.  We provide that
  verbatim program (:func:`paper_close_link_program`) plus a corrected
  first-hop decomposition (:func:`close_link_program`) whose single
  aggregate equals Definition 2.5 exactly on acyclic graphs
  (``Phi(x,y) = sum_z w(x,z) * Phi(z,y)``, ``Phi(y,y) = 1``).
* Algorithm 8's two aggregates "contributing to the same total" are
  expressed with one aggregate over a ``fholder`` (family holder)
  relation that unions members and controlled companies.
"""

from __future__ import annotations

from ..datalog.parser import parse_program
from ..datalog.rules import Program

#: The link classes of the paper's industrial case.
DEFAULT_LINK_CLASSES = (
    "control",
    "close_link",
    "partner_of",
    "sibling_of",
    "parent_of",
)


def influence_program() -> str:
    """The paper's Example 3.2: influence through ownership and marriage.

    A person influences the companies she owns (rule 1); her spouse
    influences them too (rule 2).  Spouse edges carry a validity interval
    and are generated from Married facts (rule 3) and symmetric (rule 4)
    — the temporal interval is invented existentially, matching the
    example's open validity.
    """
    return """
@influence_owner person_e(X), own_e(X, C, V) -> influence(X, C).
@influence_spouse own_e(X, C, V), spouse(X, Y, T1, T2) -> influence(Y, C).
@marriage_to_spouse married(X, Y) -> spouse(X, Y, T1, T2).
@spouse_symmetric spouse(X, Y, T1, T2) -> spouse(Y, X, T1, T2).
"""


def input_mapping(include_families: bool = True) -> str:
    """Algorithm 2: relational EDB -> generic nodes/links/types/features."""
    text = """
@map_company company(Id, N, A, D, L), Z = #sk_c(Id) ->
  node(Z), node_type(Z, "company"), id_of(Z, Id),
  feature(Z, "name", N), feature(Z, "address", A),
  feature(Z, "incorporation_date", D), feature(Z, "legal_form", L).

@map_person person(Id, N, S, B, Bp, Sx, A, Fn), Z = #sk_p(Id) ->
  node(Z), node_type(Z, "person"), id_of(Z, Id),
  feature(Z, "name", N), feature(Z, "surname", S),
  feature(Z, "birth_date", B), feature(Z, "birth_place", Bp),
  feature(Z, "sex", Sx), feature(Z, "address", A),
  feature(Z, "father_name", Fn).

@map_own_person own(X, Y, W, R), person(X, N, S, B, Bp, Sx, A, Fn),
  company(Y, N2, A2, D2, L2), E = #sk_own(X, Y, W, R) ->
  link(E, #sk_p(X), #sk_c(Y), W),
  edge_type(E, "pers_share"), edge_type(E, "shareholding"),
  feature(E, "right", R).

@map_own_company own(X, Y, W, R), company(X, N1, A1, D1, L1),
  company(Y, N2, A2, D2, L2), E = #sk_own(X, Y, W, R) ->
  link(E, #sk_c(X), #sk_c(Y), W),
  edge_type(E, "comp_share"), edge_type(E, "shareholding"),
  feature(E, "right", R).
"""
    if include_families:
        text += """
@map_family family_member(X, F), Zf = #sk_f(F), Zp = #sk_p(X), E = #sk_fam(X, F) ->
  node(Zf), node_type(Zf, "family"), id_of(Zf, F),
  link(E, Zp, Zf), edge_type(E, "family").
"""
    return text


def control_program(threshold: float = 0.5) -> str:
    """Algorithm 5: company control (Definition 2.3).

    Rule 1 seeds reflexive control (the paper's ``Candidate(x, x,
    Control)``); we seed persons too since Definition 2.3 lets persons
    control.  Rule 2 accumulates the shares of everything x controls into
    a per-(x, y) monotonic sum.
    """
    return f"""
@ctrl_self_company node_type(X, "company") -> control_cand(X, X).
@ctrl_self_person node_type(X, "person") -> control_cand(X, X).
@ctrl_step control_cand(X, Z), link(E, Z, Y, W), edge_type(E, "shareholding"),
  T = msum(W, <Z, E>), T > {threshold} -> control_cand(X, Y).
@ctrl_out control_cand(X, Y), X != Y -> candidate(X, Y, "control").
"""


def accumulated_ownership_program() -> str:
    """Corrected accumulated ownership: first-hop decomposition.

    ``acc(X, Y, T)`` converges to ``Phi(X, Y)`` of Definition 2.5 on
    acyclic graphs: every simple path x -> y is counted exactly once,
    split by its first hop z (the direct edge being the case z = y via
    the ``acc_seed`` unit).  On cyclic graphs this is the walk-sum and
    may diverge — run with an iteration budget or check acyclicity first.
    """
    return """
@acc_seed node(Y) -> acc(Y, Y, 1.0).
@acc_step link(E, X, Z, W1), edge_type(E, "shareholding"), acc(Z, Y, W2),
  X != Y, T = msum(W1 * W2, <Z, E>) -> acc(X, Y, T).
"""


def close_link_program(threshold: float = 0.2) -> str:
    """Algorithm 6 (corrected): close links over exact accumulated ownership."""
    return accumulated_ownership_program() + f"""
@cl_direct acc(X, Y, W), X != Y, W >= {threshold},
  node_type(X, "company"), node_type(Y, "company") ->
  candidate(X, Y, "close_link").
@cl_symmetric candidate(X, Y, "close_link") -> candidate(Y, X, "close_link").
@cl_common acc(Z, X, W1), acc(Z, Y, W2), W1 >= {threshold}, W2 >= {threshold},
  X != Y, Z != X, Z != Y,
  node_type(X, "company"), node_type(Y, "company") ->
  candidate(X, Y, "close_link").
"""


def paper_close_link_program(threshold: float = 0.2) -> str:
    """Algorithm 6 verbatim (last-hop decomposition).

    Kept for fidelity and for the ablation comparing it against
    :func:`close_link_program`: because the direct-edge base case (rule
    1) and the recursive sums (rule 2) live in distinct ``acc_own``
    facts, a pair whose ownership only crosses the threshold when the two
    are added together is missed.
    """
    return f"""
@p6_base link(Z, X, Y, W), edge_type(Z, "shareholding") -> acc_own(X, Y, W).
@p6_step link(U, X, Z, W1), edge_type(U, "shareholding"), acc_own(Z, Y, W2),
  X != Y, T = msum(W1 * W2, <Z>) -> acc_own(X, Y, T).
@p6_direct acc_own(X, Y, W), W >= {threshold}, X != Y,
  node_type(X, "company"), node_type(Y, "company") ->
  candidate(X, Y, "close_link").
@p6_symmetric candidate(X, Y, "close_link") -> candidate(Y, X, "close_link").
@p6_common acc_own(Z, X, W1), acc_own(Z, Y, W2), W1 >= {threshold}, W2 >= {threshold},
  X != Y, Z != X, Z != Y,
  node_type(X, "company"), node_type(Y, "company") ->
  candidate(X, Y, "close_link").
"""


def family_link_program(
    link_classes: tuple[str, ...] = ("partner_of", "sibling_of", "parent_of"),
    threshold: float = 0.5,
    blocked: bool = True,
) -> str:
    """Algorithm 7 generalised: Bayesian personal links via ``$link_probability``.

    With ``blocked=True`` pairs are only compared inside a shared
    ``block(B1, B2, X)`` assignment (Algorithm 3's two-level clustering,
    with the ``block`` facts produced by the ``$graph_embed_clust`` /
    ``$generate_blocks`` externals or injected by the pipeline).
    """
    rules = []
    for link_class in link_classes:
        if blocked:
            rules.append(f"""
@fl_{link_class} block(B1, B2, X), block(B1, B2, Y), X != Y,
  node_type(X, "person"), node_type(Y, "person"),
  P = $link_probability("{link_class}", X, Y), P > {threshold} ->
  candidate(X, Y, "{link_class}").
""")
        else:
            rules.append(f"""
@fl_{link_class} node_type(X, "person"), node_type(Y, "person"), X != Y,
  P = $link_probability("{link_class}", X, Y), P > {threshold} ->
  candidate(X, Y, "{link_class}").
""")
    return "".join(rules)


def blocking_program() -> str:
    """Algorithm 3 rule (1): two-level clustering via external functions.

    ``$graph_embed_clust`` wraps node2vec+k-means (first level) and
    ``$generate_blocks`` the feature blocking (second level); both take
    the node identifier and answer from state computed over the whole
    graph, matching the paper's stateful aggregation reading.
    """
    return """
@block node(X), B1 = $graph_embed_clust(X), B2 = $generate_blocks(X) ->
  block(B1, B2, X).
"""


def family_control_program(threshold: float = 0.5) -> str:
    """Algorithm 8: family control (Definition 2.8).

    ``fholder(F, Z)`` unions the members of family F with every company
    F controls; one monotonic sum pools all their shares — the paper's
    "two monotonic summations contribute to the same total".
    """
    return f"""
@fam_member link(E, X, F), edge_type(E, "family") -> fholder(F, X).
@fam_controlled node_type(F, "family"), candidate(F, X, "control") -> fholder(F, X).
@fam_step fholder(F, Z), link(E, Z, Y, W), edge_type(E, "shareholding"),
  T = msum(W, <Z, E>), T > {threshold} -> candidate(F, Y, "control").
"""


def family_close_link_program(threshold: float = 0.2) -> str:
    """Algorithm 9: family close links (Definition 2.9 part ii).

    Requires the ``acc`` relation of :func:`accumulated_ownership_program`
    (include :func:`close_link_program` or that program alongside).
    """
    return f"""
@fam_close link(E1, I, F), edge_type(E1, "family"),
  link(E2, J, F), edge_type(E2, "family"), I != J,
  acc(I, X, V), V >= {threshold}, acc(J, Y, W), W >= {threshold}, X != Y,
  node_type(X, "company"), node_type(Y, "company") ->
  candidate(X, Y, "close_link").
"""


def link_creation(link_classes: tuple[str, ...] = DEFAULT_LINK_CLASSES) -> str:
    """Algorithm 3 rule (2) tail: candidates become typed generic links.

    The head invents the edge identifier existentially — our chase
    assigns a labelled null, deterministic per (X, Y, T).
    """
    facts = "\n".join(f'link_class("{c}").' for c in link_classes)
    return facts + """
@mk_link candidate(X, Y, T), link_class(T) -> link(E, X, Y), edge_type(E, T).
"""


def output_mapping(link_classes: tuple[str, ...] = DEFAULT_LINK_CLASSES) -> str:
    """Algorithm 4: predicted generic links -> PG-level relations.

    Maps internal Skolem node ids back to external ids via ``id_of``.
    """
    rules = []
    for link_class in link_classes:
        rules.append(f"""
@out_{link_class} link(E, X, Y), edge_type(E, "{link_class}"),
  id_of(X, Ix), id_of(Y, Iy) -> {link_class}(Ix, Iy).
""")
    return "".join(rules)


def full_ownership_program(
    control_threshold: float = 0.5,
    close_link_threshold: float = 0.2,
    include_families: bool = True,
) -> Program:
    """Input mapping + control + close links (+ family reasoning) + output.

    The parsed, ready-to-run deterministic reasoning stack — everything
    except the probabilistic family-link detection (which needs external
    functions; see :class:`repro.core.pipeline.ReasoningPipeline`).
    """
    text = (
        input_mapping(include_families)
        + control_program(control_threshold)
        + close_link_program(close_link_threshold)
    )
    classes: tuple[str, ...] = ("control", "close_link")
    if include_families:
        text += family_control_program(control_threshold)
        text += family_close_link_program(close_link_threshold)
    text += link_creation(classes) + output_mapping(classes)
    return parse_program(text)
