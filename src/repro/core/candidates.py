"""Polymorphic ``Candidate`` predicates (Section 4.3).

A :class:`CandidateRule` decides, for a pair of nodes inside one block,
whether a link of its class must be created.  The framework stays
problem-aware through these pluggable implementations:

* :class:`FamilyLinkCandidate` — Bayesian classification of personal
  links (Algorithm 7 generalised to any family link class);
* :class:`ControlCandidate` — company control (Algorithm 5 / Def 2.3);
* :class:`CloseLinkCandidate` — close links (Algorithm 6 / Def 2.6).

Control and close links are *global* properties, so those rules memoise
whole-graph analyses and answer pair queries from the cache; the cache is
invalidated when the augmentation loop mutates the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from ..graph.company_graph import COMPANY, PERSON, CompanyGraph
from ..graph.property_graph import Node, NodeId, PropertyGraph
from ..linkage.bayes import BayesianLinkClassifier
from ..linkage.training import default_classifiers
from ..ownership.close_links import CLOSE_LINK_THRESHOLD, close_links
from ..ownership.control import CONTROL_THRESHOLD, controlled_by


class CandidateRule(Protocol):
    """The interface behind Algorithm 1's ``Candidate(p1, p2, c)`` check."""

    link_class: str
    #: Optional rule-specific second-level blocking (the paper's
    #: polymorphic #GenerateBlocks); None falls back to the loop default.
    blocking: Any

    def accepts(self, left: Node, right: Node) -> bool:
        """Cheap type filter: is this pair even eligible for the class?"""
        ...

    def decide(self, graph: PropertyGraph, left: Node, right: Node) -> dict[str, Any] | None:
        """None when no link; otherwise the properties of the new edge."""
        ...

    def invalidate(self) -> None:
        """Drop any per-graph caches (called when the graph changed)."""
        ...


@dataclass
class FamilyLinkCandidate:
    """Bayesian personal-link decision for one family link class."""

    classifier: BayesianLinkClassifier
    threshold: float = 0.5
    blocking: Any = None

    @property
    def link_class(self) -> str:
        return self.classifier.link_class

    def accepts(self, left: Node, right: Node) -> bool:
        return left.label == PERSON and right.label == PERSON

    def decide(self, graph: PropertyGraph, left: Node, right: Node) -> dict[str, Any] | None:
        probability = self.classifier.probability(left.properties, right.properties)
        if probability > self.threshold:
            return {"probability": round(probability, 6)}
        return None

    def invalidate(self) -> None:
        pass  # decision depends on node features only


def default_family_candidates(
    threshold: float = 0.5,
) -> list[FamilyLinkCandidate]:
    """One untrained (prior-default) candidate per family link class."""
    return [
        FamilyLinkCandidate(classifier, threshold)
        for classifier in default_classifiers()
    ]


@dataclass
class ControlCandidate:
    """Company control (Definition 2.3) as a pairwise candidate.

    ``decide(x, y)`` answers from a memoised per-source control closure.
    """

    link_class: str = "control"
    threshold: float = CONTROL_THRESHOLD
    blocking: Any = None
    _cache: dict[NodeId, set[NodeId]] = field(default_factory=dict)

    def accepts(self, left: Node, right: Node) -> bool:
        return left.label in (COMPANY, PERSON) and right.label == COMPANY

    def decide(self, graph: PropertyGraph, left: Node, right: Node) -> dict[str, Any] | None:
        if left.id not in self._cache:
            assert isinstance(graph, CompanyGraph)
            self._cache[left.id] = controlled_by(graph, left.id, self.threshold)
        if right.id in self._cache[left.id]:
            return {}
        return None

    def invalidate(self) -> None:
        self._cache.clear()


@dataclass
class CloseLinkCandidate:
    """Close links (Definition 2.6) as a pairwise candidate.

    Memoises the full close-link relation (with witnesses) on first use.
    """

    link_class: str = "close_link"
    threshold: float = CLOSE_LINK_THRESHOLD
    max_depth: int | None = 12
    blocking: Any = None
    _pairs: dict[tuple[NodeId, NodeId], dict[str, Any]] | None = None

    def accepts(self, left: Node, right: Node) -> bool:
        return left.label == COMPANY and right.label == COMPANY

    def decide(self, graph: PropertyGraph, left: Node, right: Node) -> dict[str, Any] | None:
        if self._pairs is None:
            assert isinstance(graph, CompanyGraph)
            self._pairs = {}
            for link in close_links(graph, self.threshold, self.max_depth):
                self._pairs.setdefault(
                    (link.x, link.y),
                    {"reason": link.reason, "witness": link.witness, "phi": link.phi},
                )
        return self._pairs.get((left.id, right.id))

    def invalidate(self) -> None:
        self._pairs = None
