"""The Vada-Link KG-augmentation loop (Algorithm 1).

Given a property graph and a set of link classes, the loop:

1. first-level clusters all nodes with node2vec embeddings
   (``GraphEmbedClust``);
2. partitions each cluster into feature blocks (``GenerateBlocks``);
3. inside each block, evaluates every ``Candidate`` rule on every ordered
   node pair, adding the predicted typed edges;
4. repeats — newly added edges change the embeddings, which can regroup
   nodes and surface new candidates (the paper's *reinforcement
   principle*) — until a fixpoint or the round budget.

The returned :class:`AugmentationResult` keeps the counters the paper's
experiments report (comparisons performed vs the quadratic worst case,
edges per class, rounds, elapsed time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..embeddings.incremental import IncrementalEmbedder
from ..embeddings.node2vec import Node2VecConfig, embed_and_cluster
from ..graph.property_graph import Edge, Node, PropertyGraph
from ..telemetry import NULL_TRACER
from .blocking import BlockingScheme
from .candidates import CandidateRule


@dataclass
class VadaLinkConfig:
    """Tuning knobs of the augmentation loop."""

    first_level_clusters: int = 10
    use_embeddings: bool = True
    node2vec: Node2VecConfig = field(
        default_factory=lambda: Node2VecConfig(
            dimensions=24, walk_length=15, num_walks=6, epochs=2, window=4
        )
    )
    #: node features folded into the embedding as token nodes — the paper's
    #: "similarity evaluated on both features and role in the topology"
    #: per-feature token weights: the household signal is sharper than the
    #: (Zipf-heavy) surname signal, so address tokens weigh more
    embedding_features: "tuple[str, ...] | dict[str, float]" = field(
        default_factory=lambda: {"surname": 1.0, "address": 3.0}
    )
    blocking: BlockingScheme = field(default_factory=BlockingScheme.default)
    max_rounds: int = 3
    recursive: bool = True  # re-embed after each round that added edges
    #: warm re-embedding between rounds: cache adjacency/walks/model/centroids
    #: and recompute only the dirty region around the round's new edges;
    #: False falls back to full from-scratch re-embedding every round
    incremental: bool = True
    #: radius (structural hops) of the dirty region around a new edge
    dirty_hops: int = 2


@dataclass
class AugmentationResult:
    """An augmented graph plus the run's accounting."""

    graph: PropertyGraph
    new_edges: list[Edge]
    rounds: int
    comparisons: int
    elapsed_seconds: float
    edges_by_class: dict[str, int] = field(default_factory=dict)

    @property
    def total_new_edges(self) -> int:
        return len(self.new_edges)


class VadaLink:
    """The framework object: candidate rules + configuration."""

    def __init__(
        self,
        candidate_rules: Sequence[CandidateRule],
        config: VadaLinkConfig | None = None,
        tracer=None,
    ):
        if not candidate_rules:
            raise ValueError("VadaLink needs at least one candidate rule")
        self.candidate_rules = list(candidate_rules)
        self.config = config if config is not None else VadaLinkConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------

    def augment(self, graph: PropertyGraph) -> AugmentationResult:
        """Run Algorithm 1 on a copy of ``graph`` and return the result."""
        config = self.config
        augmented = graph.copy()
        predicted_classes = {rule.link_class for rule in self.candidate_rules}
        existing: set[tuple] = {
            (edge.source, edge.target, edge.label)
            for edge in augmented.edges()
            if edge.label in predicted_classes
        }
        new_edges: list[Edge] = []
        edges_by_class: dict[str, int] = {}
        comparisons = 0
        rounds = 0
        started = time.perf_counter()

        for rule in self.candidate_rules:
            rule.invalidate()

        # group rules sharing a blocking scheme so each scheme partitions once
        scheme_groups: list[tuple[BlockingScheme, list[CandidateRule]]] = []
        for rule in self.candidate_rules:
            scheme = getattr(rule, "blocking", None) or config.blocking
            for existing_scheme, rules in scheme_groups:
                if existing_scheme is scheme:
                    rules.append(rule)
                    break
            else:
                scheme_groups.append((scheme, [rule]))

        embedder: IncrementalEmbedder | None = None
        if (
            config.incremental
            and config.use_embeddings
            and config.first_level_clusters > 1
        ):
            embedder = IncrementalEmbedder(
                config.first_level_clusters,
                config.node2vec,
                feature_properties=config.embedding_features,
                dirty_hops=config.dirty_hops,
                tracer=self.tracer,
            )

        round_new_edges: list[Edge] | None = None
        changed = True
        while changed and rounds < config.max_rounds:
            changed = False
            rounds += 1
            with self.tracer.span(f"augment.round[{rounds}]") as round_span:
                with self.tracer.span(
                    "embed_cluster", warm=round_new_edges is not None
                ):
                    clusters = self._first_level_clusters(
                        augmented, embedder, round_new_edges
                    )
                round_comparisons = comparisons
                round_edges = len(new_edges)
                # a pair sharing several block keys (multi-pass blocking)
                # is decided at most once per (rule, round)
                seen_pairs: set[tuple] = set()
                with self.tracer.span("candidate_generation"):
                    for scheme, rules in scheme_groups:
                        for cluster_nodes in clusters.values():
                            blocks = scheme.partition(cluster_nodes)
                            for block_nodes in blocks.values():
                                if len(block_nodes) < 2:
                                    continue
                                added, compared = self._augment_block(
                                    augmented, rules, block_nodes, existing,
                                    new_edges, edges_by_class, seen_pairs,
                                )
                                comparisons += compared
                                if added:
                                    changed = True
                round_span.set("comparisons", comparisons - round_comparisons)
                round_span.set("new_edges", len(new_edges) - round_edges)
            round_new_edges = new_edges[round_edges:]
            if changed:
                for rule in self.candidate_rules:
                    rule.invalidate()
            if not config.recursive:
                break

        return AugmentationResult(
            graph=augmented,
            new_edges=new_edges,
            rounds=rounds,
            comparisons=comparisons,
            elapsed_seconds=time.perf_counter() - started,
            edges_by_class=edges_by_class,
        )

    # ------------------------------------------------------------------

    def _first_level_clusters(
        self,
        graph: PropertyGraph,
        embedder: IncrementalEmbedder | None = None,
        new_edges: list[Edge] | None = None,
    ) -> dict[int, list[Node]]:
        """``GraphEmbedClust``: node2vec + k-means, or one cluster when off."""
        config = self.config
        if not config.use_embeddings or config.first_level_clusters <= 1:
            return {0: list(graph.nodes())}
        if embedder is not None:
            assignment = embedder.embed(graph, new_edges=new_edges)
        else:
            # the incremental=False escape hatch: full re-embedding, the
            # exact seed code path
            assignment = embed_and_cluster(
                graph,
                config.first_level_clusters,
                config.node2vec,
                feature_properties=config.embedding_features,
                tracer=self.tracer,
            )
        clusters: dict[int, list[Node]] = {}
        for node in graph.nodes():
            clusters.setdefault(assignment.get(node.id, 0), []).append(node)
        return clusters

    def _augment_block(
        self,
        graph: PropertyGraph,
        rules: list[CandidateRule],
        block_nodes: list[Node],
        existing: set[tuple],
        new_edges: list[Edge],
        edges_by_class: dict[str, int],
        seen_pairs: set[tuple],
    ) -> tuple[bool, int]:
        """Candidate evaluation over all ordered pairs of one block."""
        added = False
        compared = 0
        for rule in rules:
            for i, left in enumerate(block_nodes):
                for j, right in enumerate(block_nodes):
                    if i == j or not rule.accepts(left, right):
                        continue
                    key = (left.id, right.id, rule.link_class)
                    if key in existing:
                        continue
                    pair = (id(rule), left.id, right.id)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    compared += 1
                    decision = rule.decide(graph, left, right)
                    if decision is None:
                        continue
                    edge = graph.add_edge(left.id, right.id, rule.link_class, **decision)
                    existing.add(key)
                    new_edges.append(edge)
                    edges_by_class[rule.link_class] = (
                        edges_by_class.get(rule.link_class, 0) + 1
                    )
                    added = True
        return added, compared
