"""Second-level clustering (`#GenerateBlocks`, Section 4.2).

Blocking reduces the candidate search space by mapping each node to a
block identifier computed *only from its own features* (by construction
insensitive to graph density — a property the paper leans on in the
Figure 4(d) discussion).  The function is polymorphic on node type:
persons block on demographic features, companies on registry features.

The deterministic mapping is a hash of the selected feature values,
optionally folded modulo ``k`` — exactly the device used in the Figure
4(c)/4(e) experiments, where the number of clusters is swept from 1 to
500 by controlling the size of the feature-value domain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..graph.company_graph import COMPANY, PERSON
from ..graph.property_graph import Node

BlockKey = Hashable
#: A blocker maps a node to one block key, or to a list of keys for
#: multi-pass blocking (the node joins every listed block, so a pair is
#: compared when it shares at least one key — standard record-linkage
#: practice for keys that are individually incomplete).
Blocker = Callable[[Node], "BlockKey | list[BlockKey]"]


def stable_hash(*values: object) -> int:
    """A process-stable hash of a feature tuple (``hash()`` is salted per run)."""
    hasher = hashlib.blake2b(digest_size=8)
    for value in values:
        hasher.update(repr(value).encode("utf-8"))
        hasher.update(b"\x1f")
    return int.from_bytes(hasher.digest(), "big")


def feature_blocker(features: tuple[str, ...], k: int | None = None) -> Blocker:
    """Block on the exact values of ``features``; fold into ``k`` blocks if given."""

    def blocker(node: Node) -> BlockKey:
        values = tuple(node.properties.get(f) for f in features)
        digest = stable_hash(*values)
        return digest % k if k else values

    return blocker


def person_blocker(k: int | None = None) -> Blocker:
    """Default person blocking: lowercased surname.

    Family members share the family surname, so one block holds each
    candidate family.  Common surnames produce large blocks — exactly the
    selectivity phenomenon Section 6.1 discusses ("certain last names are
    notably more common than others"); use :func:`narrow_person_blocker`
    when finer keys are appropriate.
    """

    def blocker(node: Node) -> BlockKey:
        surname = str(node.properties.get("surname") or node.id).lower()
        return stable_hash(surname) % k if k else surname

    return blocker


def narrow_person_blocker(k: int | None = None) -> Blocker:
    """Highly selective person blocking: surname prefix + birth decade + city.

    Faster (smaller blocks) but splits some true pairs across blocks —
    the recall-vs-speed trade-off of Figures 4(c)/4(e).
    """

    def blocker(node: Node) -> BlockKey:
        surname = str(node.properties.get("surname") or "")[:3].lower()
        birth = str(node.properties.get("birth_date") or "")
        decade = birth[:3] if len(birth) >= 4 else ""
        city = node.properties.get("birth_place") or ""
        key = (surname, decade, city)
        return stable_hash(*key) % k if k else key

    return blocker


def age_banded_person_blocker(k: int) -> Blocker:
    """Two-pass person blocking with age bands shrinking in ``k``.

    This is the Section 6.1 protocol: the feature-vector domain cardinality
    is expanded to hijack the mapping into more, smaller clusters —
    "searching for siblingOf among people of the same last name and age
    range".  Pass one keys on (surname, age band) — catching siblings and
    father-child pairs — and pass two on (address, age band) — catching
    cohabiting partners who keep different surnames.  With few clusters
    the year bands are decades wide and every related pair lands together;
    as ``k`` grows the bands tighten below the age gaps inside families
    (parent-child ~30 years, partners and siblings a few), so true pairs
    start splitting — the recall/speed trade-off of Figures 4(c)/4(e).
    """
    if k <= 1:
        return single_block()
    band_width = max(1, 6000 // k)

    def band_of(node: Node) -> int:
        birth = str(node.properties.get("birth_date") or "")
        year = int(birth[:4]) if len(birth) >= 4 and birth[:4].isdigit() else 0
        return year // band_width

    def blocker(node: Node) -> list[BlockKey]:
        surname = str(node.properties.get("surname") or node.id).lower()
        address = str(node.properties.get("address") or node.id)
        band = band_of(node)
        return [("surname", surname, band), ("household", address, band)]

    return blocker


def household_blocker(k: int | None = None) -> Blocker:
    """Person blocking by address — the right key for PartnerOf links."""

    def blocker(node: Node) -> BlockKey:
        address = node.properties.get("address") or node.id
        return stable_hash(address) % k if k else address

    return blocker


def phonetic_person_blocker(k: int | None = None) -> Blocker:
    """Person blocking on the Soundex code of the surname.

    Typo-robust: a vowel substitution (the dominant noise in the data)
    keeps the code unchanged, so corrupted records still co-block with
    their family — lifting the recall ceiling plain surname blocking
    hits on noisy data.
    """
    from ..linkage.similarity import soundex

    def blocker(node: Node) -> BlockKey:
        surname = str(node.properties.get("surname") or node.id)
        code = soundex(surname)
        return stable_hash(code) % k if k else code

    return blocker


def multi_blocker(*blockers: Blocker) -> Blocker:
    """Multi-pass blocking: the union of several blockers' keys.

    Each inner blocker's keys are namespaced by its position so passes
    never collide (pass 0's "Rossi" is a different block than pass 1's).
    """

    def blocker(node: Node) -> list[BlockKey]:
        keys: list[BlockKey] = []
        for index, inner in enumerate(blockers):
            result = inner(node)
            if isinstance(result, list):
                keys.extend((index, key) for key in result)
            else:
                keys.append((index, result))
        return keys

    return blocker


def default_person_blocker(k: int | None = None) -> Blocker:
    """The default person blocking: phonetic-surname pass + household pass.

    The surname pass catches siblings and parent/child (who share it,
    Soundex-coded so typos do not split them); the household pass catches
    cohabiting partners with different surnames.
    """
    return multi_blocker(phonetic_person_blocker(k), household_blocker(k))


def company_blocker(k: int | None = None) -> Blocker:
    """Default company blocking: legal form + registered city."""

    def blocker(node: Node) -> BlockKey:
        legal_form = node.properties.get("legal_form") or ""
        address = str(node.properties.get("address") or "")
        city = address.rsplit(",", 1)[-1].strip() if address else ""
        key = (legal_form, city)
        return stable_hash(*key) % k if k else key

    return blocker


def single_block() -> Blocker:
    """The paper's "no cluster mode": every node in one block (exhaustive)."""
    return lambda node: 0


@dataclass
class BlockingScheme:
    """Polymorphic `#GenerateBlocks`: one blocker per node label.

    Nodes whose label has no registered blocker fall into a per-label
    catch-all block (they are still compared among themselves).  An
    ``exhaustive`` scheme puts *every* node — across labels — into one
    block: the paper's "no cluster mode" where cross-type candidates
    (e.g. person-controls-company) are all evaluated.
    """

    blockers: dict[str, Blocker] = field(default_factory=dict)
    exhaustive_mode: bool = False

    @classmethod
    def default(cls, k: int | None = None) -> "BlockingScheme":
        return cls({PERSON: default_person_blocker(k), COMPANY: company_blocker(k)})

    @classmethod
    def exhaustive(cls) -> "BlockingScheme":
        return cls({}, exhaustive_mode=True)

    def blocks_of(self, node: Node) -> list[BlockKey]:
        """All block keys of a node (several under multi-pass blocking)."""
        if self.exhaustive_mode:
            return [0]
        blocker = self.blockers.get(node.label or "")
        if blocker is None:
            return [("__label__", node.label)]
        keys = blocker(node)
        if isinstance(keys, list):
            return [(node.label, key) for key in keys]
        return [(node.label, keys)]

    def block_of(self, node: Node) -> BlockKey:
        """The node's first (or only) block key."""
        return self.blocks_of(node)[0]

    def partition(self, nodes: list[Node]) -> dict[BlockKey, list[Node]]:
        """Group ``nodes`` into blocks; a node joins every block it keys to."""
        blocks: dict[BlockKey, list[Node]] = {}
        for node in nodes:
            for key in self.blocks_of(node):
                blocks.setdefault(key, []).append(node)
        return blocks
