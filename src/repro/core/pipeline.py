"""End-to-end reasoning pipeline — the "reasoning API" of Section 5.

:class:`ReasoningPipeline` takes a :class:`CompanyGraph`, builds the KG
(extensional component via the Section 3 relational mapping, intensional
component from the Algorithm 2-9 programs), wires the external functions
(`$link_probability`, `$graph_embed_clust`, `$generate_blocks`) and
exposes the per-problem entry points applications call:

* :meth:`control_pairs` — company control (Definition 2.3);
* :meth:`close_link_pairs` — close links (Definition 2.6), with an
  automatic procedural fallback on cyclic graphs where the declarative
  walk-sum would diverge;
* :meth:`family_links` — Bayesian personal-link detection within blocks;
* :meth:`family_control_pairs` — family control (Definition 2.8);
* :meth:`augment` — everything at once, returning the augmented graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..datalog.engine import Engine
from ..datalog.incremental import IncrementalEngine
from ..datalog.terms import skolem
from ..embeddings.node2vec import Node2VecConfig, embed_and_cluster
from ..graph.company_graph import FAMILY, CompanyGraph
from ..graph.property_graph import NodeId
from ..linkage.bayes import BayesianLinkClassifier
from ..linkage.training import default_classifiers
from ..ownership.close_links import close_link_pairs as procedural_close_links
from ..ownership.close_links import is_acyclic
from ..telemetry import NULL_TRACER
from .blocking import BlockingScheme
from .kg import KnowledgeGraph
from .programs import (
    close_link_program,
    control_program,
    family_close_link_program,
    family_control_program,
    family_link_program,
    input_mapping,
    link_creation,
    output_mapping,
)

FAMILY_LINK_CLASSES = ("partner_of", "sibling_of", "parent_of")


@dataclass
class PipelineConfig:
    """Thresholds and clustering configuration of the pipeline."""

    control_threshold: float = 0.5
    close_link_threshold: float = 0.2
    family_probability_threshold: float = 0.5
    first_level_clusters: int = 10
    use_embeddings: bool = True
    node2vec: Node2VecConfig = field(
        default_factory=lambda: Node2VecConfig(
            dimensions=24, walk_length=15, num_walks=6, epochs=2, window=4
        )
    )
    #: per-feature token weights: the household signal is sharper than the
    #: (Zipf-heavy) surname signal, so address tokens weigh more
    embedding_features: "tuple[str, ...] | dict[str, float]" = field(
        default_factory=lambda: {"surname": 1.0, "address": 3.0}
    )
    blocking: BlockingScheme = field(default_factory=BlockingScheme.default)
    close_links_via: str = "auto"  # "auto" | "datalog" | "procedural"
    max_path_depth: int = 12       # procedural fallback bound on cyclic graphs
    #: maintain one IncrementalEngine per rule-set selection instead of
    #: re-running each fixpoint from scratch: repeated :meth:`reason`
    #: calls over a drifting extensional component apply only the EDB
    #: delta (the cold per-call engine remains the oracle; provenance
    #: requests always take the cold path)
    incremental_reasoning: bool = False


class ReasoningPipeline:
    """Builds the company KG and answers the paper's three problems."""

    def __init__(
        self,
        graph: CompanyGraph,
        config: PipelineConfig | None = None,
        classifiers: Sequence[BayesianLinkClassifier] | None = None,
        tracer=None,
        cluster_assignment: "dict[NodeId, int] | None" = None,
    ):
        self.graph = graph
        self.config = config if config is not None else PipelineConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: first-level cluster assignment computed outside the pipeline
        #: (e.g. by a warm :class:`~repro.embeddings.IncrementalEmbedder`
        #: between snapshot builds); when set it replaces the internal
        #: ``embed_and_cluster`` call in :meth:`compute_blocks`
        self.cluster_assignment = cluster_assignment
        if classifiers is None:
            classifiers = default_classifiers()
        self.classifiers = {c.link_class: c for c in classifiers}
        # rule-set selection -> maintained IncrementalEngine (only used
        # when config.incremental_reasoning is on); reset whenever the KG
        # object is rebuilt (e.g. by materialise_families)
        self._incremental_cache: dict[
            tuple, tuple[IncrementalEngine, frozenset]
        ] = {}
        self._incremental_kg: KnowledgeGraph | None = None
        with self.tracer.span("pipeline.build", nodes=graph.node_count):
            self.kg = KnowledgeGraph(graph)
            self._add_family_member_facts()
            self._register_functions()
            self._install_programs()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _add_family_member_facts(self) -> None:
        """Family membership edges in the PG become family_member EDB facts."""
        for edge in self.graph.edges(FAMILY):
            self.kg.add_fact("family_member", (edge.source, edge.target))

    def _register_functions(self) -> None:
        person_features = {
            skolem("sk_p", (node.id,)): node.properties
            for node in self.graph.persons()
        }

        def link_probability(link_class: str, x: str, y: str) -> float:
            classifier = self.classifiers.get(link_class)
            left = person_features.get(x)
            right = person_features.get(y)
            if classifier is None or left is None or right is None:
                return 0.0
            return classifier.probability(left, right)

        self.kg.register_function("link_probability", link_probability)

    def _install_programs(self) -> None:
        config = self.config
        self.kg.add_rules("input_mapping", input_mapping(include_families=True))
        self.kg.add_rules("control", control_program(config.control_threshold))
        self.kg.add_rules("close_link", close_link_program(config.close_link_threshold))
        self.kg.add_rules(
            "family_control", family_control_program(config.control_threshold)
        )
        self.kg.add_rules(
            "family_close_link",
            family_close_link_program(config.close_link_threshold),
        )
        self.kg.add_rules(
            "family_links",
            family_link_program(
                FAMILY_LINK_CLASSES,
                threshold=config.family_probability_threshold,
                blocked=True,
            ),
        )
        all_classes = ("control", "close_link") + FAMILY_LINK_CLASSES
        self.kg.add_rules("link_creation", link_creation(all_classes))
        self.kg.add_rules("output_mapping", output_mapping(all_classes))

    # ------------------------------------------------------------------
    # blocking (Algorithm 3 rule 1, computed pipeline-side)
    # ------------------------------------------------------------------

    def compute_blocks(self) -> list[tuple[int, object, str]]:
        """(first-level cluster, second-level block, skolem node id) triples."""
        config = self.config
        with self.tracer.span("pipeline.blocking") as span:
            if self.cluster_assignment is not None:
                assignment = self.cluster_assignment
            elif config.use_embeddings and config.first_level_clusters > 1:
                with self.tracer.span(
                    "embed_cluster", clusters=config.first_level_clusters
                ):
                    assignment = embed_and_cluster(
                        self.graph,
                        config.first_level_clusters,
                        config.node2vec,
                        feature_properties=config.embedding_features,
                        tracer=self.tracer,
                    )
            else:
                assignment = {node: 0 for node in self.graph.node_ids()}
            triples: list[tuple[int, object, str]] = []
            for node in self.graph.persons():
                sk_id = skolem("sk_p", (node.id,))
                for block in config.blocking.blocks_of(node):
                    triples.append((assignment.get(node.id, 0), block, sk_id))
            span.set("block_triples", len(triples))
        return triples

    def _inject_block_facts(self) -> None:
        for first, second, sk_id in self.compute_blocks():
            self.kg.add_fact("block", (first, _hashable(second), sk_id))

    def register_declarative_blocking(self) -> None:
        """Algorithm 3 rule (1) run *inside* the engine.

        Registers ``$graph_embed_clust`` and ``$generate_blocks`` as
        external functions answering from state computed over the whole
        graph (matching the paper's stateful-aggregation reading) and
        installs the ``blocking_program`` rule, so ``block`` facts are
        derived by the chase instead of injected.  Multi-pass block keys
        are flattened into one key per node here (the declarative rule
        produces a single ``block`` fact per node), so use
        :meth:`reason` with ``with_blocks=True`` when multi-pass recall
        matters; this path exists for fidelity to Algorithm 3.
        """
        from .programs import blocking_program

        config = self.config
        if config.use_embeddings and config.first_level_clusters > 1:
            assignment = embed_and_cluster(
                self.graph,
                config.first_level_clusters,
                config.node2vec,
                feature_properties=config.embedding_features,
                tracer=self.tracer,
            )
        else:
            assignment = {node: 0 for node in self.graph.node_ids()}

        sk_to_node = {
            skolem("sk_p", (node.id,)): node for node in self.graph.persons()
        }
        sk_to_node.update(
            (skolem("sk_c", (node.id,)), node) for node in self.graph.companies()
        )

        def graph_embed_clust(sk_id: str) -> int:
            node = sk_to_node.get(sk_id)
            return assignment.get(node.id, 0) if node is not None else 0

        def generate_blocks(sk_id: str) -> object:
            node = sk_to_node.get(sk_id)
            if node is None:
                return "__unknown__"
            return _hashable(config.blocking.block_of(node))

        self.kg.register_function("graph_embed_clust", graph_embed_clust)
        self.kg.register_function("generate_blocks", generate_blocks)
        self.kg.add_rules("blocking", blocking_program())

    # ------------------------------------------------------------------
    # reasoning entry points
    # ------------------------------------------------------------------

    def reason(
        self,
        names: list[str] | None = None,
        provenance: bool = False,
        with_blocks: bool = False,
    ) -> Engine:
        """Run the selected rule sets (all, by default) and return the engine."""
        label = "pipeline.reason[" + (",".join(names) if names else "all") + "]"
        with self.tracer.span(label):
            if with_blocks:
                self._inject_block_facts()
            if self.config.incremental_reasoning and not provenance:
                return self._incremental_reason(names)
            return self.kg.reason(names, provenance=provenance, tracer=self.tracer)

    def _incremental_reason(self, names: list[str] | None) -> Engine:
        """Serve :meth:`reason` from a maintained incremental fixpoint.

        One :class:`IncrementalEngine` is kept per rule-set selection; on
        each call the KG's extensional component is diffed against the
        maintained EDB (order-preserving) and only the delta is applied.
        The cache is dropped whenever ``self.kg`` is rebuilt, since a new
        KG means new rule sets and new facts wholesale.
        """
        if self._incremental_kg is not self.kg:
            self._incremental_cache.clear()
            self._incremental_kg = self.kg
        if names is None:
            key: tuple = ("*", tuple(self.kg.rule_sets()))
        else:
            key = tuple(names)
        current = list(self.kg.extensional.all_facts())
        cached = self._incremental_cache.get(key)
        if cached is None:
            program = self.kg.program(names)
            # facts declared by the rule sets themselves (e.g. the
            # link_class vocabulary) live in the maintained EDB but not
            # in kg.extensional: exempt them from the removal diff
            program_facts = frozenset(
                (predicate, tuple(values)) for predicate, values in program.facts
            )
            maintained = IncrementalEngine(
                program,
                current,
                functions=self.kg.functions,
                tracer=self.tracer,
            )
            self._incremental_cache[key] = (maintained, program_facts)
            return maintained.engine
        maintained, program_facts = cached
        current_set = set(current)
        edb = maintained.edb_facts()
        edb_set = set(edb)
        additions = [fact for fact in current if fact not in edb_set]
        removals = [
            fact
            for fact in edb
            if fact not in current_set and fact not in program_facts
        ]
        if additions or removals:
            maintained.update(additions=additions, removals=removals)
        return maintained.engine

    def control_pairs(self, provenance: bool = False) -> set[tuple[NodeId, NodeId]]:
        """Control pairs (external ids) via the declarative Algorithm 5."""
        with self.tracer.span("problem.control") as span:
            engine = self.reason(
                ["input_mapping", "control", "link_creation", "output_mapping"],
                provenance=provenance,
            )
            self.last_engine = engine
            pairs = {(x, y) for x, y in engine.query("control")}
            span.set("pairs", len(pairs))
        return pairs

    def close_link_pairs(self) -> set[tuple[NodeId, NodeId]]:
        """Close-link pairs; declarative when safe, procedural otherwise."""
        mode = self.config.close_links_via
        if mode == "auto":
            mode = "datalog" if is_acyclic(self.graph) else "procedural"
        with self.tracer.span("problem.close_link", mode=mode) as span:
            if mode == "procedural":
                pairs = procedural_close_links(
                    self.graph,
                    self.config.close_link_threshold,
                    max_depth=self.config.max_path_depth,
                )
            else:
                engine = self.reason(
                    ["input_mapping", "close_link", "link_creation", "output_mapping"]
                )
                self.last_engine = engine
                pairs = {(x, y) for x, y in engine.query("close_link")}
            span.set("pairs", len(pairs))
        return pairs

    def family_links(self) -> set[tuple[NodeId, NodeId, str]]:
        """Personal links detected by the Bayesian classifiers inside blocks."""
        with self.tracer.span("problem.family_links") as span:
            engine = self.reason(
                ["input_mapping", "family_links", "link_creation", "output_mapping"],
                with_blocks=True,
            )
            self.last_engine = engine
            links: set[tuple[NodeId, NodeId, str]] = set()
            for link_class in FAMILY_LINK_CLASSES:
                for x, y in engine.query(link_class):
                    links.add((x, y, link_class))
            span.set("links", len(links))
        return links

    def family_control_pairs(self) -> set[tuple[NodeId, NodeId]]:
        """(family, company) control pairs via Algorithm 8.

        Requires family nodes/edges in the graph (e.g. added by
        :meth:`materialise_families` after family-link detection).
        """
        with self.tracer.span("problem.family_control") as span:
            engine = self.reason(
                [
                    "input_mapping",
                    "control",
                    "family_control",
                    "link_creation",
                    "output_mapping",
                ]
            )
            self.last_engine = engine
            family_ids = {edge.target for edge in self.graph.edges(FAMILY)}
            pairs = {(x, y) for x, y in engine.query("control") if x in family_ids}
            span.set("pairs", len(pairs))
        return pairs

    # ------------------------------------------------------------------
    # augmentation
    # ------------------------------------------------------------------

    def materialise_families(
        self, links: Iterable[tuple[NodeId, NodeId, str]]
    ) -> dict[str, set[NodeId]]:
        """Group linked persons into family nodes on the pipeline's graph.

        Connected components of the detected personal-link relation
        become families: a family node is added with ``family`` edges
        from each member.  Returns family id -> members.
        """
        parent: dict[NodeId, NodeId] = {}

        def find(x: NodeId) -> NodeId:
            parent.setdefault(x, x)
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for x, y, _ in links:
            parent.setdefault(x, x)
            parent.setdefault(y, y)
            parent[find(x)] = find(y)

        groups: dict[NodeId, set[NodeId]] = {}
        for member in parent:
            groups.setdefault(find(member), set()).add(member)

        families: dict[str, set[NodeId]] = {}
        for index, members in enumerate(
            sorted(groups.values(), key=lambda g: sorted(map(str, g)))
        ):
            if len(members) < 2:
                continue
            family_id = f"FAM{index:05d}"
            families[family_id] = members
            if not self.graph.has_node(family_id):
                self.graph.add_node(family_id, "F")
            for member in sorted(members, key=str):
                self.graph.add_edge(member, family_id, FAMILY)
        # refresh the KG facts to include the new membership edges
        self.kg = KnowledgeGraph(self.graph)
        self._add_family_member_facts()
        self._register_functions()
        self._install_programs()
        return families

    def augment(self) -> CompanyGraph:
        """Run all three problems and return a copy of the graph with the
        predicted typed edges added (control / close_link / family links)."""
        with self.tracer.span("pipeline.augment") as span:
            augmented = self.graph.copy()

            def add(x: NodeId, y: NodeId, label: str, **properties) -> None:
                if augmented.has_node(x) and augmented.has_node(y):
                    augmented.add_edge(x, y, label, **properties)

            for x, y, link_class in self.family_links():
                add(x, y, link_class)
            for x, y in self.control_pairs():
                add(x, y, "control")
            for x, y in self.close_link_pairs():
                add(x, y, "close_link")
            span.set("new_edges", augmented.edge_count - self.graph.edge_count)
        return augmented


def _hashable(value: object) -> object:
    """Block keys may be tuples of tuples; flatten to a stable string."""
    if isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)
