"""The Knowledge Graph object: extensional component + intensional rules.

Per the paper, a KG combines an *extensional component* (the data — here
the relational representation of a property graph) with an *intensional
component* (domain knowledge as Vadalog rules).  :class:`KnowledgeGraph`
packages the two together with the external-function registry and runs
reasoning tasks on demand, keeping the architecture principles of
Section 5: ground data in the extensional component, business rules
declarative, application logic outside.
"""

from __future__ import annotations

from typing import Any, Callable

from ..datalog.builtins import FunctionRegistry
from ..datalog.database import Database, Fact
from ..datalog.engine import Engine
from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..graph.property_graph import PropertyGraph
from ..graph.relational import COMPANY_SCHEMA, RelationalSchema, to_facts


class KnowledgeGraph:
    """Extensional facts + named rule sets + external functions."""

    def __init__(
        self,
        extensional: Database | PropertyGraph | list[Fact] | None = None,
        schema: RelationalSchema = COMPANY_SCHEMA,
    ):
        if extensional is None:
            self.extensional = Database()
        elif isinstance(extensional, Database):
            self.extensional = extensional
        elif isinstance(extensional, PropertyGraph):
            self.extensional = to_facts(extensional, schema)
        else:
            self.extensional = Database(extensional)
        self.schema = schema
        self.functions = FunctionRegistry()
        self._rule_sets: dict[str, Program] = {}

    # ------------------------------------------------------------------
    # intensional component
    # ------------------------------------------------------------------

    def add_rules(self, name: str, rules: str | Program) -> None:
        """Register (or replace) a named rule set."""
        if isinstance(rules, str):
            rules = parse_program(rules)
        self._rule_sets[name] = rules

    def remove_rules(self, name: str) -> None:
        self._rule_sets.pop(name, None)

    def rule_sets(self) -> list[str]:
        return list(self._rule_sets)

    def program(self, names: list[str] | None = None) -> Program:
        """The concatenation of the selected (or all) rule sets."""
        combined = Program()
        for name, rules in self._rule_sets.items():
            if names is None or name in names:
                combined.extend(rules)
        return combined

    # ------------------------------------------------------------------
    # external functions
    # ------------------------------------------------------------------

    def register_function(self, name: str, function: Callable[..., Any]) -> None:
        self.functions.register(name, function)

    # ------------------------------------------------------------------
    # facts
    # ------------------------------------------------------------------

    def add_fact(self, predicate: str, values: tuple) -> None:
        self.extensional.add(predicate, values)

    def add_facts(self, facts: list[Fact]) -> None:
        self.extensional.add_all(facts)

    # ------------------------------------------------------------------
    # reasoning
    # ------------------------------------------------------------------

    def reason(
        self,
        names: list[str] | None = None,
        provenance: bool = False,
        max_iterations: int = 1_000_000,
        tracer=None,
    ) -> Engine:
        """Run the selected rule sets over a *copy* of the extensional data.

        The extensional component is never mutated by reasoning — derived
        facts live in the returned engine's database (the paper's "do not
        let business logic drift into the KG extensional component").
        ``tracer`` (a :class:`repro.telemetry.Tracer`) collects the
        engine's per-stratum / per-rule spans when given.
        """
        engine = Engine(
            self.program(names),
            self.extensional.copy(),
            functions=self.functions,
            provenance=provenance,
            max_iterations=max_iterations,
            tracer=tracer,
        )
        engine.run()
        return engine
