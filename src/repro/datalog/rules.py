"""Existential rules (tuple-generating dependencies) and safety analysis.

A rule is a first-order sentence ``body -> head`` where the body is a
conjunction of literals and the head a conjunction of atoms.  Head
variables that do not occur in the body are *existential*: the chase
invents a labelled null for them, one per binding of the frontier
variables (skolemized chase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .atoms import (
    AGGREGATE_FUNCS,
    Aggregate,
    Assignment,
    Atom,
    BodyLiteral,
    Comparison,
    Negation,
)
from .errors import UnsafeRuleError
from .terms import Variable


@dataclass(frozen=True)
class Rule:
    """An existential rule with optional label (used in provenance)."""

    body: tuple[BodyLiteral, ...]
    head: tuple[Atom, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.head:
            raise UnsafeRuleError("a rule must have at least one head atom")
        self._check_safety()

    # ------------------------------------------------------------------
    # variable classification
    # ------------------------------------------------------------------

    def positive_atoms(self) -> Iterator[Atom]:
        for literal in self.body:
            if isinstance(literal, Atom):
                yield literal

    def positive_positions(self) -> tuple[int, ...]:
        """Body indexes of the positive atoms.

        Cached on the instance: the semi-naive engine consults this for
        every rule on every round to map delta predicates onto seed
        occurrences.
        """
        cached = self.__dict__.get("_positive_positions")
        if cached is None:
            cached = tuple(
                index
                for index, literal in enumerate(self.body)
                if isinstance(literal, Atom)
            )
            object.__setattr__(self, "_positive_positions", cached)
        return cached

    def negated_atoms(self) -> Iterator[Negation]:
        for literal in self.body:
            if isinstance(literal, Negation):
                yield literal

    def aggregates(self) -> Iterator[Aggregate]:
        for literal in self.body:
            if isinstance(literal, Aggregate):
                yield literal

    def body_variables(self) -> set[Variable]:
        """Variables bound by the body: positive atoms + assignments + aggregates."""
        bound: set[Variable] = set()
        for literal in self.body:
            if isinstance(literal, Atom):
                bound.update(literal.variables())
            elif isinstance(literal, (Assignment, Aggregate)):
                bound.add(literal.variable)
        return bound

    def head_variables(self) -> set[Variable]:
        head_vars: set[Variable] = set()
        for atom in self.head:
            head_vars.update(atom.variables())
        return head_vars

    def frontier_variables(self) -> set[Variable]:
        """Variables shared between body and head (the rule's frontier)."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> set[Variable]:
        """Head variables not bound anywhere in the body."""
        return self.head_variables() - self.body_variables()

    def is_existential(self) -> bool:
        return bool(self.existential_variables())

    def head_predicates(self) -> set[str]:
        return {atom.predicate for atom in self.head}

    def body_predicates(self) -> set[str]:
        predicates: set[str] = set()
        for literal in self.body:
            if isinstance(literal, Atom):
                predicates.add(literal.predicate)
            elif isinstance(literal, Negation):
                predicates.add(literal.atom.predicate)
        return predicates

    # ------------------------------------------------------------------
    # safety
    # ------------------------------------------------------------------

    def _check_safety(self) -> None:
        """Verify the rule is range-restricted.

        Walking the body left to right, every variable consumed by a
        comparison, negation, assignment expression or aggregate must have
        been bound by an earlier positive atom, assignment or aggregate.
        """
        bound: set[Variable] = set()
        for literal in self.body:
            if isinstance(literal, Atom):
                bound.update(literal.variables())
            elif isinstance(literal, Negation):
                unbound = set(literal.variables()) - bound
                if unbound:
                    names = ", ".join(sorted(v.name for v in unbound))
                    raise UnsafeRuleError(
                        f"negated atom {literal} uses unbound variable(s) {names}"
                    )
            elif isinstance(literal, Comparison):
                unbound = set(literal.variables()) - bound
                if unbound:
                    names = ", ".join(sorted(v.name for v in unbound))
                    raise UnsafeRuleError(
                        f"comparison {literal} uses unbound variable(s) {names}"
                    )
            elif isinstance(literal, Assignment):
                unbound = set(literal.variables()) - bound
                if unbound:
                    names = ", ".join(sorted(v.name for v in unbound))
                    raise UnsafeRuleError(
                        f"assignment {literal} uses unbound variable(s) {names}"
                    )
                bound.add(literal.variable)
            elif isinstance(literal, Aggregate):
                if literal.func not in AGGREGATE_FUNCS:
                    raise UnsafeRuleError(f"unknown aggregate function {literal.func!r}")
                unbound = set(literal.variables()) - bound
                if unbound:
                    names = ", ".join(sorted(v.name for v in unbound))
                    raise UnsafeRuleError(
                        f"aggregate {literal} uses unbound variable(s) {names}"
                    )
                bound.add(literal.variable)

    def __str__(self) -> str:
        body = ", ".join(str(literal) for literal in self.body)
        head = ", ".join(str(atom) for atom in self.head)
        return f"{body} -> {head}."


@dataclass
class Program:
    """An ordered collection of rules plus facts declared in the source text."""

    rules: list[Rule] = field(default_factory=list)
    facts: list[tuple[str, tuple]] = field(default_factory=list)

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_fact(self, predicate: str, values: tuple) -> None:
        self.facts.append((predicate, values))

    def extend(self, other: "Program") -> None:
        """Append all rules and facts of ``other`` to this program."""
        self.rules.extend(other.rules)
        self.facts.extend(other.facts)

    def idb_predicates(self) -> set[str]:
        """Predicates that appear in some rule head (intensional)."""
        idb: set[str] = set()
        for rule in self.rules:
            idb.update(rule.head_predicates())
        return idb

    def edb_predicates(self) -> set[str]:
        """Predicates only ever used in bodies or fact declarations (extensional)."""
        idb = self.idb_predicates()
        edb: set[str] = set()
        for rule in self.rules:
            edb.update(rule.body_predicates() - idb)
        for predicate, _ in self.facts:
            if predicate not in idb:
                edb.add(predicate)
        return edb

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __str__(self) -> str:
        lines = [str(rule) for rule in self.rules]
        for predicate, values in self.facts:
            rendered = ", ".join(repr(v) for v in values)
            lines.append(f"{predicate}({rendered}).")
        return "\n".join(lines)
