"""Exception hierarchy for the Datalog± engine.

Every error raised by :mod:`repro.datalog` derives from :class:`DatalogError`,
so callers can catch engine failures without catching unrelated bugs.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all errors raised by the Datalog engine."""


class ParseError(DatalogError):
    """Raised when program text cannot be parsed.

    Carries the offending line/column so error messages point at the source.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class StratificationError(DatalogError):
    """Raised when a program cannot be stratified.

    Happens when negation occurs inside a recursive cycle: the program has
    no unambiguous stratified semantics and the engine refuses to guess.
    """


class UnsafeRuleError(DatalogError):
    """Raised when a rule is not range-restricted.

    A rule is *safe* when every variable used in a comparison, in a negated
    atom or in an arithmetic expression is bound by a positive body atom or
    by a preceding assignment.
    """


class UnknownFunctionError(DatalogError):
    """Raised when a rule references an external function that was never registered."""


class EvaluationError(DatalogError):
    """Raised for runtime failures during fixpoint evaluation."""
