"""Expression evaluation and the external-function registry.

Expressions inside rules (arithmetic, comparisons, Skolem applications and
``$function`` calls) are evaluated against a *binding* — a dict from
variable name to value.  External functions are plain Python callables
registered under a name; this is the hook the paper uses to plug
``#GraphEmbedClust``, ``#GenerateBlocks`` and ``#LinkProbability`` into
the logic.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from .errors import EvaluationError, UnknownFunctionError
from .terms import (
    Constant,
    Expr,
    FunctionTerm,
    Null,
    SkolemTerm,
    Term,
    Variable,
    skolem,
)

Binding = dict[str, Any]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class FunctionRegistry:
    """Named external functions callable from rules as ``$name(args)``."""

    def __init__(self) -> None:
        self._functions: dict[str, Callable[..., Any]] = {}

    def register(self, name: str, function: Callable[..., Any]) -> None:
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        self._functions.pop(name, None)

    def get(self, name: str) -> Callable[..., Any]:
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(
                f"external function ${name} is not registered"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def copy(self) -> "FunctionRegistry":
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


def evaluate(term: Term, binding: Binding, functions: FunctionRegistry | None = None) -> Any:
    """Evaluate ``term`` under ``binding``; raises on unbound variables."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return binding[term.name]
        except KeyError:
            raise EvaluationError(f"variable {term.name} is unbound") from None
    if isinstance(term, Expr):
        if term.op == "neg":
            return -evaluate(term.args[0], binding, functions)
        lhs = evaluate(term.args[0], binding, functions)
        rhs = evaluate(term.args[1], binding, functions)
        try:
            return _ARITHMETIC[term.op](lhs, rhs)
        except ZeroDivisionError:
            raise EvaluationError(f"division by zero in {term}") from None
        except TypeError as exc:
            raise EvaluationError(f"type error in {term}: {exc}") from None
    if isinstance(term, SkolemTerm):
        values = tuple(evaluate(arg, binding, functions) for arg in term.args)
        return skolem(term.name, values)
    if isinstance(term, FunctionTerm):
        if functions is None:
            raise UnknownFunctionError(
                f"external function ${term.name} called but no registry supplied"
            )
        function = functions.get(term.name)
        values = [evaluate(arg, binding, functions) for arg in term.args]
        return function(*values)
    raise EvaluationError(f"cannot evaluate term of type {type(term).__name__}")


def compare(op: str, lhs: Any, rhs: Any) -> bool:
    """Apply comparison ``op``; nulls only support (in)equality."""
    if op not in _COMPARATORS:
        raise EvaluationError(f"unknown comparison operator {op!r}")
    if isinstance(lhs, Null) or isinstance(rhs, Null):
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        raise EvaluationError("labelled nulls only support == and != comparisons")
    try:
        return bool(_COMPARATORS[op](lhs, rhs))
    except TypeError:
        # mixed-type ordering (e.g. str vs int) is defined as "not comparable"
        if op in ("==",):
            return False
        if op in ("!=",):
            return True
        raise EvaluationError(
            f"cannot compare {type(lhs).__name__} with {type(rhs).__name__} using {op}"
        ) from None
