"""In-memory fact store with on-demand positional hash indexes.

Facts are stored per predicate as plain tuples of Python values.  Joins in
the engine probe :meth:`Database.match` with a partially bound pattern; the
store builds (and caches) a hash index over the bound positions the first
time a given binding shape is used for a predicate, so repeated joins run
at dictionary-lookup speed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

FactValues = tuple
Fact = tuple[str, FactValues]


class Database:
    """A mutable set of facts grouped by predicate name."""

    def __init__(self, facts: Iterable[Fact] = ()):
        # predicate -> insertion-ordered list of value tuples
        self._facts: dict[str, list[FactValues]] = defaultdict(list)
        # predicate -> set of value tuples (dedup)
        self._sets: dict[str, set[FactValues]] = defaultdict(set)
        # (predicate, bound-positions) -> {key values -> [value tuples]}
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[FactValues]]] = {}
        for predicate, values in facts:
            self.add(predicate, values)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, predicate: str, values: FactValues) -> bool:
        """Insert a fact; returns True when it was new."""
        existing = self._sets[predicate]
        if values in existing:
            return False
        existing.add(values)
        self._facts[predicate].append(values)
        for (indexed_predicate, positions), index in self._indexes.items():
            if indexed_predicate == predicate:
                key = tuple(values[p] for p in positions)
                index.setdefault(key, []).append(values)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        added = 0
        for predicate, values in facts:
            if self.add(predicate, values):
                added += 1
        return added

    def remove(self, predicate: str, values: FactValues) -> bool:
        """Remove one fact; returns True when it was present.

        Removal invalidates cached indexes for the predicate (removal is
        rare — the engine never removes during fixpoint evaluation).
        """
        existing = self._sets.get(predicate)
        if existing is None or values not in existing:
            return False
        existing.remove(values)
        self._facts[predicate].remove(values)
        for key in [k for k in self._indexes if k[0] == predicate]:
            del self._indexes[key]
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def contains(self, predicate: str, values: FactValues) -> bool:
        existing = self._sets.get(predicate)
        return existing is not None and values in existing

    def facts(self, predicate: str) -> list[FactValues]:
        """All value tuples of ``predicate`` in insertion order.

        Returns a fresh list: mutating it cannot desynchronise the store's
        insertion-order lists, dedup sets and cached indexes.  Internal
        consumers iterate via :meth:`match`, which keeps the zero-copy
        fast path.
        """
        return list(self._facts.get(predicate, ()))

    def predicates(self) -> list[str]:
        return [predicate for predicate, rows in self._facts.items() if rows]

    def match(self, predicate: str, pattern: dict[int, object]) -> Iterator[FactValues]:
        """Yield facts of ``predicate`` whose positions match ``pattern``.

        ``pattern`` maps position -> required value.  An empty pattern
        scans the predicate.
        """
        rows = self._facts.get(predicate)
        if not rows:
            return iter(())
        if not pattern:
            return iter(rows)
        positions = tuple(sorted(pattern))
        index = self._index_for(predicate, positions)
        key = tuple(pattern[p] for p in positions)
        return iter(index.get(key, ()))

    def _index_for(
        self, predicate: str, positions: tuple[int, ...]
    ) -> dict[tuple, list[FactValues]]:
        cache_key = (predicate, positions)
        index = self._indexes.get(cache_key)
        if index is None:
            index = {}
            for values in self._facts.get(predicate, ()):
                key = tuple(values[p] for p in positions)
                index.setdefault(key, []).append(values)
            self._indexes[cache_key] = index
        return index

    # ------------------------------------------------------------------
    # bulk access / misc
    # ------------------------------------------------------------------

    def all_facts(self) -> Iterator[Fact]:
        for predicate, rows in self._facts.items():
            for values in rows:
                yield (predicate, values)

    def count(self, predicate: str | None = None) -> int:
        if predicate is not None:
            return len(self._facts.get(predicate, ()))
        return sum(len(rows) for rows in self._facts.values())

    def copy(self) -> "Database":
        """An independent clone sharing no mutable state with the original.

        The dedup sets are rebuilt from the insertion-order lists (the
        single source of truth), so a clone is internally consistent even
        if the two structures ever drifted apart; indexes are not copied
        — they are rebuilt lazily on first use.
        """
        clone = Database()
        for predicate, rows in self._facts.items():
            if not rows:
                continue
            clone._facts[predicate] = list(rows)
            clone._sets[predicate] = set(rows)
        return clone

    def __contains__(self, fact: Fact) -> bool:
        predicate, values = fact
        return self.contains(predicate, values)

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        sizes = {predicate: len(rows) for predicate, rows in self._facts.items() if rows}
        return f"Database({sizes})"
