"""In-memory fact store with on-demand positional hash indexes.

Facts are stored per predicate as plain tuples of Python values.  Joins in
the engine probe :meth:`Database.match` with a partially bound pattern; the
store builds (and caches) a hash index over the bound positions the first
time a given binding shape is used for a predicate, so repeated joins run
at dictionary-lookup speed.

The join planner and the compiled rule evaluators
(:mod:`repro.datalog.planner` / :mod:`repro.datalog.compiled`) lean on two
extra guarantees this module provides:

* **index stability** — once built, the dict returned by
  :meth:`index_for` (and its bucket lists) is updated *in place* by
  :meth:`add` and :meth:`remove`, never replaced, so compiled evaluators
  may capture it once and probe it across semi-naive rounds;
* **cheap statistics** — :meth:`cardinality` and :meth:`distinct_count`
  expose the per-predicate row counts and per-index key counts the
  planner's selectivity estimates are built from.  Both answer purely
  from maintained state (list lengths / index key counts) so the
  replanning path never rescans a relation;
* **mutation counters** — :meth:`removal_count` reports how many facts
  have ever been removed from a predicate.  The columnar cache
  (:mod:`repro.datalog.columns`) keys its incremental append-sync on
  (row-list length, removal count): unchanged removals mean the live
  row list only grew, so column blocks extend in place instead of
  rebuilding.

Predicates may mix arities under one name (the engine stores ``link/3``
and ``link/4`` together); an index over positions a short tuple does not
have simply skips that tuple — it could never match a pattern binding
that position anyway.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

FactValues = tuple
Fact = tuple[str, FactValues]

#: positions-tuple -> {key values -> [value tuples]}
_PredicateIndexes = dict[tuple[int, ...], dict[tuple, list[FactValues]]]


class Database:
    """A mutable set of facts grouped by predicate name."""

    def __init__(self, facts: Iterable[Fact] = ()):
        # predicate -> insertion-ordered list of value tuples
        self._facts: dict[str, list[FactValues]] = defaultdict(list)
        # predicate -> set of value tuples (dedup)
        self._sets: dict[str, set[FactValues]] = defaultdict(set)
        # predicate -> its cached positional indexes (kept per predicate so
        # ``add`` only maintains the indexes of the predicate it touches)
        self._indexes: dict[str, _PredicateIndexes] = {}
        # predicate -> total facts ever removed (column-cache invalidation)
        self._removals: dict[str, int] = {}
        # lazily attached repro.datalog.columns.ColumnStore
        self._columns = None
        for predicate, values in facts:
            self.add(predicate, values)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, predicate: str, values: FactValues) -> bool:
        """Insert a fact; returns True when it was new."""
        existing = self._sets[predicate]
        if values in existing:
            return False
        existing.add(values)
        self._facts[predicate].append(values)
        indexes = self._indexes.get(predicate)
        if indexes:
            width = len(values)
            for positions, index in indexes.items():
                if positions[-1] < width:
                    key = tuple(values[p] for p in positions)
                    index.setdefault(key, []).append(values)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        added = 0
        for predicate, values in facts:
            if self.add(predicate, values):
                added += 1
        return added

    def remove(self, predicate: str, values: FactValues) -> bool:
        """Remove one fact; returns True when it was present.

        Cached indexes survive a removal: the tuple is deleted from each
        affected index bucket in place, so index dicts captured by
        compiled evaluators (and the work spent building them) are not
        thrown away.
        """
        existing = self._sets.get(predicate)
        if existing is None or values not in existing:
            return False
        existing.remove(values)
        self._facts[predicate].remove(values)
        self._removals[predicate] = self._removals.get(predicate, 0) + 1
        indexes = self._indexes.get(predicate)
        if indexes:
            width = len(values)
            for positions, index in indexes.items():
                if positions[-1] >= width:
                    continue
                key = tuple(values[p] for p in positions)
                bucket = index.get(key)
                if bucket is None:
                    continue
                bucket.remove(values)
                if not bucket:
                    del index[key]
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def contains(self, predicate: str, values: FactValues) -> bool:
        existing = self._sets.get(predicate)
        return existing is not None and values in existing

    def facts(self, predicate: str) -> list[FactValues]:
        """All value tuples of ``predicate`` in insertion order.

        Returns a fresh list: mutating it cannot desynchronise the store's
        insertion-order lists, dedup sets and cached indexes.  Internal
        consumers on hot paths use :meth:`iter_facts` instead.
        """
        return list(self._facts.get(predicate, ()))

    def iter_facts(self, predicate: str) -> Iterator[FactValues]:
        """Iterate the facts of ``predicate`` without copying.

        The iterator walks the live insertion-order list, so the caller
        must not mutate the database while consuming it.  The engine's
        join loops qualify: derivations are buffered and flushed only
        after each rule application's scan completes.
        """
        return iter(self._facts.get(predicate, ()))

    def predicates(self) -> list[str]:
        return [predicate for predicate, rows in self._facts.items() if rows]

    def match(self, predicate: str, pattern: dict[int, object]) -> Iterator[FactValues]:
        """Yield facts of ``predicate`` whose positions match ``pattern``.

        ``pattern`` maps position -> required value.  An empty pattern
        scans the predicate.
        """
        rows = self._facts.get(predicate)
        if not rows:
            return iter(())
        if not pattern:
            return iter(rows)
        positions = tuple(sorted(pattern))
        index = self.index_for(predicate, positions)
        key = tuple(pattern[p] for p in positions)
        return iter(index.get(key, ()))

    def index_for(
        self, predicate: str, positions: tuple[int, ...]
    ) -> dict[tuple, list[FactValues]]:
        """The live hash index of ``predicate`` over ``positions``.

        Builds the index on first use (this doubles as the planner's
        pre-warm hook) and returns the *live* dict: subsequent ``add`` /
        ``remove`` calls update it in place, so holding a reference stays
        valid for the lifetime of this database.  ``positions`` must be
        sorted ascending.
        """
        indexes = self._indexes.get(predicate)
        if indexes is None:
            indexes = self._indexes[predicate] = {}
        index = indexes.get(positions)
        if index is None:
            index = {}
            max_position = positions[-1]
            for values in self._facts.get(predicate, ()):
                if max_position < len(values):
                    key = tuple(values[p] for p in positions)
                    index.setdefault(key, []).append(values)
            indexes[positions] = index
        return index

    # ------------------------------------------------------------------
    # planner statistics
    # ------------------------------------------------------------------

    def cardinality(self, predicate: str) -> int:
        """Current number of facts of ``predicate`` (0 when absent)."""
        rows = self._facts.get(predicate)
        return len(rows) if rows is not None else 0

    def distinct_count(self, predicate: str, positions: tuple[int, ...]) -> int | None:
        """Number of distinct keys in the cached index over ``positions``.

        Answers from maintained indexes only — never by scanning rows —
        so the planner (including its replanning path) can ask freely:

        * the exact index over ``positions`` gives the exact key count;
        * otherwise, any maintained index over a *subset* of
          ``positions`` gives a lower bound (adding key positions can
          only split keys further); the largest such bound is returned;
        * with no usable index at all the answer is None and the planner
          falls back to its default selectivity heuristics.
        """
        indexes = self._indexes.get(predicate)
        if not indexes:
            return None
        exact = indexes.get(positions)
        if exact is not None:
            return len(exact)
        wanted = set(positions)
        best: int | None = None
        for built, index in indexes.items():
            if set(built) <= wanted and (best is None or len(index) > best):
                best = len(index)
        return best

    def removal_count(self, predicate: str) -> int:
        """How many facts have ever been removed from ``predicate``.

        Together with ``len(live_rows(predicate))`` this versions the
        live row list: an unchanged removal count means the list has only
        been appended to since last observed, so columnar caches can sync
        by consuming the tail instead of rebuilding.
        """
        return self._removals.get(predicate, 0)

    def column_store(self):
        """The lazily attached columnar cache (see :mod:`.columns`).

        One store per database: interned code columns per (predicate,
        arity), kept in sync with the row lists via :meth:`removal_count`.
        Raises ImportError when numpy is unavailable — callers gate on
        :data:`repro.datalog.columns.NUMPY_AVAILABLE` instead of catching.
        """
        if self._columns is None:
            from .columns import ColumnStore

            self._columns = ColumnStore(self)
        return self._columns

    # ------------------------------------------------------------------
    # internal live views (compiled-evaluator capture points)
    # ------------------------------------------------------------------

    def live_rows(self, predicate: str) -> list[FactValues]:
        """The live insertion-order row list (internal; do not mutate)."""
        return self._facts[predicate]

    def live_set(self, predicate: str) -> set[FactValues]:
        """The live dedup set (internal; do not mutate)."""
        return self._sets[predicate]

    # ------------------------------------------------------------------
    # bulk access / misc
    # ------------------------------------------------------------------

    def all_facts(self) -> Iterator[Fact]:
        for predicate, rows in self._facts.items():
            for values in rows:
                yield (predicate, values)

    def count(self, predicate: str | None = None) -> int:
        if predicate is not None:
            return len(self._facts.get(predicate, ()))
        return sum(len(rows) for rows in self._facts.values())

    def copy(self) -> "Database":
        """An independent clone sharing no mutable state with the original.

        The dedup sets are rebuilt from the insertion-order lists (the
        single source of truth), so a clone is internally consistent even
        if the two structures ever drifted apart; indexes are not copied
        — they are rebuilt lazily on first use.
        """
        clone = Database()
        for predicate, rows in self._facts.items():
            if not rows:
                continue
            clone._facts[predicate] = list(rows)
            clone._sets[predicate] = set(rows)
        if self._columns is not None:
            # column blocks snapshot over by numpy copy (cheap memcpy, and
            # the shared append-only interner keeps codes comparable), so
            # engines running over copies skip the per-value re-intern
            clone._columns = self._columns.snapshot_for(clone)
        return clone

    def __contains__(self, fact: Fact) -> bool:
        predicate, values = fact
        return self.contains(predicate, values)

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        sizes = {predicate: len(rows) for predicate, rows in self._facts.items() if rows}
        return f"Database({sizes})"
