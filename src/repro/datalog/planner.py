"""Cost-based join planning for rule bodies.

The engine historically joined body literals in textual order.  The
planner replaces that with a per-(rule, seed-occurrence) plan:

* **filters are hoisted** — comparisons, negations and assignments move
  to the earliest point at which all the variables they consume are
  bound, so unproductive bindings are cut before the next join expands
  them;
* **positive atoms are reordered by estimated selectivity** — greedy
  cheapest-next using current predicate cardinalities and a per-bound-
  position selectivity discount (an already-built index contributes its
  real distinct-key count);
* **aggregates are barriers** — a monotonic aggregate folds its
  contributions *in enumeration order* and every intermediate total
  becomes a fact under set semantics, so any atom reordering before (or
  between) aggregates would change the derived database.  Literals never
  cross an aggregate, and atoms are only reordered in the segment after
  the last aggregate; in earlier segments the plan still hoists filters
  (a filter drops bindings but never permutes the surviving stream, so
  aggregate totals are bit-for-bit unchanged).  Reordering additionally
  requires that the rule's *emission order* is unobservable — no head
  predicate may transitively feed an aggregate-bearing rule (see
  :func:`order_sensitive_predicates`), since delta order steers the
  contribution sequence of later rounds.

Plans record the cardinality snapshot they were derived from;
:meth:`JoinPlan.stale` reports when the database has drifted far enough
(ratio past :data:`REPLAN_RATIO`) that the engine should re-plan — the
usual case being IDB predicates that were empty at round 0 and dominate
the join a few semi-naive rounds later.

Ordering only ever changes *when* a pure literal is evaluated, never the
set of satisfying bindings, so planned evaluation is equivalent for the
pure programs the language targets (external ``$functions`` are assumed
side-effect free; pass ``plan=False`` to the engine otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .atoms import Aggregate, Assignment, Atom, Comparison, Negation
from .database import Database
from .terms import Constant, Variable, variables_of

#: Fraction of a relation assumed to survive each bound probe position
#: when no index statistics exist yet (a classic Selinger-style default).
DEFAULT_SELECTIVITY = 0.1

#: Estimated cost of a fully-bound existence probe (cheaper than any scan).
MEMBERSHIP_COST = 0.5

#: Re-plan when a body predicate's cardinality grew or shrank by this
#: factor relative to the plan-time snapshot (small counts are exempt —
#: see :meth:`JoinPlan.stale`).
REPLAN_RATIO = 4.0

#: Cardinalities below this never trigger a re-plan on their own: the
#: difference between 3 rows and 11 rows does not change a join order.
REPLAN_MIN_ROWS = 32


@dataclass
class PlanStep:
    """One literal of the planned evaluation order."""

    literal_index: int          # position in rule.body
    kind: str                   # atom | negation | comparison | assignment | aggregate
    #: for atoms/negations: fact positions probed through the index
    #: (constants, already-bound variables, evaluable complex terms)
    probe_positions: tuple[int, ...] = ()
    #: for atoms: estimated rows surviving this step's probe
    estimated_rows: float = 0.0
    #: human-readable literal (EXPLAIN output)
    rendered: str = ""


@dataclass
class JoinPlan:
    """A planned evaluation order for one rule body.

    ``order`` lists body-literal indexes in execution order, excluding
    the seed occurrence (which, when present, always runs first over the
    semi-naive delta exactly as the unplanned engine does).
    """

    seed_index: int | None
    order: tuple[int, ...]
    steps: tuple[PlanStep, ...]
    cardinalities: dict[str, int] = field(default_factory=dict)
    #: True when every literal could be placed with its variables bound;
    #: False means the plan fell back to textual order for a suffix.
    feasible: bool = True

    def signature(self) -> tuple:
        """The plan's execution shape: literal order + probe positions.

        Two plans with equal signatures lower to identical evaluators
        (cardinality snapshots may differ) — the engine uses this both to
        keep compiled closure chains across re-plans and to decide when a
        cached vectorized lowering is still valid.
        """
        return (self.order, tuple(step.probe_positions for step in self.steps))

    def stale(self, database: Database) -> bool:
        """Has the database drifted enough to make this plan suspect?"""
        for predicate, then in self.cardinalities.items():
            now = database.cardinality(predicate)
            if now == then:
                continue
            low, high = (then, now) if then < now else (now, then)
            if high < REPLAN_MIN_ROWS:
                continue
            if low * REPLAN_RATIO <= high:
                return True
        return False

    def describe(self) -> list[str]:
        """One ``literal [~est rows]`` line per step, in plan order."""
        lines = []
        for step in self.steps:
            if step.kind == "atom":
                lines.append(f"{step.rendered} [~{step.estimated_rows:.0f}]")
            else:
                lines.append(step.rendered)
        return lines


def _atom_bound_positions(
    atom: Atom, bound: set[str]
) -> tuple[tuple[int, ...], set[str], bool]:
    """Classify an atom's positions against the currently bound variables.

    Returns (probe positions, variable names newly bound by matching this
    atom, placeable?).  An atom is placeable once every variable inside
    its complex terms is bound — the engine folds complex terms into the
    index pattern, which requires evaluating them.
    """
    probe: list[int] = []
    fresh: set[str] = set()
    placeable = True
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term.name in bound:
                probe.append(position)
            else:
                # fresh (or an intra-atom repeat of a fresh) variable:
                # bound by matching, checked — not probed — on repeats
                fresh.add(term.name)
        elif isinstance(term, Constant):
            probe.append(position)
        else:
            names = {v.name for v in variables_of(term)}
            if names <= bound:
                probe.append(position)
            else:
                placeable = False
    return tuple(probe), fresh, placeable


def _estimate_atom(
    atom: Atom, probe: tuple[int, ...], database: Database
) -> float:
    """Estimated rows produced by matching ``atom`` with ``probe`` bound."""
    cardinality = database.cardinality(atom.predicate)
    if cardinality == 0:
        return 0.0
    if len(probe) >= atom.arity:
        return MEMBERSHIP_COST
    if not probe:
        return float(cardinality)
    distinct = database.distinct_count(atom.predicate, probe)
    if distinct:
        return max(1.0, cardinality / distinct)
    return max(1.0, cardinality * DEFAULT_SELECTIVITY ** len(probe))


def _literal_uses(literal) -> set[str]:
    """Variable names a literal needs bound before it can run."""
    return {v.name for v in literal.variables()}


def order_sensitive_predicates(program) -> set[str]:
    """Predicates whose *fact order* can influence an aggregate total.

    A monotone aggregate folds contributions in enumeration order and
    every intermediate total becomes a fact, so the row order of any
    relation scanned by an aggregate-bearing rule is semantically
    observable (``mcount`` excepted: its totals are 1..n per group in
    any arrival order).  The set is closed transitively — a rule whose
    head feeds an order-sensitive predicate emits in an order determined
    by its own body relations.  Rules deriving only predicates outside
    this set may have their atoms freely reordered.
    """
    sensitive: set[str] = set()
    for rule in program.rules:
        if any(
            isinstance(literal, Aggregate) and literal.func != "mcount"
            for literal in rule.body
        ):
            sensitive |= rule.body_predicates()
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if rule.head_predicates() & sensitive:
                body = rule.body_predicates()
                if not body <= sensitive:
                    sensitive |= body
                    changed = True
    return sensitive


def plan_rule(
    rule, seed_index: int | None, database: Database, reorder: bool = True
) -> JoinPlan:
    """Plan the evaluation order of ``rule``'s body.

    ``seed_index`` is the body position of the semi-naive seed atom (or
    None for a full application); the seed is excluded from ``order`` —
    its variables are simply treated as bound from the start.

    ``reorder=False`` keeps every atom in textual order (filters are
    still hoisted, which never changes the surviving binding sequence) —
    the engine passes it for rules whose emission order feeds an
    aggregate, see :func:`order_sensitive_predicates`.
    """
    literals = rule.body
    bound: set[str] = set()
    if seed_index is not None:
        seed = literals[seed_index]
        bound.update(
            term.name for term in seed.terms if isinstance(term, Variable)
        )

    if not _negations_fully_bound(literals, seed_index, bound):
        # A negation some of whose variables are only bound *after* it
        # textually runs under the engine's partial-pattern semantics
        # ("no extension exists"); a planned full-tuple check would mean
        # something else.  Keep such rules on the interpreted path.
        return _textual_fallback(rule, seed_index, literals, database)

    # Split the body at aggregate boundaries.  Literals never migrate
    # across a boundary; atoms are cost-reordered only in the last segment.
    segments: list[list[int]] = [[]]
    for index, literal in enumerate(literals):
        if index == seed_index:
            continue
        segments[-1].append(index)
        if isinstance(literal, Aggregate):
            segments.append([])

    order: list[int] = []
    steps: list[PlanStep] = []
    feasible = True
    for segment_number, segment in enumerate(segments):
        reorder_atoms = reorder and segment_number == len(segments) - 1
        feasible &= _plan_segment(
            literals, segment, bound, database, reorder_atoms, order, steps
        )

    cardinalities = {
        predicate: database.cardinality(predicate)
        for predicate in rule.body_predicates()
    }
    return JoinPlan(
        seed_index=seed_index,
        order=tuple(order),
        steps=tuple(steps),
        cardinalities=cardinalities,
        feasible=feasible,
    )


def _negations_fully_bound(literals, seed_index: int | None, seed_bound: set[str]) -> bool:
    """Is every negation's variable set bound by its textual position?

    Only an atom's direct variable terms bind (complex terms are read,
    not unified); assignments and aggregates bind their result variable.
    """
    bound = set(seed_bound)
    for index, literal in enumerate(literals):
        if index == seed_index:
            continue
        if isinstance(literal, Negation):
            if not _literal_uses(literal) <= bound:
                return False
        elif isinstance(literal, Atom):
            bound.update(
                term.name for term in literal.terms if isinstance(term, Variable)
            )
        elif isinstance(literal, (Assignment, Aggregate)):
            bound.add(literal.variable.name)
    return True


def _textual_fallback(rule, seed_index: int | None, literals, database: Database) -> JoinPlan:
    """An infeasible plan preserving the textual evaluation order."""
    order = tuple(i for i in range(len(literals)) if i != seed_index)
    steps = tuple(
        PlanStep(literal_index=i, kind=_kind_of(literals[i]), rendered=str(literals[i]))
        for i in order
    )
    cardinalities = {
        predicate: database.cardinality(predicate)
        for predicate in rule.body_predicates()
    }
    return JoinPlan(
        seed_index=seed_index,
        order=order,
        steps=steps,
        cardinalities=cardinalities,
        feasible=False,
    )


def _plan_segment(
    literals,
    segment: list[int],
    bound: set[str],
    database: Database,
    reorder_atoms: bool,
    order: list[int],
    steps: list[PlanStep],
) -> bool:
    """Place one aggregate-delimited segment; returns False on fallback."""
    atoms = [i for i in segment if isinstance(literals[i], Atom)]
    others = [i for i in segment if not isinstance(literals[i], Atom)]

    def emit(index: int, kind: str, probe: tuple[int, ...] = (), est: float = 0.0):
        order.append(index)
        steps.append(
            PlanStep(
                literal_index=index,
                kind=kind,
                probe_positions=probe,
                estimated_rows=est,
                rendered=str(literals[index]),
            )
        )

    def drain_ready_filters() -> None:
        """Emit non-atom literals (textual order) as they become ready."""
        progressed = True
        while progressed:
            progressed = False
            for index in list(others):
                literal = literals[index]
                if isinstance(literal, Aggregate):
                    continue  # pinned to the end of the segment
                if _literal_uses(literal) <= bound:
                    others.remove(index)
                    if isinstance(literal, Negation):
                        probe = tuple(range(literal.atom.arity))
                        emit(index, "negation", probe)
                    elif isinstance(literal, Comparison):
                        emit(index, "comparison")
                    else:  # Assignment
                        emit(index, "assignment")
                        bound.add(literal.variable.name)
                    progressed = True

    drain_ready_filters()
    atom_queue = list(atoms)
    while atom_queue:
        best = None
        best_key = None
        for queue_position, index in enumerate(atom_queue):
            atom = literals[index]
            probe, fresh, placeable = _atom_bound_positions(atom, bound)
            if not placeable:
                continue
            if not reorder_atoms and queue_position > 0:
                continue  # keep textual atom order before the last aggregate
            est = _estimate_atom(atom, probe, database)
            key = (est, index)
            if best_key is None or key < best_key:
                best, best_key = (index, atom, probe, fresh, est), key
        if best is None:
            # No placeable atom (a complex term over never-yet-bound
            # variables): finish in textual order; the engine falls back
            # to the unplanned path for this rule.
            for index in atom_queue + others:
                emit(index, _kind_of(literals[index]))
            return False
        index, atom, probe, fresh, est = best
        atom_queue.remove(index)
        emit(index, "atom", probe, est)
        bound.update(fresh)
        drain_ready_filters()

    # Whatever is left is the segment's trailing aggregate (and, for
    # unsafe-but-parsed bodies, nothing else: safety guarantees filters
    # become ready once every atom has been placed).
    for index in list(others):
        literal = literals[index]
        if isinstance(literal, Aggregate):
            others.remove(index)
            emit(index, "aggregate")
            bound.add(literal.variable.name)
    if others:
        for index in others:
            emit(index, _kind_of(literals[index]))
        return False
    return True


def _kind_of(literal) -> str:
    if isinstance(literal, Atom):
        return "atom"
    if isinstance(literal, Negation):
        return "negation"
    if isinstance(literal, Comparison):
        return "comparison"
    if isinstance(literal, Assignment):
        return "assignment"
    return "aggregate"
