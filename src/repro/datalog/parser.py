"""Parser for the Vadalog-like surface syntax used throughout the paper.

The grammar covers the fragment the paper's programs (Algorithms 2-9) need::

    % a comment
    company(X), own(X, Y, W), W > 0.5 -> control(X, Y).
    control(X, Z), own(Z, Y, W), T = msum(W, <Z>), T > 0.5 -> control(X, Y).
    person(N, B), Z = #sk_p(N) -> node(Z, N, B), node_type(Z, "person").
    own(X, Y, W) -> link(E, X, Y, W).        % E is existential
    pair(X, Y), P = $link_probability(X, Y), P > 0.5 -> partner_of(X, Y).
    person("anna", 1980).                     % a ground fact

Conventions:

* predicates and function names start lowercase; variables start with an
  uppercase letter or underscore;
* ``#name(...)`` applies a Skolem function, ``$name(...)`` an external
  registered function;
* ``T = msum(Expr, <C1, C2>)`` is a monotonic aggregate with contributor
  variables ``C1, C2``;
* ``not atom(...)`` is stratified negation;
* an optional ``@label`` before a rule names it (shown in explanations).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .atoms import (
    AGGREGATE_FUNCS,
    Aggregate,
    Assignment,
    Atom,
    BodyLiteral,
    Comparison,
    Negation,
)
from .errors import ParseError
from .rules import Program, Rule
from .terms import Constant, Expr, FunctionTerm, SkolemTerm, Term, Variable

_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*|//[^\n]*"),
    ("ARROW", r"->"),
    ("NUMBER", r"\d+\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?|\.\d+"),
    ("STRING", r'"(?:\\.|[^"\\])*"'),
    ("OP", r"==|!=|<=|>=|<|>"),
    ("SKOLEM", r"#[A-Za-z_][A-Za-z0-9_]*"),
    ("EXTERN", r"\$[A-Za-z_][A-Za-z0-9_]*"),
    ("LABEL", r"@[A-Za-z_][A-Za-z0-9_]*"),
    ("IDENT", r"[a-z][A-Za-z0-9_]*"),
    ("VAR", r"[A-Z_][A-Za-z0-9_]*"),
    ("ASSIGN", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {text!r}", line, column)
        tokens.append(_Token(kind, text, line, column))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token-stream helpers ------------------------------------------

    def _peek(self, offset: int = 0) -> _Token | None:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind}, got end of input")
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, got {token.kind} ({token.text!r})",
                token.line,
                token.column,
            )
        return self._next()

    def _at(self, kind: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token.kind == kind

    # -- grammar --------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self._peek() is not None:
            label = ""
            if self._at("LABEL"):
                label = self._next().text[1:]
            statement_start = self._pos
            if self._is_fact():
                predicate, values = self._parse_fact()
                program.add_fact(predicate, values)
            else:
                self._pos = statement_start
                program.add_rule(self._parse_rule(label))
        return program

    def _is_fact(self) -> bool:
        """Lookahead: a statement is a fact when it is ``ident(constants).``"""
        save = self._pos
        try:
            if not self._at("IDENT"):
                return False
            self._next()
            if not self._at("LPAREN"):
                return False
            self._next()
            depth = 1
            saw_variable = False
            while depth > 0:
                token = self._peek()
                if token is None:
                    return False
                if token.kind == "LPAREN":
                    depth += 1
                elif token.kind == "RPAREN":
                    depth -= 1
                elif token.kind in ("VAR", "SKOLEM", "EXTERN"):
                    saw_variable = True
                self._next()
            return self._at("DOT") and not saw_variable
        finally:
            self._pos = save

    def _parse_fact(self) -> tuple[str, tuple]:
        predicate = self._expect("IDENT").text
        self._expect("LPAREN")
        values: list = []
        if not self._at("RPAREN"):
            values.append(self._parse_constant_value())
            while self._at("COMMA"):
                self._next()
                values.append(self._parse_constant_value())
        self._expect("RPAREN")
        self._expect("DOT")
        return predicate, tuple(values)

    def _parse_constant_value(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in fact")
        if token.kind == "MINUS":
            self._next()
            value = self._parse_constant_value()
            return -value
        if token.kind == "NUMBER":
            self._next()
            return _number(token.text)
        if token.kind == "STRING":
            self._next()
            return _unquote(token.text)
        if token.kind == "IDENT" and token.text in ("true", "false"):
            self._next()
            return token.text == "true"
        if token.kind == "IDENT":
            # bare lowercase identifiers in facts are treated as string constants
            self._next()
            return token.text
        raise ParseError(
            f"expected a constant in fact, got {token.text!r}", token.line, token.column
        )

    def _parse_rule(self, label: str) -> Rule:
        body: list[BodyLiteral] = [self._parse_literal()]
        while self._at("COMMA"):
            self._next()
            body.append(self._parse_literal())
        self._expect("ARROW")
        head: list[Atom] = [self._parse_atom()]
        while self._at("COMMA"):
            self._next()
            head.append(self._parse_atom())
        self._expect("DOT")
        return Rule(tuple(body), tuple(head), label=label)

    def _parse_literal(self) -> BodyLiteral:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind == "IDENT" and token.text == "not":
            self._next()
            return Negation(self._parse_atom())
        if token.kind == "IDENT" and self._at("LPAREN", 1):
            return self._parse_atom()
        if token.kind == "VAR" and self._at("ASSIGN", 1):
            return self._parse_assignment()
        # otherwise: comparison between two expressions
        lhs = self._parse_expression()
        op_token = self._expect("OP")
        rhs = self._parse_expression()
        return Comparison(op_token.text, lhs, rhs)

    def _parse_assignment(self) -> Assignment | Aggregate:
        variable = Variable(self._expect("VAR").text)
        self._expect("ASSIGN")
        token = self._peek()
        if (
            token is not None
            and token.kind == "IDENT"
            and token.text in AGGREGATE_FUNCS
            and self._at("LPAREN", 1)
        ):
            return self._parse_aggregate(variable)
        expression = self._parse_expression()
        return Assignment(variable, expression)

    def _parse_aggregate(self, variable: Variable) -> Aggregate:
        func = self._expect("IDENT").text
        self._expect("LPAREN")
        contributors: list[Variable] = []
        if func == "mcount" and self._at("OP") and self._peek().text == "<":
            expression: Term = Constant(1)
        else:
            expression = self._parse_expression()
            if self._at("COMMA"):
                self._next()
        if self._at("OP") and self._peek().text == "<":
            self._next()
            contributors.append(Variable(self._expect("VAR").text))
            while self._at("COMMA"):
                self._next()
                contributors.append(Variable(self._expect("VAR").text))
            closing = self._expect("OP")
            if closing.text != ">":
                raise ParseError(
                    "expected '>' closing the contributor list",
                    closing.line,
                    closing.column,
                )
        self._expect("RPAREN")
        return Aggregate(variable, func, expression, tuple(contributors))

    def _parse_atom(self) -> Atom:
        predicate = self._expect("IDENT").text
        self._expect("LPAREN")
        terms: list[Term] = []
        if not self._at("RPAREN"):
            terms.append(self._parse_expression())
            while self._at("COMMA"):
                self._next()
                terms.append(self._parse_expression())
        self._expect("RPAREN")
        return Atom(predicate, tuple(terms))

    # -- expressions ------------------------------------------------------

    def _parse_expression(self) -> Term:
        node = self._parse_term()
        while self._at("PLUS") or self._at("MINUS"):
            op = "+" if self._next().kind == "PLUS" else "-"
            rhs = self._parse_term()
            node = Expr(op, (node, rhs))
        return node

    def _parse_term(self) -> Term:
        node = self._parse_primary()
        while self._at("STAR") or self._at("SLASH"):
            kind = self._next().kind
            op = "*" if kind == "STAR" else "/"
            rhs = self._parse_primary()
            node = Expr(op, (node, rhs))
        return node

    def _parse_primary(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in expression")
        if token.kind == "MINUS":
            self._next()
            return Expr("neg", (self._parse_primary(),))
        if token.kind == "NUMBER":
            self._next()
            return Constant(_number(token.text))
        if token.kind == "STRING":
            self._next()
            return Constant(_unquote(token.text))
        if token.kind == "VAR":
            self._next()
            return Variable(token.text)
        if token.kind == "IDENT" and token.text in ("true", "false"):
            self._next()
            return Constant(token.text == "true")
        if token.kind == "SKOLEM":
            self._next()
            name = token.text[1:]
            args = self._parse_arguments()
            return SkolemTerm(name, args)
        if token.kind == "EXTERN":
            self._next()
            name = token.text[1:]
            args = self._parse_arguments()
            return FunctionTerm(name, args)
        if token.kind == "LPAREN":
            self._next()
            node = self._parse_expression()
            self._expect("RPAREN")
            return node
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )

    def _parse_arguments(self) -> tuple[Term, ...]:
        self._expect("LPAREN")
        args: list[Term] = []
        if not self._at("RPAREN"):
            args.append(self._parse_expression())
            while self._at("COMMA"):
                self._next()
                args.append(self._parse_expression())
        self._expect("RPAREN")
        return tuple(args)


def _number(text: str) -> int | float:
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n")


def parse_program(source: str) -> Program:
    """Parse Vadalog-like ``source`` text into a :class:`Program`."""
    return _Parser(_tokenize(source)).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single rule; raises :class:`ParseError` if there is not exactly one."""
    program = parse_program(source)
    if len(program.rules) != 1 or program.facts:
        raise ParseError("expected exactly one rule")
    return program.rules[0]
