"""A Datalog± engine covering the Vadalog fragment used by the paper.

Public surface:

* :func:`parse_program` / :func:`parse_rule` — Vadalog-like syntax.
* :class:`Engine` / :func:`solve` — stratified semi-naive chase with
  existentials, Skolem functions, monotonic aggregation, negation and
  external Python functions.
* :class:`Database` — indexed fact store.
* Term/rule constructors for programmatic rule building.
"""

from .atoms import (
    AGGREGATE_FUNCS,
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Negation,
    make_atom,
)
from .builtins import FunctionRegistry, compare, evaluate
from .database import Database
from .engine import Derivation, Engine, EngineStats, solve
from .errors import (
    DatalogError,
    EvaluationError,
    ParseError,
    StratificationError,
    UnknownFunctionError,
    UnsafeRuleError,
)
from .incremental import IncrementalEngine, UpdateStats
from .parser import parse_program, parse_rule
from .rules import Program, Rule
from .stratify import Stratum, stratify
from .warded import (
    WardednessReport,
    affected_positions,
    check_wardedness,
    dangerous_variables,
    harmful_variables,
)
from .terms import (
    Constant,
    Expr,
    FunctionTerm,
    Null,
    SkolemTerm,
    Variable,
    is_null,
    skolem,
)

__all__ = [
    "AGGREGATE_FUNCS",
    "Aggregate",
    "Assignment",
    "Atom",
    "Comparison",
    "Constant",
    "Database",
    "DatalogError",
    "Derivation",
    "Engine",
    "EngineStats",
    "EvaluationError",
    "Expr",
    "FunctionRegistry",
    "FunctionTerm",
    "IncrementalEngine",
    "Negation",
    "Null",
    "ParseError",
    "Program",
    "Rule",
    "SkolemTerm",
    "StratificationError",
    "Stratum",
    "UnknownFunctionError",
    "UnsafeRuleError",
    "UpdateStats",
    "Variable",
    "WardednessReport",
    "affected_positions",
    "check_wardedness",
    "dangerous_variables",
    "harmful_variables",
    "compare",
    "evaluate",
    "is_null",
    "make_atom",
    "parse_program",
    "parse_rule",
    "skolem",
    "solve",
    "stratify",
]
