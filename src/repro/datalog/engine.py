"""Fixpoint evaluation: stratified, semi-naive chase with monotonic aggregation.

The engine implements the Vadalog fragment the paper's programs use:

* plain Datalog with recursion, evaluated semi-naively;
* existential rules — head variables not bound by the body become labelled
  nulls, invented deterministically per frontier binding (skolemized
  chase), so re-derivations are deduplicated and the chase terminates on
  the warded programs the paper writes;
* Skolem functions ``#sk(...)`` (deterministic, injective, disjoint ranges);
* stratified negation;
* monotonic aggregation (``msum``, ``mprod``, ``mmin``, ``mmax``,
  ``mcount``) usable inside recursion: each contributor is counted once
  per group at its best value, so updates are monotone and idempotent;
* external Python functions ``$name(...)`` via a :class:`FunctionRegistry`.

Aggregate grouping follows Vadalog: the group of ``T = msum(W, <Z>)`` is
the binding of the head variables that are bound before the aggregate is
reached (the result variable excluded); each distinct contributor tuple
``Z`` contributes once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

from ..telemetry import NULL_TRACER
from .atoms import Aggregate, Assignment, Atom, Comparison, Negation
from .builtins import Binding, FunctionRegistry, compare, evaluate
from .columns import NUMPY_AVAILABLE
from .compiled import CompilationFallback, compile_rule
from .database import Database, Fact, FactValues
from .errors import EvaluationError
from .planner import order_sensitive_predicates, plan_rule
from .rules import Program, Rule
from .stratify import Stratum, stratify
from .terms import Constant, Null, Variable, skolem
from .vectorized import (
    VectorizationFallback,
    VectorRuntimeFallback,
    compile_rule_vectorized,
)

#: cache sentinel: (rule, seed) pair not compiled yet
_COMPILE_MISS = object()


@dataclass
class Derivation:
    """Provenance record: how a fact was first derived."""

    rule: Rule
    body_facts: tuple[Fact, ...]


@dataclass
class EngineStats:
    """Counters exposed after a run, useful in benchmarks and tests."""

    iterations: int = 0
    facts_derived: int = 0
    rule_firings: int = 0
    strata: int = 0


class _AggregateState:
    """Monotone per-(rule, aggregate, group) accumulator.

    Stores the best contribution seen per contributor key and the current
    aggregate total.  ``update`` returns the current total (idempotent on
    repeated identical contributions).
    """

    __slots__ = ("func", "contributions", "total")

    def __init__(self, func: str):
        self.func = func
        self.contributions: dict[tuple, float] = {}
        self.total: float | int | None = None

    def update(self, contributor_key: tuple, value: Any) -> tuple[Any, bool]:
        """Fold one contribution in; returns (current total, improved?)."""
        previous = self.contributions.get(contributor_key)
        if self.func == "mcount":
            # the total is the number of distinct contributors: a repeat
            # contribution cannot move the count even if its value grew,
            # so only a new contributor key reports improvement (anything
            # else defeats the duplicate-round pruning downstream)
            improved = previous is None
        elif self.func in ("msum", "mmax", "mprod"):
            improved = previous is None or value > previous
        else:  # mmin decreases monotonically
            improved = previous is None or value < previous
        if improved:
            self.contributions[contributor_key] = value
            self._recompute(contributor_key, previous, value)
        return self.total, improved

    def _recompute(self, key: tuple, previous: Any, value: Any) -> None:
        if self.func == "msum":
            if self.total is None:
                self.total = value
            elif previous is None:
                self.total += value
            else:
                self.total += value - previous
        elif self.func == "mcount":
            self.total = len(self.contributions)
        elif self.func == "mmax":
            self.total = value if self.total is None else max(self.total, value)
        elif self.func == "mmin":
            self.total = value if self.total is None else min(self.total, value)
        elif self.func == "mprod":
            product = 1
            for contribution in self.contributions.values():
                product *= contribution
            self.total = product


class Engine:
    """Evaluates a :class:`Program` over a :class:`Database` to a fixpoint."""

    def __init__(
        self,
        program: Program,
        database: Database | None = None,
        functions: FunctionRegistry | None = None,
        provenance: bool = False,
        max_iterations: int = 1_000_000,
        seminaive: bool = True,
        tracer=None,
        plan: bool = True,
        vectorize: bool = True,
    ):
        self.program = program
        self.database = database if database is not None else Database()
        self.functions = functions if functions is not None else FunctionRegistry()
        self.provenance_enabled = provenance
        self.provenance: dict[Fact, Derivation] = {}
        self.max_iterations = max_iterations
        self.seminaive = seminaive
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # plan=False preserves the textual-order interpreted path (used by
        # the ablation benchmarks); provenance implies it, since compiled
        # evaluators do not record body-fact traces
        self.plan_enabled = plan and not provenance
        # vectorize=False keeps the per-tuple compiled path as the
        # bit-identity oracle; without numpy the flag is inert
        self.vectorize_enabled = self.plan_enabled and vectorize and NUMPY_AVAILABLE
        # (rule id, seed literal index) -> CompiledRule, or None once a
        # CompilationFallback proved the pair structurally uncompilable
        self._compiled_cache: dict[tuple[int, int | None], Any] = {}
        self._plan_fallbacks: dict[tuple[int, int | None], str] = {}
        # (rule id, seed literal index) -> (plan signature, VectorizedRule
        # or None when that plan shape could not be lowered to the batch
        # backend); a changed signature forces re-lowering
        self._vector_cache: dict[tuple[int, int | None], tuple] = {}
        self._vector_fallbacks: dict[tuple[int, int | None], str] = {}
        # pairs permanently reverted to the compiled path after a runtime
        # safety check failed (data-dependent, so retrying cannot help)
        self._vector_disabled: set[tuple[int, int | None]] = set()
        self._order_sensitive: set[str] | None = None
        self.stats = EngineStats()
        self._aggregate_states: dict[tuple, _AggregateState] = {}
        self._group_vars_cache: dict[tuple, tuple[str, ...]] = {}
        self._head_plan_cache: dict[int, tuple] = {}
        # per-atom term plans: position -> ("var", name) | ("const", value)
        # | ("complex", term); avoids isinstance dispatch in the join loops
        self._atom_plan_cache: dict[int, tuple] = {}
        for predicate, values in program.facts:
            self.database.add(predicate, values)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> Database:
        """Evaluate the program to a fixpoint and return the database."""
        strata = stratify(self.program)
        self.stats.strata = len(strata)
        with self.tracer.span(
            "engine.run", rules=len(self.program.rules), strata=len(strata)
        ) as run_span:
            for number, stratum in enumerate(strata):
                if not stratum.rules:
                    continue
                if self.tracer.enabled:
                    with self.tracer.span(
                        f"stratum[{number}]", rules=len(stratum.rules)
                    ) as span:
                        self._evaluate_stratum(stratum, span)
                else:
                    self._evaluate_stratum(stratum)
            if self.tracer.enabled and self._compiled_cache:
                self._emit_plan_spans(run_span)
            run_span.set("iterations", self.stats.iterations)
            run_span.set("rule_firings", self.stats.rule_firings)
            run_span.set("facts_derived", self.stats.facts_derived)
            run_span.set("facts_total", self.database.count())
        return self.database

    def query(self, predicate: str, pattern: dict[int, Any] | None = None) -> list[FactValues]:
        """Facts of ``predicate`` matching an optional positional pattern."""
        return list(self.database.match(predicate, pattern or {}))

    def holds(self, predicate: str, values: FactValues) -> bool:
        return self.database.contains(predicate, values)

    def ask(self, query: str) -> list[Binding]:
        """Answer an atom query written in rule syntax, e.g.
        ``controls("p1", X)`` — returns one variable binding per match.

        Constants filter positionally; repeated variables must unify.
        A ground query returns ``[{}]`` when the fact holds, else ``[]``.
        """
        from .parser import parse_rule

        rule = parse_rule(f"{query} -> askresult(0).")
        atom = rule.body[0]
        if not isinstance(atom, Atom) or len(rule.body) != 1:
            raise EvaluationError("ask() accepts a single atom query")
        results: list[Binding] = []
        pattern = self._atom_pattern(atom, {})
        for values in self.database.match(atom.predicate, pattern):
            binding = self._bind_atom(atom, values, {})
            if binding is not None:
                results.append(binding)
        return results

    def explain(self, predicate: str, values: FactValues, _depth: int = 0) -> list[str]:
        """Human-readable derivation tree for a fact (requires provenance)."""
        indent = "  " * _depth
        fact = (predicate, values)
        rendered = f"{indent}{predicate}{values}"
        derivation = self.provenance.get(fact)
        if derivation is None:
            return [f"{rendered}  [extensional]"]
        label = derivation.rule.label or str(derivation.rule)
        lines = [f"{rendered}  [by rule: {label}]"]
        if _depth >= 20:
            lines.append(f"{indent}  ... (depth limit)")
            return lines
        for body_predicate, body_values in derivation.body_facts:
            lines.extend(self.explain(body_predicate, body_values, _depth + 1))
        return lines

    # ------------------------------------------------------------------
    # stratum evaluation
    # ------------------------------------------------------------------

    def _evaluate_stratum(self, stratum: Stratum, span=None) -> None:
        # Per-rule accumulators (wall seconds, applications, firings,
        # derived facts), populated only when a live tracer is attached.
        rule_metrics: dict[int, list] | None = {} if span is not None else None

        # Round 0: full evaluation of every rule.
        delta: list[Fact] = []
        for rule in stratum.rules:
            delta.extend(self._apply_rule(rule, None, None, rule_metrics))
        self.stats.iterations += 1
        if span is not None:
            span.append("delta_sizes", len(delta))

        if not self.seminaive:
            # Naive mode (for the ablation benchmark): re-run all rules on
            # the full database until nothing new appears.
            changed = bool(delta)
            while changed:
                self._check_iteration_budget()
                changed = False
                for rule in stratum.rules:
                    if self._apply_rule(rule, None, None, rule_metrics):
                        changed = True
                self.stats.iterations += 1
            self._finish_stratum_span(stratum, span, rule_metrics)
            return

        # Semi-naive rounds: seed each rule occurrence with the last delta.
        while delta:
            self._check_iteration_budget()
            delta_by_predicate: dict[str, list[FactValues]] = {}
            for predicate, values in delta:
                delta_by_predicate.setdefault(predicate, []).append(values)
            delta = []
            for rule in stratum.rules:
                body = rule.body
                seen_positions: set[int] = set()
                for occurrence, literal_index in enumerate(rule.positive_positions()):
                    predicate = body[literal_index].predicate
                    if predicate not in delta_by_predicate or occurrence in seen_positions:
                        continue
                    seen_positions.add(occurrence)
                    delta.extend(
                        self._apply_rule(
                            rule,
                            occurrence,
                            delta_by_predicate[predicate],
                            rule_metrics,
                        )
                    )
            self.stats.iterations += 1
            if span is not None:
                span.append("delta_sizes", len(delta))
        self._finish_stratum_span(stratum, span, rule_metrics)

    def _finish_stratum_span(
        self, stratum: Stratum, span, rule_metrics: dict[int, list] | None
    ) -> None:
        """Attach per-rule child spans and aggregate-state sizes."""
        if span is None or rule_metrics is None:
            return
        for rule in stratum.rules:
            metrics = rule_metrics.get(id(rule))
            if metrics is None:
                continue
            elapsed, applications, firings, derived = metrics
            label = rule.label or str(rule)
            if len(label) > 70:
                label = label[:67] + "..."
            child = span.child(f"rule:{label}")
            child.set("applications", applications)
            child.set("firings", firings)
            child.set("derived", derived)
            child.finish(duration=elapsed)
        if self._aggregate_states:
            span.set("aggregate_groups", len(self._aggregate_states))
            span.set(
                "aggregate_contributions",
                sum(len(s.contributions) for s in self._aggregate_states.values()),
            )

    def _check_iteration_budget(self) -> None:
        if self.stats.iterations >= self.max_iterations:
            raise EvaluationError(
                f"fixpoint did not converge within {self.max_iterations} iterations"
            )

    # ------------------------------------------------------------------
    # single-rule application
    # ------------------------------------------------------------------

    def _apply_rule(
        self,
        rule: Rule,
        seed_predicate: int | None,
        seed_facts: list[FactValues] | None,
        rule_metrics: dict[int, list] | None = None,
    ) -> list[Fact]:
        """Fire ``rule`` and return the newly derived facts.

        ``seed_predicate`` selects a positive-atom occurrence forced to
        range over ``seed_facts`` (the semi-naive delta) instead of the
        whole relation.  ``rule_metrics`` (tracing only) accumulates
        per-rule [wall seconds, applications, firings, derived facts].
        """
        if rule_metrics is not None:
            started = time.perf_counter()
            firings_before = self.stats.rule_firings
            new_facts = self._apply_rule_inner(rule, seed_predicate, seed_facts)
            metrics = rule_metrics.get(id(rule))
            if metrics is None:
                metrics = rule_metrics[id(rule)] = [0.0, 0, 0, 0]
            metrics[0] += time.perf_counter() - started
            metrics[1] += 1
            metrics[2] += self.stats.rule_firings - firings_before
            metrics[3] += len(new_facts)
            return new_facts
        return self._apply_rule_inner(rule, seed_predicate, seed_facts)

    def _apply_rule_inner(
        self,
        rule: Rule,
        seed_predicate: int | None,
        seed_facts: list[FactValues] | None,
    ) -> list[Fact]:
        seed_literal_index: int | None = None
        if seed_predicate is not None:
            seed_literal_index = rule.positive_positions()[seed_predicate]

        if self.plan_enabled:
            compiled = self._compiled_for(rule, seed_literal_index)
            if compiled is not None:
                if self.vectorize_enabled:
                    vectorized = self._vectorized_for(rule, seed_literal_index, compiled)
                    if vectorized is not None:
                        try:
                            derived, firings = vectorized.execute(seed_facts)
                        except VectorRuntimeFallback as fallback:
                            # raised only while still pure: re-running on
                            # the compiled path cannot double count
                            key = (id(rule), seed_literal_index)
                            self._vector_disabled.add(key)
                            self._vector_fallbacks[key] = str(fallback)
                        else:
                            return self._ingest_derived(derived, firings)
                return self._apply_compiled(compiled, seed_facts)

        new_facts: list[Fact] = []
        literals = list(rule.body)

        # Buffer derivations and flush after the join: the rule must see the
        # database as of the start of this application, not facts it is
        # itself deriving (otherwise a rule like p(X), Y = X+1 -> p(Y)
        # extends the scan it is iterating and round 0 never ends).
        pending: list[tuple[Fact, tuple[Fact, ...]]] = []
        trace: list[Fact] = []
        for binding in self._join(
            rule, literals, seed_literal_index, seed_facts, trace=trace
        ):
            self.stats.rule_firings += 1
            derived = self._instantiate_head(rule, binding)
            trace_snapshot = tuple(trace) if self.provenance_enabled else ()
            for fact in derived:
                pending.append((fact, trace_snapshot))

        for fact, trace_snapshot in pending:
            predicate, values = fact
            if self.database.add(predicate, values):
                new_facts.append(fact)
                self.stats.facts_derived += 1
                if self.provenance_enabled and fact not in self.provenance:
                    self.provenance[fact] = Derivation(rule, trace_snapshot)
        return new_facts

    # ------------------------------------------------------------------
    # planned / compiled evaluation
    # ------------------------------------------------------------------

    def _compiled_for(self, rule: Rule, seed_literal_index: int | None):
        """The cached compiled evaluator for (rule, seed occurrence).

        Compiles on first use, re-plans when the database's cardinality
        snapshot drifts past the planner's threshold (keeping the closure
        chain when the fresh plan picks the same order), and returns None
        — permanently — for rules the lowering proved uncompilable.
        """
        key = (id(rule), seed_literal_index)
        cached = self._compiled_cache.get(key, _COMPILE_MISS)
        if cached is None:
            return None
        if cached is not _COMPILE_MISS and not cached.plan.stale(self.database):
            return cached
        plan = plan_rule(
            rule, seed_literal_index, self.database, reorder=self._may_reorder(rule)
        )
        if cached is not _COMPILE_MISS:
            same_shape = plan.signature() == cached.plan.signature()
            cached.replans += 1
            if same_shape:
                cached.plan = plan  # adopt the new cardinality snapshot
                return cached
        try:
            compiled = compile_rule(self, rule, plan, counting=self.tracer.enabled)
        except CompilationFallback as fallback:
            self._plan_fallbacks[key] = str(fallback)
            self._compiled_cache[key] = None
            return None
        if cached is not _COMPILE_MISS:
            compiled.replans = cached.replans
        self._compiled_cache[key] = compiled
        return compiled

    def _may_reorder(self, rule: Rule) -> bool:
        """Atom reordering is allowed only when the rule's emission order
        cannot reach a monotone aggregate (whose intermediate totals are
        sensitive to contribution order across semi-naive rounds)."""
        if self._order_sensitive is None:
            self._order_sensitive = order_sensitive_predicates(self.program)
        return not (rule.head_predicates() & self._order_sensitive)

    def _vectorized_for(self, rule: Rule, seed_literal_index: int | None, compiled):
        """The cached batch evaluator for (rule, seed occurrence), or None.

        Validated against the compiled plan's *signature* (a re-plan may
        swap the plan object while keeping the shape); a shape change
        re-lowers, including pairs whose previous shape fell back.  Pairs
        in ``_vector_disabled`` (runtime safety fallback) stay compiled
        for the lifetime of the engine.
        """
        key = (id(rule), seed_literal_index)
        if key in self._vector_disabled:
            return None
        signature = compiled.plan.signature()
        cached = self._vector_cache.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
        try:
            vectorized = compile_rule_vectorized(self, rule, compiled.plan)
        except VectorizationFallback as fallback:
            self._vector_fallbacks[key] = str(fallback)
            self._vector_cache[key] = (signature, None)
            return None
        self._vector_fallbacks.pop(key, None)
        self._vector_cache[key] = (signature, vectorized)
        return vectorized

    def _apply_compiled(self, compiled, seed_facts: list[FactValues] | None) -> list[Fact]:
        derived, firings = compiled.execute(seed_facts)
        return self._ingest_derived(derived, firings)

    def _ingest_derived(self, derived: list[Fact], firings: int) -> list[Fact]:
        """Flush an evaluator's fact sink into the database (shared by the
        compiled and vectorized backends)."""
        self.stats.rule_firings += firings
        new_facts: list[Fact] = []
        add = self.database.add
        for fact in derived:
            if add(fact[0], fact[1]):
                new_facts.append(fact)
        self.stats.facts_derived += len(new_facts)
        return new_facts

    def _emit_plan_spans(self, run_span) -> None:
        """EXPLAIN: one child span per (rule, seed occurrence) plan.

        ``estimated_rows`` is the planner's per-application estimate for
        each step; ``actual_rows`` counts bindings that survived the step
        summed over the whole run.
        """
        rules_by_id = {id(rule): rule for rule in self.program.rules}
        parent = run_span.child("planner")
        compiled_rules = 0
        for (rule_id, seed_index), compiled in self._compiled_cache.items():
            rule = rules_by_id.get(rule_id)
            label = (rule.label or str(rule)) if rule is not None else hex(rule_id)
            if len(label) > 70:
                label = label[:67] + "..."
            suffix = "" if seed_index is None else f" seed@{seed_index}"
            child = parent.child(f"plan:{label}{suffix}")
            if compiled is None:
                child.set(
                    "fallback",
                    self._plan_fallbacks.get((rule_id, seed_index), "interpreted"),
                )
            else:
                compiled_rules += 1
                plan = compiled.plan
                if self.vectorize_enabled:
                    entry = self._vector_cache.get((rule_id, seed_index))
                    vectorized = (
                        entry is not None
                        and entry[1] is not None
                        and (rule_id, seed_index) not in self._vector_disabled
                    )
                    child.set("backend", "vectorized" if vectorized else "compiled")
                    if not vectorized:
                        reason = self._vector_fallbacks.get((rule_id, seed_index))
                        if reason:
                            child.set("vector_fallback", reason)
                else:
                    child.set("backend", "compiled")
                child.set("order", plan.describe())
                child.set(
                    "estimated_rows",
                    [round(step.estimated_rows, 1) for step in plan.steps],
                )
                if compiled.counts is not None:
                    child.set("actual_rows", list(compiled.counts))
                if compiled.replans:
                    child.set("replans", compiled.replans)
            child.finish(duration=0.0)
        parent.set("compiled_rules", compiled_rules)
        parent.finish(duration=0.0)

    def _join(
        self,
        rule: Rule,
        literals: list,
        seed_literal_index: int | None,
        seed_facts: list[FactValues] | None,
        trace: list[Fact],
    ) -> Iterator[Binding]:
        """Enumerate bindings satisfying the rule body.

        When a seed is given, the seed atom is matched first (over the
        delta), then the remaining literals in their original order — safe
        because moving an atom earlier can only increase boundness.  The
        seed atom ranges over raw delta facts with no index pattern, so
        its complex terms (Skolem terms / expressions, normally folded
        into the pattern) must be checked here: positions evaluable from
        the seed atom's own variables are checked immediately, the rest
        are deferred until the full binding is known.
        """
        if seed_literal_index is None:
            yield from self._match_from(
                rule, literals, list(range(len(literals))), 0, {}, trace
            )
            return

        seed_literal = literals[seed_literal_index]
        rest_order = [
            index for index in range(len(literals)) if index != seed_literal_index
        ]
        complex_entries = [
            (position, payload)
            for position, kind, payload in self._atom_plan(seed_literal)
            if kind == "complex"
        ]
        for values in seed_facts or ():
            extension = self._bind_atom(seed_literal, values, {})
            if extension is None:
                continue
            deferred: list[tuple[Any, Any]] = []
            if complex_entries and not self._check_complex_terms(
                seed_literal, complex_entries, values, extension, deferred
            ):
                continue
            if self.provenance_enabled:
                trace.append((seed_literal.predicate, values))
            for binding in self._match_from(
                rule, literals, rest_order, 0, extension, trace
            ):
                if deferred and not self._deferred_hold(seed_literal, deferred, binding):
                    continue
                yield binding
            if self.provenance_enabled:
                trace.pop()

    def _check_complex_terms(
        self,
        atom: Atom,
        entries: list[tuple[int, Any]],
        values: FactValues,
        binding: Binding,
        deferred: list[tuple[Any, Any]],
    ) -> bool:
        """Check a seed fact against the atom's complex-term positions.

        Terms not yet evaluable (their variables are bound by literals
        matched after the seed) land in ``deferred`` as (term, expected
        value) pairs for :meth:`_deferred_hold`.
        """
        for position, term in entries:
            try:
                value = evaluate(term, binding, self.functions)
            except EvaluationError:
                deferred.append((term, values[position]))
                continue
            if value != values[position]:
                return False
        return True

    def _deferred_hold(
        self, atom: Atom, deferred: list[tuple[Any, Any]], binding: Binding
    ) -> bool:
        for term, expected in deferred:
            try:
                value = evaluate(term, binding, self.functions)
            except EvaluationError:
                raise EvaluationError(
                    f"body atom {atom} has a complex term {term} "
                    "with unbound variables"
                ) from None
            if value != expected:
                return False
        return True

    def _match_from(
        self,
        rule: Rule,
        literals: list,
        order: list[int],
        depth: int,
        binding: Binding,
        trace: list[Fact],
    ) -> Iterator[Binding]:
        if depth == len(order):
            yield binding
            return
        literal = literals[order[depth]]

        if isinstance(literal, Atom):
            pattern = self._atom_pattern(literal, binding)
            for values in self.database.match(literal.predicate, pattern):
                extension = self._bind_atom(literal, values, binding)
                if extension is None:
                    continue
                if self.provenance_enabled:
                    trace.append((literal.predicate, values))
                yield from self._match_from(
                    rule, literals, order, depth + 1, extension, trace
                )
                if self.provenance_enabled:
                    trace.pop()
            return

        if isinstance(literal, Negation):
            pattern = self._atom_pattern(literal.atom, binding)
            if next(iter(self.database.match(literal.atom.predicate, pattern)), None) is None:
                yield from self._match_from(
                    rule, literals, order, depth + 1, binding, trace
                )
            return

        if isinstance(literal, Comparison):
            lhs = evaluate(literal.lhs, binding, self.functions)
            rhs = evaluate(literal.rhs, binding, self.functions)
            if compare(literal.op, lhs, rhs):
                yield from self._match_from(
                    rule, literals, order, depth + 1, binding, trace
                )
            return

        if isinstance(literal, Assignment):
            value = evaluate(literal.expression, binding, self.functions)
            name = literal.variable.name
            if name in binding:
                if binding[name] == value:
                    yield from self._match_from(
                        rule, literals, order, depth + 1, binding, trace
                    )
                return
            extension = dict(binding)
            extension[name] = value
            yield from self._match_from(
                rule, literals, order, depth + 1, extension, trace
            )
            return

        if isinstance(literal, Aggregate):
            total, improved = self._update_aggregate(rule, literal, binding)
            if not improved and self._aggregate_skippable(rule, literal):
                # the aggregate did not move and every head variable is
                # determined by (group, total): continuing would re-derive
                # facts set semantics discards anyway
                return
            extension = dict(binding)
            extension[literal.variable.name] = total
            yield from self._match_from(
                rule, literals, order, depth + 1, extension, trace
            )
            return

        raise EvaluationError(f"unsupported body literal {literal!r}")

    # ------------------------------------------------------------------
    # literal helpers
    # ------------------------------------------------------------------

    def _atom_plan(self, atom: Atom) -> tuple:
        """Cached classification of an atom's terms for the join loops.

        The cache entry pins the atom object: keying on ``id()`` alone is
        unsound for ephemeral atoms (``ask()`` builds one per query, and a
        garbage-collected atom's id can be reused by the next one, which
        would then silently inherit the dead atom's plan).
        """
        entry = self._atom_plan_cache.get(id(atom))
        if entry is not None and entry[0] is atom:
            return entry[1]
        entries = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                entries.append((position, "var", term.name))
            elif isinstance(term, Constant):
                entries.append((position, "const", term.value))
            else:
                entries.append((position, "complex", term))
        plan = tuple(entries)
        self._atom_plan_cache[id(atom)] = (atom, plan)
        return plan

    def _atom_pattern(self, atom: Atom, binding: Binding) -> dict[int, Any]:
        """Positions of ``atom`` already determined by constants/bound vars."""
        pattern: dict[int, Any] = {}
        for position, kind, payload in self._atom_plan(atom):
            if kind == "const":
                pattern[position] = payload
            elif kind == "var":
                if payload in binding:
                    pattern[position] = binding[payload]
            else:
                # complex term in a body atom: evaluable only if fully bound
                try:
                    pattern[position] = evaluate(payload, binding, self.functions)
                except EvaluationError:
                    raise EvaluationError(
                        f"body atom {atom} has a complex term {payload} "
                        "with unbound variables"
                    ) from None
        return pattern

    def _bind_atom(self, atom: Atom, values: FactValues, binding: Binding) -> Binding | None:
        """Extend ``binding`` by unifying ``atom`` with a fact, or None on clash."""
        if len(values) != atom.arity:
            return None
        extension: Binding | None = None
        for position, kind, payload in self._atom_plan(atom):
            value = values[position]
            if kind == "var":
                if extension is not None and payload in extension:
                    if extension[payload] != value:
                        return None
                elif payload in binding:
                    if binding[payload] != value:
                        return None
                else:
                    if extension is None:
                        extension = dict(binding)
                    extension[payload] = value
            elif kind == "const":
                if payload != value:
                    return None
            # complex terms are folded into the index pattern on the
            # non-seed path; the seed path checks them in _join (see
            # _check_complex_terms), since seed facts bypass the pattern
        return extension if extension is not None else dict(binding)

    def _aggregate_skippable(self, rule: Rule, aggregate: Aggregate) -> bool:
        """Can an unimproved aggregate prune the rest of the rule?

        Safe when every head variable is either the aggregate's result or
        part of its group key — then an unchanged total implies every
        derivable head fact is a duplicate.  Comparisons/assignments after
        the aggregate are pure, so pruning cannot lose facts.
        """
        cache_key = (id(rule), id(aggregate), "skippable")
        cached = self._group_vars_cache.get(cache_key)
        if cached is not None:
            return bool(cached[0])
        # the whole tail after the aggregate must be *determined* by
        # (group, total): any atom, negation, or literal reading other
        # variables could behave differently across firings that share an
        # unchanged total, so pruning would be unsound
        group = set(self._aggregate_group_vars(rule, aggregate))
        determined = group | {aggregate.variable.name}
        seen_aggregate = False
        tail_safe = True
        for literal in rule.body:
            if literal is aggregate:
                seen_aggregate = True
                continue
            if not seen_aggregate:
                continue
            if isinstance(literal, (Atom, Negation, Aggregate)):
                tail_safe = False
                break
            if isinstance(literal, Comparison):
                if not {v.name for v in literal.variables()} <= determined:
                    tail_safe = False
                    break
            elif isinstance(literal, Assignment):
                if not {v.name for v in literal.variables()} <= determined:
                    tail_safe = False
                    break
                determined.add(literal.variable.name)
        head_names = {v.name for v in rule.head_variables()}
        skippable = tail_safe and head_names <= determined
        self._group_vars_cache[cache_key] = ("1" if skippable else "",)
        return skippable

    def _update_aggregate(
        self, rule: Rule, aggregate: Aggregate, binding: Binding
    ) -> tuple[Any, bool]:
        group_vars = self._aggregate_group_vars(rule, aggregate)
        group_key = tuple(binding.get(name) for name in group_vars)
        state_key = (id(rule), id(aggregate), group_key)
        state = self._aggregate_states.get(state_key)
        if state is None:
            state = _AggregateState(aggregate.func)
            self._aggregate_states[state_key] = state
        if aggregate.contributors:
            contributor_key = tuple(binding[v.name] for v in aggregate.contributors)
        else:
            contributor_key = tuple(sorted(binding.items(), key=lambda item: item[0]))
        value = evaluate(aggregate.expression, binding, self.functions)
        return state.update(contributor_key, value)

    def _aggregate_group_vars(self, rule: Rule, aggregate: Aggregate) -> tuple[str, ...]:
        cache_key = (id(rule), id(aggregate))
        cached = self._group_vars_cache.get(cache_key)
        if cached is not None:
            return cached
        aggregate_result_names = {a.variable.name for a in rule.aggregates()}
        head_names = {v.name for v in rule.head_variables()}
        bound_before: set[str] = set()
        for literal in rule.body:
            if literal is aggregate:
                break
            if isinstance(literal, Atom):
                bound_before.update(v.name for v in literal.variables())
            elif isinstance(literal, (Assignment, Aggregate)):
                bound_before.add(literal.variable.name)
        group = tuple(sorted((head_names - aggregate_result_names) & bound_before))
        self._group_vars_cache[cache_key] = group
        return group

    # ------------------------------------------------------------------
    # head instantiation
    # ------------------------------------------------------------------

    def _head_plan(self, rule: Rule) -> tuple:
        """Cached per-rule head analysis: (existential names, frontier names,
        rule id) — recomputing these per firing dominates hot loops."""
        cached = self._head_plan_cache.get(id(rule))
        if cached is None:
            existential = tuple(
                sorted(v.name for v in rule.existential_variables())
            )
            frontier = tuple(sorted(v.name for v in rule.frontier_variables()))
            rule_id = rule.label or f"rule@{id(rule)}"
            cached = (existential, frontier, rule_id)
            self._head_plan_cache[id(rule)] = cached
        return cached

    def _instantiate_head(self, rule: Rule, binding: Binding) -> list[Fact]:
        existential, frontier, rule_id = self._head_plan(rule)
        if existential:
            binding = dict(binding)
            frontier_values = tuple(binding.get(name) for name in frontier)
            for name in existential:
                label = skolem(f"null:{rule_id}:{name}", frontier_values)
                binding[name] = Null(label)
        facts: list[Fact] = []
        for atom in rule.head:
            values = tuple(
                evaluate(term, binding, self.functions) for term in atom.terms
            )
            facts.append((atom.predicate, values))
        return facts


def solve(
    program: Program | str,
    facts: list[Fact] | Database | None = None,
    functions: FunctionRegistry | None = None,
    provenance: bool = False,
) -> Engine:
    """One-shot convenience: parse (if needed), load facts, run, return engine."""
    from .parser import parse_program

    if isinstance(program, str):
        program = parse_program(program)
    if isinstance(facts, Database):
        database = facts
    else:
        database = Database(facts or [])
    engine = Engine(program, database, functions=functions, provenance=provenance)
    engine.run()
    return engine
